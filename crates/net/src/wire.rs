//! Binary payload codec for the protocol message types.
//!
//! The simulator moves messages as in-memory enums; the network moves
//! them as bytes. This module gives every protocol type a canonical
//! big-endian binary form via the [`WireMsg`] trait, with decoding that
//! is total over arbitrary input: truncated, oversized, or malformed
//! payloads come back as [`WireError`] values, never panics, because a
//! TCP peer can hand the decoder anything at all.
//!
//! Encodings are *exact* round-trips (`decode(encode(m)) == m`, proven
//! by property test in `tests/wire_roundtrip.rs`) and decoding is
//! *strict*: trailing bytes after a complete value are an error, so a
//! frame carries exactly one message.

use crate::error::WireError;
use shmem_algorithms::abd::ShardedAbdMsg;
use shmem_algorithms::cas::ShardedCasMsg;
use shmem_algorithms::hashed::ShardedHashedMsg;
use shmem_algorithms::multikey::{Key, MultiInv, MultiResp};
use shmem_algorithms::reg::{RegInv, RegResp};
use shmem_algorithms::tag::Tag;
use shmem_erasure::CodeError;

/// Hard cap on any encoded item count (keys per batch, shares per
/// message). Far above anything the protocols produce; exists so a
/// hostile length prefix cannot drive a multi-gigabyte allocation.
pub const MAX_ITEMS: usize = 1 << 16;

/// Hard cap on one codeword symbol's byte length.
pub const MAX_SHARE_BYTES: usize = 1 << 20;

/// Append-only encoder over a byte buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, big-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64`, big-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string (`u32` length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends an item count (`u32`).
    pub fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Cursor-based decoder over a byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                left: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a length-prefixed byte string, capped at
    /// [`MAX_SHARE_BYTES`].
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_SHARE_BYTES {
            return Err(WireError::TooLarge {
                what: "byte string",
                len: len as u64,
                max: MAX_SHARE_BYTES as u64,
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads an item count, capped at [`MAX_ITEMS`].
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_ITEMS {
            return Err(WireError::TooLarge {
                what: "item count",
                len: n as u64,
                max: MAX_ITEMS as u64,
            });
        }
        Ok(n)
    }
}

/// A type with a canonical binary wire form.
pub trait WireMsg: Sized {
    /// Appends `self` to the writer.
    fn encode(&self, w: &mut WireWriter);

    /// Reads one value from the reader.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes exactly one value from `buf`, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input, including
    /// [`WireError::Trailing`] when `buf` holds more than one value.
    fn from_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Trailing {
                left: r.remaining(),
            });
        }
        Ok(v)
    }
}

fn encode_seq<T>(w: &mut WireWriter, items: &[T], each: impl Fn(&mut WireWriter, &T)) {
    w.count(items.len());
    for it in items {
        each(w, it);
    }
}

fn decode_seq<T>(
    r: &mut WireReader<'_>,
    each: impl Fn(&mut WireReader<'_>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = r.count()?;
    // Cap the pre-allocation at what the remaining bytes could possibly
    // hold (≥ 1 byte per item) so a lying count can't balloon memory.
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(each(r)?);
    }
    Ok(out)
}

impl WireMsg for Tag {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.seq);
        w.u32(self.writer);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Tag, WireError> {
        let seq = r.u64()?;
        let writer = r.u32()?;
        Ok(Tag { seq, writer })
    }
}

impl WireMsg for CodeError {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            CodeError::InvalidParams { n, k, field_order } => {
                w.u8(0);
                w.u64(*n as u64);
                w.u64(*k as u64);
                w.u64(*field_order);
            }
            CodeError::NotEnoughShares { have, need } => {
                w.u8(1);
                w.u64(*have as u64);
                w.u64(*need as u64);
            }
            CodeError::IndexOutOfRange { index, n } => {
                w.u8(2);
                w.u64(*index as u64);
                w.u64(*n as u64);
            }
            CodeError::DuplicateIndex { index } => {
                w.u8(3);
                w.u64(*index as u64);
            }
            CodeError::LengthMismatch => w.u8(4),
            CodeError::IntegrityMismatch => w.u8(5),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<CodeError, WireError> {
        match r.u8()? {
            0 => Ok(CodeError::InvalidParams {
                n: r.u64()? as usize,
                k: r.u64()? as usize,
                field_order: r.u64()?,
            }),
            1 => Ok(CodeError::NotEnoughShares {
                have: r.u64()? as usize,
                need: r.u64()? as usize,
            }),
            2 => Ok(CodeError::IndexOutOfRange {
                index: r.u64()? as usize,
                n: r.u64()? as usize,
            }),
            3 => Ok(CodeError::DuplicateIndex {
                index: r.u64()? as usize,
            }),
            4 => Ok(CodeError::LengthMismatch),
            5 => Ok(CodeError::IntegrityMismatch),
            tag => Err(WireError::BadTag {
                what: "CodeError",
                tag,
            }),
        }
    }
}

impl WireMsg for RegInv {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RegInv::Write(v) => {
                w.u8(0);
                w.u64(*v);
            }
            RegInv::Read => w.u8(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<RegInv, WireError> {
        match r.u8()? {
            0 => Ok(RegInv::Write(r.u64()?)),
            1 => Ok(RegInv::Read),
            tag => Err(WireError::BadTag {
                what: "RegInv",
                tag,
            }),
        }
    }
}

impl WireMsg for RegResp {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RegResp::WriteAck => w.u8(0),
            RegResp::ReadValue(v) => {
                w.u8(1);
                w.u64(*v);
            }
            RegResp::ReadFailed(e) => {
                w.u8(2);
                e.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<RegResp, WireError> {
        match r.u8()? {
            0 => Ok(RegResp::WriteAck),
            1 => Ok(RegResp::ReadValue(r.u64()?)),
            2 => Ok(RegResp::ReadFailed(CodeError::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "RegResp",
                tag,
            }),
        }
    }
}

impl WireMsg for MultiInv {
    fn encode(&self, w: &mut WireWriter) {
        encode_seq(w, &self.ops, |w, (k, inv)| {
            w.u64(*k);
            inv.encode(w);
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<MultiInv, WireError> {
        let ops = decode_seq(r, |r| {
            let k: Key = r.u64()?;
            let inv = RegInv::decode(r)?;
            Ok((k, inv))
        })?;
        Ok(MultiInv { ops })
    }
}

impl WireMsg for MultiResp {
    fn encode(&self, w: &mut WireWriter) {
        encode_seq(w, &self.ops, |w, (k, resp)| {
            w.u64(*k);
            resp.encode(w);
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<MultiResp, WireError> {
        let ops = decode_seq(r, |r| {
            let k: Key = r.u64()?;
            let resp = RegResp::decode(r)?;
            Ok((k, resp))
        })?;
        Ok(MultiResp { ops })
    }
}

impl WireMsg for ShardedAbdMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ShardedAbdMsg::Query { rid, keys } => {
                w.u8(0);
                w.u64(*rid);
                encode_seq(w, keys, |w, k| w.u64(*k));
            }
            ShardedAbdMsg::QueryResp { rid, items } => {
                w.u8(1);
                w.u64(*rid);
                encode_seq(w, items, |w, (k, t, v)| {
                    w.u64(*k);
                    t.encode(w);
                    w.u64(*v);
                });
            }
            ShardedAbdMsg::Store { rid, items } => {
                w.u8(2);
                w.u64(*rid);
                encode_seq(w, items, |w, (k, t, v)| {
                    w.u64(*k);
                    t.encode(w);
                    w.u64(*v);
                });
            }
            ShardedAbdMsg::StoreAck { rid } => {
                w.u8(3);
                w.u64(*rid);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<ShardedAbdMsg, WireError> {
        let tag = r.u8()?;
        let rid = r.u64()?;
        let ktv = |r: &mut WireReader<'_>| {
            let k: Key = r.u64()?;
            let t = Tag::decode(r)?;
            let v = r.u64()?;
            Ok((k, t, v))
        };
        match tag {
            0 => Ok(ShardedAbdMsg::Query {
                rid,
                keys: decode_seq(r, |r| r.u64())?,
            }),
            1 => Ok(ShardedAbdMsg::QueryResp {
                rid,
                items: decode_seq(r, ktv)?,
            }),
            2 => Ok(ShardedAbdMsg::Store {
                rid,
                items: decode_seq(r, ktv)?,
            }),
            3 => Ok(ShardedAbdMsg::StoreAck { rid }),
            tag => Err(WireError::BadTag {
                what: "ShardedAbdMsg",
                tag,
            }),
        }
    }
}

impl WireMsg for ShardedCasMsg {
    fn encode(&self, w: &mut WireWriter) {
        let kt = |w: &mut WireWriter, (k, t): &(Key, Tag)| {
            w.u64(*k);
            t.encode(w);
        };
        match self {
            ShardedCasMsg::QueryTag { rid, keys } => {
                w.u8(0);
                w.u64(*rid);
                encode_seq(w, keys, |w, k| w.u64(*k));
            }
            ShardedCasMsg::QueryTagResp { rid, items } => {
                w.u8(1);
                w.u64(*rid);
                encode_seq(w, items, kt);
            }
            ShardedCasMsg::PreWrite { rid, items } => {
                w.u8(2);
                w.u64(*rid);
                encode_seq(w, items, |w, (k, t, share)| {
                    w.u64(*k);
                    t.encode(w);
                    w.bytes(share);
                });
            }
            ShardedCasMsg::PreAck { rid } => {
                w.u8(3);
                w.u64(*rid);
            }
            ShardedCasMsg::Finalize { rid, items } => {
                w.u8(4);
                w.u64(*rid);
                encode_seq(w, items, kt);
            }
            ShardedCasMsg::FinAck { rid } => {
                w.u8(5);
                w.u64(*rid);
            }
            ShardedCasMsg::ReadGet { rid, items } => {
                w.u8(6);
                w.u64(*rid);
                encode_seq(w, items, kt);
            }
            ShardedCasMsg::ReadResp { rid, items } => {
                w.u8(7);
                w.u64(*rid);
                encode_seq(w, items, |w, (k, share)| {
                    w.u64(*k);
                    match share {
                        Some(s) => {
                            w.u8(1);
                            w.bytes(s);
                        }
                        None => w.u8(0),
                    }
                });
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<ShardedCasMsg, WireError> {
        let tag = r.u8()?;
        let rid = r.u64()?;
        let kt = |r: &mut WireReader<'_>| {
            let k: Key = r.u64()?;
            let t = Tag::decode(r)?;
            Ok((k, t))
        };
        match tag {
            0 => Ok(ShardedCasMsg::QueryTag {
                rid,
                keys: decode_seq(r, |r| r.u64())?,
            }),
            1 => Ok(ShardedCasMsg::QueryTagResp {
                rid,
                items: decode_seq(r, kt)?,
            }),
            2 => Ok(ShardedCasMsg::PreWrite {
                rid,
                items: decode_seq(r, |r| {
                    let k: Key = r.u64()?;
                    let t = Tag::decode(r)?;
                    let share = r.bytes()?;
                    Ok((k, t, share))
                })?,
            }),
            3 => Ok(ShardedCasMsg::PreAck { rid }),
            4 => Ok(ShardedCasMsg::Finalize {
                rid,
                items: decode_seq(r, kt)?,
            }),
            5 => Ok(ShardedCasMsg::FinAck { rid }),
            6 => Ok(ShardedCasMsg::ReadGet {
                rid,
                items: decode_seq(r, kt)?,
            }),
            7 => Ok(ShardedCasMsg::ReadResp {
                rid,
                items: decode_seq(r, |r| {
                    let k: Key = r.u64()?;
                    let share = match r.u8()? {
                        0 => None,
                        1 => Some(r.bytes()?),
                        tag => {
                            return Err(WireError::BadTag {
                                what: "Option<share>",
                                tag,
                            })
                        }
                    };
                    Ok((k, share))
                })?,
            }),
            tag => Err(WireError::BadTag {
                what: "ShardedCasMsg",
                tag,
            }),
        }
    }
}

impl WireMsg for ShardedHashedMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ShardedHashedMsg::Cas(m) => {
                w.u8(0);
                m.encode(w);
            }
            ShardedHashedMsg::HashAnnounce { rid, items } => {
                w.u8(1);
                w.u64(*rid);
                encode_seq(w, items, |w, (k, t, h)| {
                    w.u64(*k);
                    t.encode(w);
                    w.u64(*h);
                });
            }
            ShardedHashedMsg::HashAck { rid } => {
                w.u8(2);
                w.u64(*rid);
            }
            ShardedHashedMsg::ReadResp { rid, items } => {
                w.u8(3);
                w.u64(*rid);
                encode_seq(w, items, |w, (k, share, digest)| {
                    w.u64(*k);
                    match share {
                        Some(s) => {
                            w.u8(1);
                            w.bytes(s);
                        }
                        None => w.u8(0),
                    }
                    match digest {
                        Some(d) => {
                            w.u8(1);
                            w.u64(*d);
                        }
                        None => w.u8(0),
                    }
                });
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<ShardedHashedMsg, WireError> {
        match r.u8()? {
            0 => Ok(ShardedHashedMsg::Cas(ShardedCasMsg::decode(r)?)),
            1 => {
                let rid = r.u64()?;
                let items = decode_seq(r, |r| {
                    let k: Key = r.u64()?;
                    let t = Tag::decode(r)?;
                    let h = r.u64()?;
                    Ok((k, t, h))
                })?;
                Ok(ShardedHashedMsg::HashAnnounce { rid, items })
            }
            2 => Ok(ShardedHashedMsg::HashAck { rid: r.u64()? }),
            3 => {
                let rid = r.u64()?;
                let items = decode_seq(r, |r| {
                    let k: Key = r.u64()?;
                    let share = match r.u8()? {
                        0 => None,
                        1 => Some(r.bytes()?),
                        tag => {
                            return Err(WireError::BadTag {
                                what: "Option<share>",
                                tag,
                            })
                        }
                    };
                    let digest = match r.u8()? {
                        0 => None,
                        1 => Some(r.u64()?),
                        tag => {
                            return Err(WireError::BadTag {
                                what: "Option<digest>",
                                tag,
                            })
                        }
                    };
                    Ok((k, share, digest))
                })?;
                Ok(ShardedHashedMsg::ReadResp { rid, items })
            }
            tag => Err(WireError::BadTag {
                what: "ShardedHashedMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_and_reg_roundtrip() {
        let t = Tag::new(42, 7);
        assert_eq!(Tag::from_wire(&t.to_wire()).unwrap(), t);
        for inv in [RegInv::Write(99), RegInv::Read] {
            assert_eq!(RegInv::from_wire(&inv.to_wire()).unwrap(), inv);
        }
        let resp = RegResp::ReadFailed(CodeError::NotEnoughShares { have: 2, need: 4 });
        assert_eq!(RegResp::from_wire(&resp.to_wire()).unwrap(), resp);
    }

    #[test]
    fn strictness_rejects_trailing() {
        let mut buf = Tag::new(1, 1).to_wire();
        buf.push(0);
        assert_eq!(Tag::from_wire(&buf), Err(WireError::Trailing { left: 1 }));
    }

    #[test]
    fn hostile_count_is_capped() {
        // A PreWrite claiming 2^32−1 items with no bodies: the count cap
        // rejects it before any allocation.
        let mut w = WireWriter::new();
        w.u8(2);
        w.u64(0);
        w.u32(u32::MAX);
        let err = ShardedCasMsg::from_wire(&w.finish()).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { .. }));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let m = MultiInv { ops: Vec::new() };
        assert_eq!(MultiInv::from_wire(&m.to_wire()).unwrap(), m);
    }
}
