//! Corruption-adversary primitives: tampering with stored server state
//! and with in-flight message payloads.
//!
//! These extend the nemesis fault model (`faults.rs`) from *omission*
//! faults (drop, duplicate, delay, cut) to *corruption* faults — a
//! budget-bounded Byzantine adversary that flips bits in what servers
//! store and what channels carry. Like every fault primitive, both are
//! deterministic pure functions of the current state and a caller-chosen
//! `salt`, and both return the [`StepInfo`] that records them in the
//! trace, so a corruption schedule replays exactly from
//! `(seed, FaultPlan)`.
//!
//! What corruption *means* is protocol-defined: the world only owns the
//! seams. [`Sim::corrupt_server_state`] hands the server automaton to
//! [`Protocol::corrupt_server`], and [`Sim::corrupt_head`] hands the head
//! message of a channel to [`Protocol::corrupt_msg`]; the default
//! implementations refuse, so protocols opt in explicitly. Crucially the
//! hooks tamper with *value-bearing payload only* (share bytes, carried
//! values) — never with routing, and never with integrity metadata such
//! as the hashes the hashed-CAS protocol stores. The adversary corrupts
//! data; it does not get to forge the checksums guarding that data.
//!
//! Both primitives are digest mutation sites: server tampering goes
//! through the same dirty-marking path as [`Sim::server_mut`], and
//! message tampering unfolds the channel component before mutating the
//! arena slot in place, exactly like the queue manipulations in
//! `faults.rs`.

use super::Sim;
use crate::ids::{NodeId, ServerId};
use crate::node::Protocol;
use crate::trace::StepInfo;
use std::sync::Arc;

impl<P: Protocol> Sim<P> {
    /// Tampers with `server`'s stored value-bearing state in
    /// protocol-defined `mode` (e.g. bit-flip a held share, resurrect a
    /// stale version, forge a tag), deterministically in `salt`.
    ///
    /// Returns the trace record on success, or `None` when the protocol
    /// refuses — either it does not implement the corruption hook at all,
    /// or the server currently holds nothing corruptible (no finalized
    /// version yet). Refusals leave the world digest unchanged and are
    /// not recorded, so a schedule that probes an empty server replays
    /// identically to one that never tried.
    ///
    /// Works regardless of endpoint liveness: corruption of stored state
    /// models silent media faults and Byzantine servers, neither of which
    /// waits for the victim to be schedulable.
    ///
    /// # Panics
    ///
    /// Panics on an unknown server id.
    pub fn corrupt_server_state(
        &mut self,
        server: ServerId,
        mode: u8,
        salt: u64,
    ) -> Option<StepInfo> {
        let node = NodeId::Server(server);
        // `server_mut` marks the node's digest component dirty *before*
        // handing out the reference; a refusing hook leaves the state
        // unchanged, so the component re-hashes to the same value.
        let tampered = P::corrupt_server(self.server_mut(server), mode, salt);
        if !tampered {
            return None;
        }
        self.cover(
            super::cover::kind::CORRUPT_STORE,
            node,
            node,
            u64::from(mode),
        );
        Some(StepInfo::CorruptedStore { node, mode })
    }

    /// Tampers with the payload of the head message of the `from → to`
    /// channel, deterministically in `salt`, without touching routing —
    /// the in-flight counterpart of [`Sim::corrupt_server_state`].
    ///
    /// Returns `Ok(None)` when the protocol refuses (the head message
    /// carries no corruptible payload — e.g. an ack or a query); the
    /// message is left byte-identical and nothing is recorded. Like
    /// [`Sim::drop_head`], this works regardless of endpoint liveness or
    /// link cuts: a corrupting network tampers with whatever it holds.
    ///
    /// # Errors
    ///
    /// [`RunError::NoSuchMessage`](super::RunError::NoSuchMessage) if the
    /// channel is empty or absent.
    pub fn corrupt_head(
        &mut self,
        from: NodeId,
        to: NodeId,
        salt: u64,
    ) -> Result<Option<StepInfo>, super::RunError> {
        let row = match self.channels.find((from, to)) {
            Some(r) if self.channels.len[r] > 0 => r,
            _ => return Err(super::RunError::NoSuchMessage { from, to }),
        };
        // Unfold the row's digest component while the cache still matches
        // the queue contents, then mutate the arena slot in place.
        self.mark_chan_dirty(row);
        let t = Arc::make_mut(&mut self.channels);
        let head = t.head[row];
        let tampered = P::corrupt_msg(t.arena.get_mut(head), salt);
        if !tampered {
            return Ok(None);
        }
        self.cover(super::cover::kind::CORRUPT_MSG, from, to, 0);
        Ok(Some(StepInfo::CorruptedMsg { from, to }))
    }
}
