//! The schedule explorer: fans seeds across workers, runs each seed's
//! sampled fault plan, and checks the resulting history against a
//! consistency oracle.
//!
//! Seed `i` fully determines both the sampled [`FaultPlan`] (from a salted
//! stream, so plan sampling and schedule driving never share draws) and
//! the schedule, so a reported violation is a self-contained
//! `(seed, plan)` pair. Fan-out follows the probe-engine pattern: scoped
//! workers pull seed indices from a shared counter and write results into
//! index-addressed slots, so the outcome is independent of thread
//! scheduling — one worker and sixteen agree exactly.

use crate::harness::Cluster;
use crate::nemesis::driver::{run_plan, NemesisRun};
use crate::nemesis::plan::{ClusterShape, FaultPlan};
use crate::reg::{RegInv, RegResp};
use crate::value::Value;
use shmem_sim::Protocol;
use shmem_spec::history::History;
use shmem_spec::{check_atomic, check_no_fabrication, check_regular, check_safe};
use shmem_util::DetRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Salt separating the plan-sampling RNG stream from the schedule stream.
const PLAN_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which consistency condition the explorer enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Linearizability ([`check_atomic`]).
    Atomic,
    /// Regularity ([`check_regular`]).
    Regular,
    /// Safeness ([`check_safe`]).
    Safe,
    /// Integrity ([`check_no_fabrication`]): reads may be stale or fail
    /// visibly, but a completed read returning a never-written value is a
    /// *silent corruption*. The verdict corruption schedules are judged
    /// by — hashed CAS must stay clean, plain CAS and ABD must not.
    NoSilentCorruption,
}

impl Oracle {
    /// Checks `history`, returning the violation's description if any.
    pub fn check(self, history: &History<Value>) -> Result<(), String> {
        let verdict = match self {
            Oracle::Atomic => check_atomic(history),
            Oracle::Regular => check_regular(history),
            Oracle::Safe => check_safe(history),
            Oracle::NoSilentCorruption => check_no_fabrication(history),
        };
        verdict.map(|_| ()).map_err(|v| format!("{v:?}"))
    }

    /// The oracle's stable name (artifact field).
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Atomic => "atomic",
            Oracle::Regular => "regular",
            Oracle::Safe => "safe",
            Oracle::NoSilentCorruption => "no-silent-corruption",
        }
    }

    /// Decodes [`Oracle::name`].
    ///
    /// # Errors
    ///
    /// The unknown name.
    pub fn from_name(name: &str) -> Result<Oracle, String> {
        match name {
            "atomic" => Ok(Oracle::Atomic),
            "regular" => Ok(Oracle::Regular),
            "safe" => Ok(Oracle::Safe),
            "no-silent-corruption" => Ok(Oracle::NoSilentCorruption),
            other => Err(format!("unknown oracle {other:?}")),
        }
    }
}

/// A consistency violation found by the explorer: the seed and plan that
/// reproduce it, plus what the oracle said.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The seed that drives schedule and faults.
    pub seed: u64,
    /// The fault plan (sampled, or shrunk by the caller).
    pub plan: FaultPlan,
    /// The oracle that rejected the history.
    pub oracle: Oracle,
    /// Debug rendering of the spec checker's violation.
    pub violation: String,
    /// The violating history.
    pub history: History<Value>,
}

/// The plan a given seed samples for `shape` — shared by explorer, tests,
/// and replay tooling.
pub fn plan_for_seed(seed: u64, shape: ClusterShape) -> FaultPlan {
    FaultPlan::sample(&mut DetRng::seed_from_u64(seed ^ PLAN_SALT), shape)
}

/// The corruption-armed plan a given seed samples for `shape`: the same
/// salted stream as [`plan_for_seed`] with the corruption draws appended,
/// so the crash/partition/delay base of the schedule is shared between the
/// clean and corrupt explorations of a seed.
pub fn corrupt_plan_for_seed(seed: u64, shape: ClusterShape) -> FaultPlan {
    FaultPlan::sample_corrupt(&mut DetRng::seed_from_u64(seed ^ PLAN_SALT), shape)
}

/// The shape of the cluster a factory builds, observed from an instance.
pub fn observe_shape<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &Cluster<P>,
) -> ClusterShape {
    ClusterShape {
        servers: cluster.sim.server_count() as u32,
        f: cluster.f(),
        clients: cluster.sim.client_count() as u32,
        reordering: cluster.sim.config().channel_order == shmem_sim::ChannelOrder::Any,
    }
}

/// Runs one seed end to end against a fresh cluster from `factory` and
/// returns the violation, if any.
pub fn run_seed<P, F>(factory: &F, oracle: Oracle, seed: u64) -> Option<Violation>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P>,
{
    run_seed_with(factory, oracle, seed, plan_for_seed)
}

/// [`run_seed`] with an explicit plan sampler ([`plan_for_seed`],
/// [`corrupt_plan_for_seed`], or a test's own).
pub fn run_seed_with<P, F, S>(
    factory: &F,
    oracle: Oracle,
    seed: u64,
    sampler: S,
) -> Option<Violation>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P>,
    S: Fn(u64, ClusterShape) -> FaultPlan,
{
    let mut cluster = factory();
    let plan = sampler(seed, observe_shape(&cluster));
    let run = run_plan(&mut cluster, seed, &plan);
    violation_of(&run, oracle, seed, &plan)
}

fn violation_of(
    run: &NemesisRun,
    oracle: Oracle,
    seed: u64,
    plan: &FaultPlan,
) -> Option<Violation> {
    oracle.check(&run.history).err().map(|violation| Violation {
        seed,
        plan: plan.clone(),
        oracle,
        violation,
        history: run.history.clone(),
    })
}

/// Explores seeds `0..seeds`, stopping at the smallest-seed violation.
///
/// Deterministic across worker counts: workers claim seeds in index order
/// from a shared counter and only skip seeds *above* the best violation
/// found so far, so every seed below the reported one is guaranteed to
/// have been checked (and found clean).
pub fn explore<P, F>(factory: &F, oracle: Oracle, seeds: u64, workers: usize) -> Option<Violation>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P> + Sync,
{
    explore_with(factory, oracle, seeds, workers, plan_for_seed)
}

/// [`explore`] with an explicit plan sampler. Worker-count invariance
/// holds for any deterministic sampler: the sampler sees only
/// `(seed, shape)`, never thread state.
pub fn explore_with<P, F, S>(
    factory: &F,
    oracle: Oracle,
    seeds: u64,
    workers: usize,
    sampler: S,
) -> Option<Violation>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P> + Sync,
    S: Fn(u64, ClusterShape) -> FaultPlan + Sync,
{
    let workers = workers.max(1).min(seeds.max(1) as usize);
    if workers == 1 {
        return (0..seeds).find_map(|seed| run_seed_with(factory, oracle, seed, &sampler));
    }
    let next = AtomicUsize::new(0);
    let best = AtomicU64::new(u64::MAX);
    let found: Vec<Violation> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<Violation> = Vec::new();
                    loop {
                        let seed = next.fetch_add(1, Ordering::Relaxed) as u64;
                        if seed >= seeds {
                            break;
                        }
                        if seed > best.load(Ordering::Relaxed) {
                            continue; // a smaller violating seed already won
                        }
                        if let Some(v) = run_seed_with(factory, oracle, seed, &sampler) {
                            best.fetch_min(seed, Ordering::Relaxed);
                            local.push(v);
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    found.into_iter().min_by_key(|v| v.seed)
}

/// Explores seeds `0..seeds` exhaustively and returns *every* violation,
/// in seed order. Used to assert an algorithm is clean over a budget.
pub fn sweep<P, F>(factory: &F, oracle: Oracle, seeds: u64, workers: usize) -> Vec<Violation>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P> + Sync,
{
    sweep_with(factory, oracle, seeds, workers, plan_for_seed)
}

/// [`sweep`] with an explicit plan sampler — the corruption campaigns run
/// `sweep_with(.., corrupt_plan_for_seed)` to count silent-corruption
/// verdicts over a seed budget.
pub fn sweep_with<P, F, S>(
    factory: &F,
    oracle: Oracle,
    seeds: u64,
    workers: usize,
    sampler: S,
) -> Vec<Violation>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P> + Sync,
    S: Fn(u64, ClusterShape) -> FaultPlan + Sync,
{
    let workers = workers.max(1).min(seeds.max(1) as usize);
    if workers == 1 {
        return (0..seeds)
            .filter_map(|seed| run_seed_with(factory, oracle, seed, &sampler))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut found: Vec<Violation> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<Violation> = Vec::new();
                    loop {
                        let seed = next.fetch_add(1, Ordering::Relaxed) as u64;
                        if seed >= seeds {
                            break;
                        }
                        local.extend(run_seed_with(factory, oracle, seed, &sampler));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    found.sort_by_key(|v| v.seed);
    found
}

/// Runs seeds `0..seeds` against fresh clusters and merges every run's
/// metrics registry into one aggregate.
///
/// Deterministic across worker counts: workers claim seeds from a shared
/// counter and write each run's registry into its seed's index-addressed
/// slot; the merge then folds the slots in seed order. Histogram and
/// ledger merges are associative and commutative besides, so this is
/// invariant twice over — one worker and sixteen produce byte-identical
/// [`shmem_sim::MetricsRegistry::to_json`] exports.
pub fn aggregate_metrics<P, F>(
    factory: &F,
    seeds: u64,
    workers: usize,
) -> shmem_sim::MetricsRegistry
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Cluster<P> + Sync,
{
    let run_one = |seed: u64| {
        let mut cluster = factory();
        let plan = plan_for_seed(seed, observe_shape(&cluster));
        run_plan(&mut cluster, seed, &plan).metrics
    };
    let workers = workers.max(1).min(seeds.max(1) as usize);
    let per_seed: Vec<Option<shmem_sim::MetricsRegistry>> = if workers == 1 {
        (0..seeds).map(|seed| Some(run_one(seed))).collect()
    } else {
        let mut slots: Vec<Option<shmem_sim::MetricsRegistry>> = vec![None; seeds as usize];
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local: Vec<(usize, shmem_sim::MetricsRegistry)> = Vec::new();
                        loop {
                            let seed = next.fetch_add(1, Ordering::Relaxed);
                            if seed as u64 >= seeds {
                                break;
                            }
                            local.push((seed, run_one(seed as u64)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (idx, m) in h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)) {
                    slots[idx] = Some(m);
                }
            }
        });
        slots
    };
    let mut total = shmem_sim::MetricsRegistry::new(shmem_sim::MetricsLevel::Full, 0);
    for m in per_seed.into_iter().flatten() {
        total.merge(&m);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{AbdCluster, LossyCluster, NwbCluster};
    use crate::value::ValueSpec;

    #[test]
    fn finds_lossy_regularity_violation_quickly() {
        let factory = || LossyCluster::new(3, 1, 3, 8, ValueSpec::from_bits(64.0));
        let v = explore(&factory, Oracle::Regular, 50, 2).expect("lossy must violate");
        // Replay: the violation reproduces from (seed, plan) alone.
        let mut c = factory();
        let run = run_plan(&mut c, v.seed, &v.plan);
        assert!(Oracle::Regular.check(&run.history).is_err());
    }

    #[test]
    fn explore_is_worker_count_invariant() {
        let factory = || NwbCluster::new(3, 1, 3, ValueSpec::from_bits(64.0));
        let seq = explore(&factory, Oracle::Atomic, 120, 1);
        let par = explore(&factory, Oracle::Atomic, 120, 4);
        match (seq, par) {
            (Some(a), Some(b)) => {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.plan, b.plan);
                assert_eq!(a.violation, b.violation);
            }
            (None, None) => {}
            (a, b) => panic!(
                "worker counts disagree: seq={:?} par={:?}",
                a.map(|v| v.seed),
                b.map(|v| v.seed)
            ),
        }
    }

    #[test]
    fn aggregate_metrics_is_worker_count_invariant() {
        let factory = || AbdCluster::new(3, 1, 3, ValueSpec::from_bits(64.0));
        let exports: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&w| aggregate_metrics(&factory, 12, w).to_json().to_compact())
            .collect();
        assert_eq!(exports[0], exports[1]);
        assert_eq!(exports[0], exports[2]);
        // The aggregate saw real traffic, not twelve empty runs.
        let total = aggregate_metrics(&factory, 12, 2);
        assert!(total.global().sent > 0);
        assert_eq!(total.ops_completed(), total.op_latency().count());
    }

    #[test]
    fn sweep_is_worker_count_invariant_at_scale() {
        // NoWriteBack violates atomicity at many seeds, so this exercises
        // the violation-collecting path (not just empty results) across a
        // seed budget large enough for real work-stealing interleavings.
        let factory = || NwbCluster::new(3, 1, 3, ValueSpec::from_bits(64.0));
        let runs: Vec<Vec<Violation>> = [1usize, 2, 4]
            .iter()
            .map(|&w| sweep(&factory, Oracle::Atomic, 300, w))
            .collect();
        assert!(
            !runs[0].is_empty(),
            "NoWriteBack should violate somewhere in 300 seeds"
        );
        for pair in runs.windows(2) {
            assert_eq!(pair[0].len(), pair[1].len());
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.plan, b.plan);
                assert_eq!(a.violation, b.violation);
            }
        }
    }

    #[test]
    fn corrupt_sweep_separates_hashed_from_plain_cas() {
        use crate::harness::{CasCluster, HashedCluster};
        // Same corrupt plans, same integrity oracle. Hashed CAS turns
        // every tampered share into a visible ReadFailed (incomplete in
        // the history — the oracle ignores it); plain CAS completes reads
        // with fabricated values somewhere in the budget.
        let hashed = || HashedCluster::new(5, 1, 3, ValueSpec::from_bits(64.0));
        let clean = sweep_with(
            &hashed,
            Oracle::NoSilentCorruption,
            60,
            2,
            corrupt_plan_for_seed,
        );
        assert!(
            clean.is_empty(),
            "hashed CAS read a fabricated value at seeds {:?}",
            clean.iter().map(|v| v.seed).collect::<Vec<_>>()
        );
        let plain = || CasCluster::new(5, 1, 3, ValueSpec::from_bits(64.0));
        let v = explore_with(
            &plain,
            Oracle::NoSilentCorruption,
            400,
            2,
            corrupt_plan_for_seed,
        )
        .expect("plain CAS must silently return a corrupted value somewhere in 400 seeds");
        assert!(!v.plan.corrupt_servers.is_empty());
    }

    #[test]
    fn corrupt_explore_is_worker_count_invariant() {
        use crate::harness::CasCluster;
        let factory = || CasCluster::new(5, 1, 3, ValueSpec::from_bits(64.0));
        let seq = explore_with(
            &factory,
            Oracle::NoSilentCorruption,
            400,
            1,
            corrupt_plan_for_seed,
        );
        let par = explore_with(
            &factory,
            Oracle::NoSilentCorruption,
            400,
            4,
            corrupt_plan_for_seed,
        );
        match (seq, par) {
            (Some(a), Some(b)) => {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.plan, b.plan);
                assert_eq!(a.violation, b.violation);
            }
            (None, None) => panic!("expected a violation in 400 corrupt seeds"),
            (a, b) => panic!(
                "worker counts disagree: seq={:?} par={:?}",
                a.map(|v| v.seed),
                b.map(|v| v.seed)
            ),
        }
    }

    #[test]
    fn abd_clean_over_a_small_sweep() {
        let factory = || AbdCluster::new(3, 1, 3, ValueSpec::from_bits(64.0));
        let violations = sweep(&factory, Oracle::Atomic, 40, 4);
        assert!(
            violations.is_empty(),
            "ABD violated atomicity at seeds {:?}",
            violations.iter().map(|v| v.seed).collect::<Vec<_>>()
        );
    }
}
