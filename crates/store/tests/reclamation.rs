//! Epoch-reclamation unit tests: no use-after-free under churn, deferred
//! counters drain to zero at quiescence, and the store's live-allocation
//! counters return to baseline (the leak check).
//!
//! The reclamation scheme defers every displaced version until the
//! global epoch has advanced two steps past its retirement stamp; these
//! tests pin down the three properties the linearizability suite relies
//! on: pinned readers always see intact versions, a pinned guard *holds
//! back* reclamation, and quiescent collection frees everything that was
//! ever displaced.

use shmem_algorithms::backend::CasBackend;
use shmem_algorithms::cas::ShardedCasConfig;
use shmem_algorithms::multikey::ShardMap;
use shmem_algorithms::tag::Tag;
use shmem_algorithms::value::{Value, ValueSpec};
use shmem_store::coded::StoreCasBackend;
use shmem_store::epoch::Collector;
use shmem_store::reg::RegStore;
use shmem_util::DetRng;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

const KEYS: u64 = 4;

/// The value a writer publishes alongside `tag` — derivable from the tag,
/// so any reader can verify the version it dereferenced is intact.
fn bound_value(tag: Tag) -> Value {
    tag.seq * 1000 + u64::from(tag.writer)
}

/// Writers churn a small key set while readers continuously dereference
/// versions under pins and verify `value == bound_value(tag)`: a freed or
/// torn version would break the binding. Reclamation runs concurrently
/// throughout (retire triggers collection every few ops).
#[test]
fn churn_readers_never_observe_freed_versions() {
    let store = Arc::new(RegStore::new());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 1..=2u32 {
            let handle = store.handle();
            let mut rng = DetRng::seed_from_u64(0xc0ffee ^ u64::from(w));
            scope.spawn(move || {
                for _ in 0..4_000 {
                    let key = rng.gen_range(0..KEYS);
                    let cur = handle.load(key).map_or(Tag::ZERO, |(t, _)| t);
                    let tag = cur.successor(w);
                    handle.store_if_newer(key, tag, bound_value(tag));
                }
            });
        }
        for r in 0..2u32 {
            let handle = store.handle();
            let stop = Arc::clone(&stop);
            let mut rng = DetRng::seed_from_u64(0xfeed ^ u64::from(r));
            scope.spawn(move || {
                while !stop.load(SeqCst) {
                    let key = rng.gen_range(0..KEYS);
                    if let Some((tag, value)) = handle.load(key) {
                        assert_eq!(
                            value,
                            bound_value(tag),
                            "reader saw a torn or reclaimed version"
                        );
                    }
                }
            });
        }
        // Writers finish first; scope waits on readers after the flag.
        scope.spawn({
            let stop = Arc::clone(&stop);
            move || {
                // This thread only flips the flag once writers are done —
                // but scoped threads join at scope end regardless, so just
                // sleep briefly and flip.
                std::thread::sleep(std::time::Duration::from_millis(200));
                stop.store(true, SeqCst);
            }
        });
    });

    // Some displacement must have happened for the test to mean anything.
    assert!(store.collector().reclaimed() > 0, "churn reclaimed nothing");
}

/// At quiescence, deferred counters drain to zero and the live-allocation
/// counter returns to baseline: one current version per touched key,
/// every displaced version freed.
#[test]
fn deferred_drains_to_zero_at_quiescence() {
    let store = Arc::new(RegStore::new());
    let handle = store.handle();
    for round in 1..=200u64 {
        for key in 0..KEYS {
            let tag = Tag::new(round, 7);
            handle.store_if_newer(key, tag, bound_value(tag));
        }
    }
    // 200 rounds × KEYS stores; all but the last per key were displaced.
    handle.collect();
    handle.collect();
    handle.collect();
    let c = store.collector();
    assert_eq!(c.deferred(), 0, "deferred garbage survived quiescence");
    assert_eq!(
        c.reclaimed(),
        199 * KEYS,
        "every displaced version must be freed exactly once"
    );
    assert_eq!(
        store.live_versions(),
        KEYS as usize,
        "leak check: exactly one live version per key at quiescence"
    );
}

/// A pinned guard holds back reclamation: garbage retired while another
/// participant stays pinned is not freed until that pin drops.
#[test]
fn pinned_guard_blocks_reclamation() {
    let collector = Collector::new();
    let reader = collector.register();
    let writer = collector.register();

    let _guard = reader.pin();
    writer.retire(Box::new(vec![0u8; 16]));
    for _ in 0..5 {
        writer.collect();
    }
    assert_eq!(
        collector.deferred(),
        1,
        "garbage freed while a reader was still pinned"
    );

    drop(_guard);
    for _ in 0..3 {
        writer.collect();
    }
    assert_eq!(collector.deferred(), 0, "unpinned garbage must drain");
    assert_eq!(collector.reclaimed(), 1);
}

/// A nested `pin` under a live guard must reuse the already-published
/// slot, not republish it at a newer epoch: republishing would move the
/// participant forward, unblock the collector two epochs past the outer
/// guard's pin, and free versions that guard still dereferences.
#[test]
fn nested_pin_keeps_the_outer_guard_epoch() {
    let collector = Collector::new();
    let reader = collector.register();
    let writer = collector.register();

    // Outer guard pins at the current epoch e; a version retired now is
    // stamped e and must stay deferred while the guard lives.
    let outer = reader.enter();
    writer.retire(Box::new(vec![1u8; 8]));

    // The epoch can advance once (everyone is at e) but must then
    // stall: freeing needs e+2, reachable only after the pin drops.
    writer.collect();
    let inner = reader.pin(); // nested: the slot must stay pinned at e
    for _ in 0..5 {
        writer.collect();
    }
    assert_eq!(
        collector.deferred(),
        1,
        "a nested pin republished the slot and let reclamation pass a live guard"
    );

    drop(inner);
    drop(outer);
    reader.collect(); // releases the standing pin left by `enter`
    writer.collect();
    assert_eq!(collector.deferred(), 0, "unpinned garbage must drain");
    assert_eq!(collector.reclaimed(), 1);
}

/// Garbage owned by a handle that exits early is handed to the collector
/// (orphaned) and freed by `flush` at quiescence — dropping a thread's
/// handle never leaks its deferred list.
#[test]
fn orphaned_garbage_is_flushed() {
    let collector = Collector::new();
    {
        let handle = collector.register();
        handle.retire(Box::new(String::from("orphan")));
        // Handle drops here with the garbage still deferred.
    }
    assert_eq!(collector.deferred(), 1);
    collector.flush();
    assert_eq!(collector.deferred(), 0, "orphans must drain at quiescence");
    assert_eq!(collector.reclaimed(), 1);
}

/// The epoch only advances when every pinned participant has caught up,
/// and pin/unpin cycles let it advance freely.
#[test]
fn epoch_advances_only_at_consensus() {
    let collector = Collector::new();
    let a = collector.register();
    let b = collector.register();

    let e0 = collector.epoch();
    let guard_a = a.pin();
    b.collect(); // a is pinned at the current epoch — advance allowed
    assert!(
        collector.epoch() > e0,
        "current pins must not block advance"
    );

    // Now `a`'s pin is one epoch behind; advance must stall until it
    // unpins.
    let stalled = collector.epoch();
    b.collect();
    assert_eq!(collector.epoch(), stalled, "stale pin must block advance");
    drop(guard_a);
    b.collect();
    assert!(collector.epoch() > stalled);
}

/// RCU churn on the coded store: states displaced by pre-write/finalize
/// cycles are reclaimed, GC depth 0 bounds the per-key version count, and
/// the live-state counter returns to baseline at quiescence.
#[test]
fn coded_store_reclaims_displaced_states() {
    let cfg = ShardedCasConfig::native(ShardMap::full(1), 0, ValueSpec::from_bits(64.0)).with_gc(0);
    let mut backend = StoreCasBackend::new(cfg.clone(), 0, 0);
    let code = cfg.code();

    for round in 1..=100u64 {
        for key in 0..KEYS {
            let tag = Tag::new(round, 3);
            let shares = code.encode_bytes(&ValueSpec::to_bytes(bound_value(tag)));
            backend.pre_write(key, tag, shares[0].clone());
            backend.finalize(key, tag);
            // GC depth 0: only the newest finalized tag (and anything
            // newer) survives per key.
            assert!(
                backend.versions_held(key) <= 2,
                "gc(0) must bound held versions"
            );
        }
    }
    backend.collect();
    backend.collect();
    backend.collect();
    let store = Arc::clone(backend.store());
    let c = store.collector();
    assert_eq!(c.deferred(), 0, "coded deferred garbage survived");
    assert!(c.reclaimed() > 0, "RCU churn reclaimed nothing");
    // One live state per touched key, plus one per key in the hash
    // side-table if any (none here).
    assert_eq!(
        store.live_states(),
        KEYS as usize,
        "leak check: one live coded state per key"
    );
}
