//! The Section 6 staged-delivery construction, executable.
//!
//! Theorem 6.5's proof builds an execution with `ν` concurrent writers,
//! each halted at the start of its (single) value-dependent phase, so that
//! every value-dependent message sits undelivered in the client-to-server
//! channels (the point `P₀^{~v}` of Section 6.4.1). The adversary then
//! releases those messages to growing server *prefixes*: all writers'
//! messages to the first `a₁` servers, all-but-one writer's to servers
//! `a₁..a₂`, and so on (Figure 4). At each stage the construction asks
//! which value `v_j` has become *returnable without its own writer's
//! further help* — the `(j, C₀)`-valency of Section 6.4.2 — and Lemma 6.10
//! extracts an order `σ` and thresholds `a₁ < a₂ < … < a_ν` that make the
//! map from value-vectors to `(σ, ~a, server states)` injective, which
//! forces `Π |S_i| ≥ C(|V|−1, ν) / (ν! · (N−f+ν−1)^ν)`.
//!
//! This module reproduces the construction against real algorithms:
//! [`build_alpha0`] halts the writers at the value-dependent frontier,
//! [`deliver_value_dependent`] scripts the staged releases,
//! [`probe_restricted`] implements the `(j, C₀)`-valency probes, and
//! [`staged_search`] runs the Lemma 6.10 search. [`vector_counting`]
//! enumerates value-vectors over a small domain and verifies injectivity.

use crate::probe::{ProbeEngine, Schedule};
use shmem_algorithms::reg::{RegInv, RegResp};
use shmem_algorithms::value::Value;
use shmem_sim::{hash_of, ClientId, NodeId, Point, Protocol, RunError, Sim};
use shmem_util::DetRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Parameters of a Section 6 experiment.
pub struct MultiWriteSetup<P: Protocol> {
    /// Number of concurrent writers `ν`.
    pub nu: u32,
    /// Failure tolerance `f` of the probed algorithm (with bounded
    /// concurrency: Theorem 6.5's liveness condition).
    pub f: u32,
    /// Classifier for *upstream* (client-to-server) value-dependent
    /// messages — the paper's Definition 6.4.
    pub is_value_dependent: fn(&P::Msg) -> bool,
}

impl<P: Protocol> MultiWriteSetup<P> {
    /// Writer clients `C₁ … C_ν` are clients `0 .. ν`.
    pub fn writers(&self) -> Vec<ClientId> {
        (0..self.nu).map(ClientId).collect()
    }

    /// The reader is client `ν`.
    pub fn reader(&self) -> ClientId {
        ClientId(self.nu)
    }

    /// How many servers the construction fails at the beginning:
    /// `max(f + 1 − ν, 0)` (Section 6.4.1 line 2, for `ν ≤ f + 1`).
    pub fn failures(&self) -> u32 {
        (self.f + 1).saturating_sub(self.nu)
    }
}

/// Errors from the staged construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiWriteError {
    /// The simulator reported an error.
    Sim(RunError),
    /// No `(a, j)` candidate was found at some stage — for an algorithm
    /// satisfying Theorem 6.5's assumptions this refutes its liveness or
    /// weak regularity.
    NoCandidate {
        /// The stage (1-based) that found no candidate.
        stage: u32,
    },
}

impl fmt::Display for MultiWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiWriteError::Sim(e) => write!(f, "simulation error: {e}"),
            MultiWriteError::NoCandidate { stage } => {
                write!(f, "no (a, j) candidate at stage {stage}")
            }
        }
    }
}

impl std::error::Error for MultiWriteError {}

impl From<RunError> for MultiWriteError {
    fn from(e: RunError) -> MultiWriteError {
        MultiWriteError::Sim(e)
    }
}

/// Builds the execution `α₀^{~v}` of Section 6.4.1: fail the designated
/// servers, invoke `write(values[i])` at writer `i`, then deliver
/// *everything except upstream value-dependent messages* until quiescence.
/// At the returned point every writer has sent its value-dependent
/// messages, none of which has been delivered.
///
/// # Errors
///
/// Propagates simulator errors (step-limit exhaustion on livelock).
///
/// # Panics
///
/// Panics unless `values.len() == ν`.
pub fn build_alpha0<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    mut sim: Sim<P>,
    setup: &MultiWriteSetup<P>,
    values: &[Value],
) -> Result<Sim<P>, MultiWriteError> {
    assert_eq!(values.len(), setup.nu as usize, "one value per writer");
    sim.fail_last_servers(setup.failures());
    for (i, &v) in values.iter().enumerate() {
        sim.invoke(ClientId(i as u32), RegInv::Write(v))?;
    }
    run_withholding(&mut sim, setup, &setup.writers().into_iter().collect())?;
    Ok(sim)
}

/// Steps the world fairly, never delivering an upstream value-dependent
/// message from a client in `restricted`, until no other step is possible.
fn run_withholding<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    sim: &mut Sim<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
) -> Result<u64, MultiWriteError> {
    let limit = sim.config().step_limit;
    let mut steps = 0u64;
    let mut cursor = 0usize;
    loop {
        let options = sim.step_options();
        let allowed: Vec<(NodeId, NodeId)> = options
            .into_iter()
            .filter(|&(from, to)| !is_withheld(sim, setup, restricted, from, to))
            .collect();
        if allowed.is_empty() {
            return Ok(steps);
        }
        let pick = allowed[cursor % allowed.len()];
        cursor += 1;
        sim.deliver_one(pick.0, pick.1)?;
        steps += 1;
        if steps > limit {
            return Err(RunError::StepLimit { steps: limit }.into());
        }
    }
}

fn is_withheld<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    sim: &Sim<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
    from: NodeId,
    to: NodeId,
) -> bool {
    let NodeId::Client(c) = from else {
        return false;
    };
    if !restricted.contains(&c) || !to.is_server() {
        return false;
    }
    sim.peek_head(from, to)
        .is_some_and(|m| (setup.is_value_dependent)(m))
}

/// Delivers the queued upstream value-dependent messages from each client
/// in `writers` to each server in `servers` (the staged releases of
/// Section 6.4.1). Messages triggered by these deliveries (acks, gossip)
/// are left in flight.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn deliver_value_dependent<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    sim: &mut Sim<P>,
    setup: &MultiWriteSetup<P>,
    writers: &[ClientId],
    servers: std::ops::Range<u32>,
) -> Result<(), MultiWriteError> {
    for &w in writers {
        for s in servers.start..servers.end {
            let from = NodeId::Client(w);
            let to = NodeId::server(s);
            if sim.is_failed(to) {
                continue;
            }
            while sim
                .peek_head(from, to)
                .is_some_and(|m| (setup.is_value_dependent)(m))
            {
                sim.deliver_one(from, to)?;
            }
        }
    }
    Ok(())
}

/// The `(j, C₀)`-valency probe of Section 6.4.2, by schedule sampling:
/// fork the point, invoke a read, and run schedules (one fair + `seeds`
/// random) in which clients in `restricted` never deliver upstream
/// value-dependent messages. Returns every value some schedule's read
/// returned.
pub fn probe_restricted<P>(
    point: &Sim<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
    seeds: u64,
) -> BTreeSet<Value>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    probe_restricted_with(
        &ProbeEngine::sequential(),
        &point.snapshot(),
        setup,
        restricted,
        seeds,
    )
}

/// The schedule of the `i`-th restricted probe: fair round-robin first,
/// then random schedules seeded `1..=seeds` (matching the legacy sampling
/// loop, whose seed 0 *was* the fair schedule).
fn nth_restricted_schedule(i: usize) -> Schedule {
    if i == 0 {
        Schedule::Fair
    } else {
        Schedule::Seeded(i as u64)
    }
}

/// Runs one restricted probe under an explicit [`Schedule`].
fn probe_once_schedule<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
    schedule: Schedule,
) -> Option<Value> {
    match schedule {
        Schedule::Fair => {
            let mut cursor = 0u64;
            probe_once(point, setup, restricted, move |len| {
                let c = cursor as usize % len;
                cursor += 1;
                c
            })
        }
        Schedule::Seeded(seed) => {
            let mut rng = DetRng::seed_from_u64(seed);
            probe_once(point, setup, restricted, move |len| rng.gen_range(0..len))
        }
    }
}

/// [`probe_restricted`] through a [`ProbeEngine`]: the `seeds + 1`
/// schedules fan out over the engine's workers and every verdict is
/// memoized under the point digest plus a digest of the probe
/// configuration (the restriction set, the schedule, and the setup — the
/// classifier enters as a function-pointer address, which is stable for
/// the lifetime of the process the cache lives in).
pub fn probe_restricted_with<P>(
    engine: &ProbeEngine,
    point: &Point<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
    seeds: u64,
) -> BTreeSet<Value>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    engine
        .map(seeds as usize + 1, |i| {
            restricted_verdict(engine, point, setup, restricted, nth_restricted_schedule(i))
        })
        .into_iter()
        .flatten()
        .collect()
}

/// One memoized restricted-probe verdict — the cache-facing primitive both
/// [`probe_restricted_with`] and [`staged_search_with`] fan out over.
fn restricted_verdict<P>(
    engine: &ProbeEngine,
    point: &Point<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
    schedule: Schedule,
) -> Option<Value>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
{
    let config = hash_of(&(
        "restricted",
        setup.nu,
        setup.f,
        setup.is_value_dependent as usize,
        restricted,
        schedule,
    ));
    engine.probe(point.digest(), config, || {
        probe_once_schedule(point.sim(), setup, restricted, schedule)
    })
}

fn probe_once<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    setup: &MultiWriteSetup<P>,
    restricted: &BTreeSet<ClientId>,
    mut choose: impl FnMut(usize) -> usize,
) -> Option<Value> {
    let mut sim = point.fork();
    let reader = setup.reader();
    sim.invoke(reader, RegInv::Read).ok()?;
    let limit = sim.config().step_limit;
    let mut steps = 0u64;
    while sim.has_open_op(reader) {
        let options: Vec<(NodeId, NodeId)> = sim
            .step_options()
            .into_iter()
            .filter(|&(from, to)| !is_withheld(&sim, setup, restricted, from, to))
            .collect();
        if options.is_empty() {
            return None;
        }
        let pick = options[choose(options.len())];
        sim.deliver_one(pick.0, pick.1).ok()?;
        steps += 1;
        if steps > limit {
            return None;
        }
    }
    sim.ops()
        .iter()
        .rev()
        .find(|o| o.client == reader)
        .and_then(|o| o.response)
        .and_then(RegResp::read_value)
}

/// The profile Lemma 6.10 extracts from one value-vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagedProfile {
    /// `σ`: `sigma[i]` is the (0-based) writer index chosen at stage `i+1`.
    pub sigma: Vec<u32>,
    /// The thresholds `a₁ < a₂ < … < a_ν` (numbers of servers, 1-based
    /// counts).
    pub a: Vec<u32>,
    /// Digests of the first `min(N − f + ν − 1, N)` servers at the final
    /// point — the `~S^{~v}_ν` of Section 6.4.4.
    pub final_states: Vec<u64>,
}

/// The injectivity key of Section 6.4.4: `(σ, ~a, ~S)`.
pub type ProfileKey = (Vec<u32>, Vec<u32>, Vec<u64>);

impl StagedProfile {
    /// The injectivity key of Section 6.4.4: `(σ, ~a, ~S)`.
    pub fn key(&self) -> ProfileKey {
        (
            self.sigma.clone(),
            self.a.clone(),
            self.final_states.clone(),
        )
    }
}

/// Runs the Lemma 6.10 search for one value-vector: starting from
/// `α₀^{~v}`, at each stage `i+1` find the smallest prefix size
/// `a > a_i` such that delivering the not-yet-chosen writers' value-
/// dependent messages to servers `a_i .. a` makes some unchosen `v_j`
/// returnable with `{σ(1..i), j}` restricted; commit `(a, j)` with the
/// value-order tie-break.
///
/// # Errors
///
/// [`MultiWriteError::NoCandidate`] if no stage candidate exists —
/// impossible for algorithms satisfying the theorem's hypotheses.
///
/// # Panics
///
/// Panics unless `values.len() == ν`.
pub fn staged_search<P, F>(
    make_sim: F,
    setup: &MultiWriteSetup<P>,
    values: &[Value],
    seeds: u64,
) -> Result<StagedProfile, MultiWriteError>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P>,
    Sim<P>: Send + Sync,
{
    staged_search_with(&ProbeEngine::sequential(), make_sim, setup, values, seeds)
}

/// [`staged_search`] through a [`ProbeEngine`]: each candidate prefix is
/// forked once and snapshotted, and the `(j, C₀)`-valency probes of every
/// unchosen writer fan out over the engine's workers with memoized
/// verdicts. The stage loop itself stays sequential — stage `i+1` extends
/// the world stage `i` committed — so the extracted profile is identical
/// to the sequential search for any worker count.
pub fn staged_search_with<P, F>(
    engine: &ProbeEngine,
    make_sim: F,
    setup: &MultiWriteSetup<P>,
    values: &[Value],
    seeds: u64,
) -> Result<StagedProfile, MultiWriteError>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P>,
    Sim<P>: Send + Sync,
{
    let mut sim = build_alpha0(make_sim(), setup, values)?;
    let n = sim.server_count() as u32;
    let nu = setup.nu;
    let width = (n - setup.f + nu - 1).min(n);

    let mut sigma: Vec<u32> = Vec::new();
    let mut a: Vec<u32> = Vec::new();
    let mut chosen: BTreeSet<ClientId> = BTreeSet::new();

    for stage in 1..=nu {
        let a_prev = a.last().copied().unwrap_or(0);
        let unchosen: Vec<u32> = (0..nu)
            .filter(|w| !chosen.contains(&ClientId(*w)))
            .collect();
        let senders: Vec<ClientId> = unchosen.iter().map(|&w| ClientId(w)).collect();
        // Candidate prefix sizes: a_prev < a <= N - f + stage - 1.
        let max_a = (n - setup.f + stage - 1).min(n);
        let mut found: Option<(u32, u32)> = None;
        'outer: for cand in (a_prev + 1)..=max_a {
            let mut fork = sim.fork();
            deliver_value_dependent(&mut fork, setup, &senders, a_prev..cand)?;
            let point = fork.into_snapshot();
            // All (writer, schedule) probes of this candidate prefix fan
            // out together; verdicts fold back per writer in job order.
            let schedules = seeds as usize + 1;
            let restrictions: Vec<BTreeSet<ClientId>> = unchosen
                .iter()
                .map(|&j| {
                    let mut restricted = chosen.clone();
                    restricted.insert(ClientId(j));
                    restricted
                })
                .collect();
            let verdicts = engine.map(unchosen.len() * schedules, |idx| {
                restricted_verdict(
                    engine,
                    &point,
                    setup,
                    &restrictions[idx / schedules],
                    nth_restricted_schedule(idx % schedules),
                )
            });
            // Tie-break by value order among j's valent at this prefix.
            let mut best: Option<(Value, u32)> = None;
            for (ji, &j) in unchosen.iter().enumerate() {
                let observed: BTreeSet<Value> = verdicts[ji * schedules..(ji + 1) * schedules]
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                if observed.contains(&values[j as usize]) {
                    let vj = values[j as usize];
                    if best.is_none_or(|(bv, _)| vj < bv) {
                        best = Some((vj, j));
                    }
                }
            }
            if let Some((_, j)) = best {
                found = Some((cand, j));
                break 'outer;
            }
        }
        let Some((cand, j)) = found else {
            return Err(MultiWriteError::NoCandidate { stage });
        };
        deliver_value_dependent(&mut sim, setup, &senders, a_prev..cand)?;
        chosen.insert(ClientId(j));
        sigma.push(j);
        a.push(cand);
    }

    let digests = sim.server_digests();
    Ok(StagedProfile {
        sigma,
        a,
        final_states: digests[..width as usize].to_vec(),
    })
}

/// Result of the Section 6.4.4 enumeration over value-vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorCountingReport {
    /// Number of value-vectors enumerated.
    pub vectors: usize,
    /// Whether `~v ↦ (σ, ~a, ~S)` was injective.
    pub injective: bool,
    /// Colliding vector pairs, if any.
    pub collisions: Vec<(Vec<Value>, Vec<Value>)>,
    /// Vectors whose staged search failed.
    pub failures: Vec<(Vec<Value>, MultiWriteError)>,
}

/// Enumerates all ordered `ν`-tuples of distinct values from `domain` and
/// verifies that the Lemma 6.10 profile map is injective — the Section
/// 6.4.4 counting argument.
pub fn vector_counting<P, F>(
    make_sim: F,
    setup: &MultiWriteSetup<P>,
    domain: &[Value],
    seeds: u64,
) -> VectorCountingReport
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P> + Copy + Sync,
    Sim<P>: Send + Sync,
{
    vector_counting_with(&ProbeEngine::sequential(), make_sim, setup, domain, seeds)
}

/// [`vector_counting`] through a [`ProbeEngine`]: the value-vectors fan
/// out over the engine's workers — each worker runs its vector's staged
/// search inline through a cache-sharing sequential view — and the
/// injectivity fold walks the profiles in enumeration order, so the
/// report is identical to the sequential one for any worker count.
pub fn vector_counting_with<P, F>(
    engine: &ProbeEngine,
    make_sim: F,
    setup: &MultiWriteSetup<P>,
    domain: &[Value],
    seeds: u64,
) -> VectorCountingReport
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P> + Copy + Sync,
    Sim<P>: Send + Sync,
{
    let mut tuples: Vec<Vec<Value>> = Vec::new();
    enumerate_tuples(domain, setup.nu as usize, &mut Vec::new(), &mut tuples);
    let results: Vec<Result<StagedProfile, MultiWriteError>> = engine.map(tuples.len(), |i| {
        staged_search_with(
            &engine.sequential_view(),
            make_sim,
            setup,
            &tuples[i],
            seeds,
        )
    });
    let mut seen: BTreeMap<ProfileKey, Vec<Value>> = BTreeMap::new();
    let mut collisions = Vec::new();
    let mut failures = Vec::new();
    for (tuple, result) in tuples.iter().zip(results) {
        match result {
            Ok(profile) => {
                let key = profile.key();
                if let Some(prev) = seen.get(&key) {
                    collisions.push((prev.clone(), tuple.clone()));
                } else {
                    seen.insert(key, tuple.clone());
                }
            }
            Err(e) => failures.push((tuple.clone(), e)),
        }
    }
    VectorCountingReport {
        vectors: tuples.len(),
        injective: collisions.is_empty() && failures.is_empty(),
        collisions,
        failures,
    }
}

fn enumerate_tuples(
    domain: &[Value],
    arity: usize,
    prefix: &mut Vec<Value>,
    out: &mut Vec<Vec<Value>>,
) {
    if prefix.len() == arity {
        out.push(prefix.clone());
        return;
    }
    for &v in domain {
        if !prefix.contains(&v) {
            prefix.push(v);
            enumerate_tuples(domain, arity, prefix, out);
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_algorithms::abd::{self, Abd, AbdClient, AbdServer};
    use shmem_algorithms::cas::{self, Cas, CasClient, CasConfig, CasServer};
    use shmem_algorithms::value::ValueSpec;
    use shmem_sim::{ServerId, SimConfig};

    fn abd_world() -> Sim<Abd> {
        let spec = ValueSpec::from_cardinality(8);
        Sim::new(
            SimConfig::without_gossip(),
            (0..5).map(|_| AbdServer::new(0, spec)).collect(),
            (0..3).map(|c| AbdClient::new(5, c)).collect(),
        )
    }

    fn abd_setup() -> MultiWriteSetup<Abd> {
        MultiWriteSetup {
            nu: 2,
            f: 2,
            is_value_dependent: abd::is_value_dependent_upstream,
        }
    }

    fn cas_world() -> Sim<Cas> {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_cardinality(8));
        Sim::new(
            SimConfig::without_gossip(),
            (0..5)
                .map(|i| CasServer::new(cfg, ServerId(i), 0))
                .collect(),
            (0..3).map(|c| CasClient::new(cfg, c)).collect(),
        )
    }

    fn cas_setup() -> MultiWriteSetup<Cas> {
        MultiWriteSetup {
            nu: 2,
            f: 1,
            is_value_dependent: cas::is_value_dependent_upstream,
        }
    }

    #[test]
    fn alpha0_halts_at_the_value_frontier() {
        let setup = abd_setup();
        let sim = build_alpha0(abd_world(), &setup, &[1, 2]).unwrap();
        // Both writers have Store messages queued to every alive server
        // and no other deliverable steps exist except those stores.
        for w in 0..2u32 {
            for s in 0..4u32 {
                assert_eq!(
                    sim.in_flight(NodeId::client(w), NodeId::server(s)),
                    1,
                    "writer {w} server {s}"
                );
            }
        }
        // Neither write has completed.
        assert!(sim.has_open_op(ClientId(0)));
        assert!(sim.has_open_op(ClientId(1)));
    }

    #[test]
    fn failures_pattern_follows_section_6() {
        assert_eq!(abd_setup().failures(), 1); // f+1-nu = 2+1-2
        assert_eq!(cas_setup().failures(), 0); // 1+1-2
        let s = MultiWriteSetup::<Abd> {
            nu: 1,
            f: 2,
            is_value_dependent: abd::is_value_dependent_upstream,
        };
        assert_eq!(s.failures(), 2);
    }

    #[test]
    fn probe_before_any_delivery_returns_initial() {
        // Lemma 6.12's essence: with no value-dependent message delivered,
        // no written value is returnable; the read sees the initial value.
        let setup = abd_setup();
        let alpha0 = build_alpha0(abd_world(), &setup, &[1, 2]).unwrap();
        let restricted: BTreeSet<ClientId> = setup.writers().into_iter().collect();
        let observed = probe_restricted(&alpha0, &setup, &restricted, 8);
        assert_eq!(observed, [0u64].into_iter().collect());
    }

    #[test]
    fn abd_staged_search_finds_profile() {
        let setup = abd_setup();
        let profile = staged_search(abd_world, &setup, &[1, 2], 8).unwrap();
        assert_eq!(profile.sigma.len(), 2);
        assert_eq!(profile.a.len(), 2);
        // Lemma 6.12: a1 >= 1; Lemma 6.10(a): a strictly increasing.
        assert!(profile.a[0] >= 1);
        assert!(profile.a[1] > profile.a[0]);
        // width = N - f + nu - 1 = 5 - 2 + 1 = 4 servers recorded.
        assert_eq!(profile.final_states.len(), 4);
        // Both writers were eventually chosen.
        let mut s = profile.sigma.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn cas_staged_search_finds_profile() {
        let setup = cas_setup();
        let profile = staged_search(cas_world, &setup, &[3, 5], 8).unwrap();
        assert!(profile.a[0] >= 1);
        assert!(profile.a[1] > profile.a[0]);
        // CAS needs a full write quorum of symbols before anything is
        // returnable: a1 = q = N - f = 4 (Lemma 6.11's witness).
        assert_eq!(profile.a[0], 4);
        assert_eq!(profile.final_states.len(), 5);
    }

    #[test]
    fn abd_vector_counting_is_injective() {
        let setup = abd_setup();
        let report = vector_counting(abd_world, &setup, &[1, 2, 3], 8);
        assert_eq!(report.vectors, 6); // ordered pairs of distinct values
        assert!(
            report.injective,
            "collisions={:?} failures={:?}",
            report.collisions, report.failures
        );
    }

    #[test]
    fn cas_vector_counting_is_injective() {
        let setup = cas_setup();
        let report = vector_counting(cas_world, &setup, &[1, 2, 3], 8);
        assert_eq!(report.vectors, 6);
        assert!(
            report.injective,
            "collisions={:?} failures={:?}",
            report.collisions, report.failures
        );
    }

    #[test]
    fn deterministic_profiles() {
        let setup = abd_setup();
        let p1 = staged_search(abd_world, &setup, &[1, 2], 4).unwrap();
        let p2 = staged_search(abd_world, &setup, &[1, 2], 4).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn nu_exceeding_f_plus_one_caps_width() {
        // nu = 3 > f + 1 = 2 (f = 1): no servers fail
        // (failures saturates at 0) and the recorded width caps at N.
        let setup = MultiWriteSetup::<Abd> {
            nu: 3,
            f: 1,
            is_value_dependent: abd::is_value_dependent_upstream,
        };
        assert_eq!(setup.failures(), 0);
        let make = || {
            let spec = ValueSpec::from_cardinality(8);
            Sim::<Abd>::new(
                SimConfig::without_gossip(),
                (0..5).map(|_| AbdServer::new(0, spec)).collect(),
                (0..4).map(|c| AbdClient::new(5, c)).collect(),
            )
        };
        let profile = staged_search(make, &setup, &[1, 2, 3], 12).unwrap();
        // width = min(N - f + nu - 1, N) = min(7, 5) = 5.
        assert_eq!(profile.final_states.len(), 5);
        assert_eq!(profile.a.len(), 3);
        assert!(profile.a.windows(2).all(|w| w[0] < w[1]));
        assert!(*profile.a.last().unwrap() <= 5);
    }
}
