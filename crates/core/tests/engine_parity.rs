//! Acceptance tests for the probe engine: the parallel fan-out path must
//! produce *bit-identical* valency / critical-pair / counting verdicts to
//! the sequential path, for every construction in the crate.
//!
//! The engine makes this true by design — workers pull job indices from a
//! shared counter but deposit results into index-addressed slots, and the
//! folds that build reports walk those slots in enumeration order — and
//! these tests assert it end to end, including the refutation (error)
//! paths.

use shmem_algorithms::abd::{self, Abd, AbdClient, AbdServer};
use shmem_algorithms::cas::{Cas, CasClient, CasConfig, CasServer};
use shmem_algorithms::lossy::{Lossy, LossyServer};
use shmem_algorithms::value::ValueSpec;
use shmem_core::counting::{
    pairwise_counting, pairwise_counting_with, singleton_counting, singleton_counting_with,
};
use shmem_core::critical::{find_critical_pair, find_critical_pair_with, valency_profile_with};
use shmem_core::execution::AlphaExecution;
use shmem_core::multiwrite::{
    probe_restricted, probe_restricted_with, staged_search, staged_search_with, vector_counting,
    vector_counting_with, MultiWriteSetup,
};
use shmem_core::probe::ProbeEngine;
use shmem_core::valency::{observed_values, observed_values_at};
use shmem_sim::{ClientId, ServerId, Sim, SimConfig};
use shmem_util::prop::prelude::*;

const WORKER_GRID: [usize; 3] = [1, 2, 4];

fn abd_world() -> Sim<Abd> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| AbdServer::new(0, spec)).collect(),
        (0..3).map(|c| AbdClient::new(5, c)).collect(),
    )
}

fn cas_world() -> Sim<Cas> {
    let cfg = CasConfig::native(5, 1, ValueSpec::from_cardinality(8));
    Sim::new(
        SimConfig::without_gossip(),
        (0..5)
            .map(|i| CasServer::new(cfg, ServerId(i), 0))
            .collect(),
        (0..3).map(|c| CasClient::new(cfg, c)).collect(),
    )
}

fn lossy_world() -> Sim<Lossy> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| LossyServer::new(0, 1, spec)).collect(),
        (0..2).map(|c| AbdClient::new(5, c)).collect(),
    )
}

#[test]
fn observed_values_identical_across_worker_counts() {
    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    for i in 0..alpha.len() {
        let reference = observed_values(alpha.point(i), ClientId(0), ClientId(1), false, 5);
        for workers in WORKER_GRID {
            let engine = ProbeEngine::with_workers(workers);
            let got = observed_values_at(
                &engine,
                alpha.snapshot(i),
                ClientId(0),
                ClientId(1),
                false,
                5,
            );
            assert_eq!(reference, got, "point {i}, {workers} workers");
        }
    }
}

#[test]
fn critical_pair_identical_across_worker_counts() {
    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    let reference = find_critical_pair(&alpha, ClientId(1), false, 4).unwrap();
    for workers in WORKER_GRID {
        let engine = ProbeEngine::with_workers(workers);
        let got = find_critical_pair_with(&engine, &alpha, ClientId(1), false, 4).unwrap();
        assert_eq!(reference, got, "{workers} workers");
    }

    let cas_alpha = AlphaExecution::build(cas_world(), ClientId(0), 1, 3, 5).unwrap();
    let cas_reference = find_critical_pair(&cas_alpha, ClientId(1), false, 4).unwrap();
    for workers in WORKER_GRID {
        let engine = ProbeEngine::with_workers(workers);
        let got = find_critical_pair_with(&engine, &cas_alpha, ClientId(1), false, 4).unwrap();
        assert_eq!(cas_reference, got, "cas, {workers} workers");
    }
}

#[test]
fn valency_profile_identical_across_worker_counts() {
    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    let reference = valency_profile_with(&ProbeEngine::sequential(), &alpha, ClientId(1), false, 3);
    for workers in [2, 4] {
        let engine = ProbeEngine::with_workers(workers);
        let got = valency_profile_with(&engine, &alpha, ClientId(1), false, 3);
        assert_eq!(reference, got, "{workers} workers");
    }
}

#[test]
fn singleton_counting_identical_across_worker_counts() {
    let domain = [1, 2, 3, 4, 5];
    let reference = singleton_counting(abd_world, ClientId(0), 2, &domain);
    for workers in WORKER_GRID {
        let engine = ProbeEngine::with_workers(workers);
        let got = singleton_counting_with(&engine, abd_world, ClientId(0), 2, &domain);
        assert_eq!(reference, got, "{workers} workers");
    }
}

#[test]
fn pairwise_counting_identical_across_worker_counts() {
    let domain = [1, 2, 3];
    let reference = pairwise_counting(abd_world, ClientId(0), ClientId(1), 2, &domain, false, 2);
    assert!(reference.injective);
    for workers in WORKER_GRID {
        let engine = ProbeEngine::with_workers(workers);
        let got = pairwise_counting_with(
            &engine,
            abd_world,
            ClientId(0),
            ClientId(1),
            2,
            &domain,
            false,
            2,
        );
        assert_eq!(reference, got, "{workers} workers");
    }
}

#[test]
fn refutation_paths_identical_across_worker_counts() {
    // The lossy algorithm fails the critical-pair search for truncated
    // values; the failure *lists* must match in content and order too.
    let domain = [1, 2, 3];
    let reference = pairwise_counting(lossy_world, ClientId(0), ClientId(1), 2, &domain, false, 0);
    assert!(!reference.injective);
    assert!(!reference.failures.is_empty());
    for workers in [2, 4] {
        let engine = ProbeEngine::with_workers(workers);
        let got = pairwise_counting_with(
            &engine,
            lossy_world,
            ClientId(0),
            ClientId(1),
            2,
            &domain,
            false,
            0,
        );
        assert_eq!(reference, got, "{workers} workers");
    }
}

fn abd_setup() -> MultiWriteSetup<Abd> {
    MultiWriteSetup {
        nu: 2,
        f: 2,
        is_value_dependent: abd::is_value_dependent_upstream,
    }
}

#[test]
fn restricted_probe_identical_across_worker_counts() {
    let setup = abd_setup();
    let alpha0 = shmem_core::multiwrite::build_alpha0(abd_world(), &setup, &[1, 2]).unwrap();
    let restricted: std::collections::BTreeSet<ClientId> = setup.writers().into_iter().collect();
    let reference = probe_restricted(&alpha0, &setup, &restricted, 8);
    let point = alpha0.snapshot();
    for workers in WORKER_GRID {
        let engine = ProbeEngine::with_workers(workers);
        let got = probe_restricted_with(&engine, &point, &setup, &restricted, 8);
        assert_eq!(reference, got, "{workers} workers");
    }
}

#[test]
fn staged_search_identical_across_worker_counts() {
    let setup = abd_setup();
    let reference = staged_search(abd_world, &setup, &[1, 2], 8).unwrap();
    for workers in WORKER_GRID {
        let engine = ProbeEngine::with_workers(workers);
        let got = staged_search_with(&engine, abd_world, &setup, &[1, 2], 8).unwrap();
        assert_eq!(reference, got, "{workers} workers");
    }
}

#[test]
fn vector_counting_identical_across_worker_counts() {
    let setup = abd_setup();
    let reference = vector_counting(abd_world, &setup, &[1, 2, 3], 4);
    assert!(reference.injective);
    for workers in [2, 4] {
        let engine = ProbeEngine::with_workers(workers);
        let got = vector_counting_with(&engine, abd_world, &setup, &[1, 2, 3], 4);
        assert_eq!(reference, got, "{workers} workers");
    }
}

#[test]
fn verdict_cache_answers_repeat_runs() {
    let domain = [1, 2, 3];
    let engine = ProbeEngine::with_workers(4);
    let first = pairwise_counting_with(
        &engine,
        abd_world,
        ClientId(0),
        ClientId(1),
        2,
        &domain,
        false,
        2,
    );
    let after_first = engine.stats();
    assert!(after_first.probes > 0);
    let second = pairwise_counting_with(
        &engine,
        abd_world,
        ClientId(0),
        ClientId(1),
        2,
        &domain,
        false,
        2,
    );
    let after_second = engine.stats();
    assert_eq!(first, second);
    // The repeat run re-requests every probe and every one is a hit: the
    // executions are deterministic, so every point digest recurs.
    assert_eq!(after_second.probes, 2 * after_first.probes);
    assert_eq!(after_second.misses(), after_first.misses());
    assert!(after_second.hit_rate() >= 0.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite property: for arbitrary value pairs, seed counts, and
    /// worker counts, the parallel engine's critical-pair verdict equals
    /// the sequential one bit for bit.
    #[test]
    fn prop_parallel_critical_pair_matches_sequential(
        v1 in 1u64..8,
        delta in 1u64..7,
        seeds in 0u64..4,
        workers in 2usize..6,
    ) {
        // Distinct second value in 1..8 by construction.
        let v2 = 1 + ((v1 - 1) + delta) % 7;
        let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, v1, v2).unwrap();
        let sequential =
            find_critical_pair_with(&ProbeEngine::sequential(), &alpha, ClientId(1), false, seeds);
        let parallel = find_critical_pair_with(
            &ProbeEngine::with_workers(workers),
            &alpha,
            ClientId(1),
            false,
            seeds,
        );
        prop_assert_eq!(sequential, parallel);
    }

    /// Satellite property: observed valency sets agree for arbitrary
    /// points and schedules.
    #[test]
    fn prop_parallel_observed_values_match_sequential(
        v2 in 2u64..8,
        seeds in 0u64..6,
        workers in 2usize..6,
    ) {
        let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, v2).unwrap();
        let mid = alpha.len() / 2;
        let seq = observed_values_at(
            &ProbeEngine::sequential(),
            alpha.snapshot(mid),
            ClientId(0),
            ClientId(1),
            false,
            seeds,
        );
        let par = observed_values_at(
            &ProbeEngine::with_workers(workers),
            alpha.snapshot(mid),
            ClientId(0),
            ClientId(1),
            false,
            seeds,
        );
        prop_assert_eq!(seq, par);
    }
}
