//! The transport abstraction: routed, unreliable datagram-style
//! delivery of [`Envelope`]s between nodes.
//!
//! Everything above this trait — the server event loop, the client
//! workers, the load generator — is backend-agnostic. Two backends
//! ship:
//!
//! * [`InProcHub`] (this module): lock-free-ish in-process routing over
//!   `mpsc` channels. Zero syscalls; the differential baseline.
//! * [`crate::tcp`]: real TCP sockets with the [`crate::frame`] format,
//!   per-connection reader threads, and a reconnecting pool.
//!
//! The delivery contract is deliberately weak — *at-most-once, may drop,
//! may reorder across peers* — because that is what the protocols
//! already tolerate (the simulator's adversary is far crueler). The
//! client layer adds retransmission on top, and the protocol state
//! machines dedupe via their `heard` sets.

use crate::error::NetError;
pub use crate::frame::Envelope;
use shmem_sim::NodeId;
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One node-side endpoint of a message transport.
///
/// Endpoints are owned by exactly one thread (the node's event loop);
/// hence `&mut self` and no `Sync` bound.
pub trait Transport: Send {
    /// Sends `env` towards `env.to`. Best-effort: `Ok(())` means the
    /// transport accepted the message, not that the peer will see it.
    ///
    /// # Errors
    ///
    /// [`NetError`] when the peer is known-unreachable and reconnecting
    /// failed within the backend's retry budget.
    fn send(&mut self, env: &Envelope) -> Result<(), NetError>;

    /// Waits up to `timeout` for an inbound envelope. `Ok(None)` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`NetError::Shutdown`] when the transport was closed underneath
    /// the caller.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Envelope>, NetError>;
}

type Routes = Arc<Mutex<HashMap<NodeId, Sender<Envelope>>>>;

/// In-process message hub: a shared routing table from node ids to
/// `mpsc` inboxes.
///
/// A "connection" here is just a table entry, so the hub is also where
/// in-process fault injection lives: [`InProcHub::drop_route`] makes a
/// node silently unreachable, exactly like an unplugged cable.
#[derive(Clone, Default)]
pub struct InProcHub {
    routes: Routes,
}

impl InProcHub {
    /// A hub with no endpoints.
    pub fn new() -> InProcHub {
        InProcHub::default()
    }

    /// Creates the endpoint owning inbound traffic for every id in
    /// `ids`. One event-loop thread typically serves one node (servers)
    /// or a whole block of logical clients (client workers); all of the
    /// block's ids map to the same inbox.
    pub fn endpoint(&self, ids: &[NodeId]) -> InProcEndpoint {
        let (tx, rx) = mpsc::channel();
        let mut routes = self.routes.lock().expect("hub routes poisoned");
        for &id in ids {
            routes.insert(id, tx.clone());
        }
        InProcEndpoint {
            routes: Arc::clone(&self.routes),
            rx,
            _tx: tx,
        }
    }

    /// Removes `id`'s route: subsequent sends to it vanish silently
    /// (delivery is best-effort, so this models a link failure, not an
    /// error the sender can observe).
    pub fn drop_route(&self, id: NodeId) {
        self.routes.lock().expect("hub routes poisoned").remove(&id);
    }
}

/// One endpoint of an [`InProcHub`].
pub struct InProcEndpoint {
    routes: Routes,
    rx: Receiver<Envelope>,
    /// Keeps the channel open even when every route to it is dropped
    /// (a routeless endpoint is unreachable, not dead).
    _tx: Sender<Envelope>,
}

impl Transport for InProcEndpoint {
    fn send(&mut self, env: &Envelope) -> Result<(), NetError> {
        let routes = self.routes.lock().expect("hub routes poisoned");
        if let Some(tx) = routes.get(&env.to) {
            // A dead receiver is a crashed peer: drop the message, as a
            // real network would.
            let _ = tx.send(env.clone());
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Envelope>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Shutdown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_sim::{ClientId, ServerId};

    fn server(n: u32) -> NodeId {
        NodeId::Server(ServerId(n))
    }

    fn client(n: u32) -> NodeId {
        NodeId::Client(ClientId(n))
    }

    #[test]
    fn routes_by_destination() {
        let hub = InProcHub::new();
        let mut a = hub.endpoint(&[server(0)]);
        let mut b = hub.endpoint(&[client(0), client(1)]);
        let env = Envelope {
            from: server(0),
            to: client(1),
            payload: vec![1, 2, 3],
        };
        a.send(&env).unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got, env);
        // Nothing arrived at the server endpoint.
        assert_eq!(a.recv_timeout(Duration::from_millis(10)).unwrap(), None);
    }

    #[test]
    fn dropped_route_loses_messages_silently() {
        let hub = InProcHub::new();
        let mut a = hub.endpoint(&[server(0)]);
        let mut b = hub.endpoint(&[client(0)]);
        hub.drop_route(client(0));
        a.send(&Envelope {
            from: server(0),
            to: client(0),
            payload: vec![],
        })
        .unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap(), None);
    }
}
