//! Regenerates the metrics-export schema fixture under `tests/fixtures/`.
//!
//! The fixture pins the JSON schema (`shmem-metrics/v1`) byte for byte:
//! `tests/metrics_schema.rs` re-runs the same scenario and compares
//! against the stored file, so any change to the export format — key
//! order, bucket encoding, a renamed counter — fails the test until this
//! regenerator is deliberately re-run:
//!
//! ```sh
//! cargo run --release --example gen_metrics_fixture
//! ```

use shmem_algorithms::{AbdCluster, RegInv, ValueSpec};
use shmem_sim::{ClientId, NodeId};
use std::fs;
use std::path::Path;

/// The fixture scenario: one metered ABD write that sees every ledger
/// movement — a duplicate, a drop, and a crash-purge — then drains.
/// Keep in sync with the copy in `tests/metrics_schema.rs`.
fn fixture_export() -> String {
    let mut c = AbdCluster::new(3, 1, 2, ValueSpec::from_bits(64.0)).metered();
    c.begin(0, RegInv::Write(7)).expect("begin write");
    c.sim
        .duplicate_head(NodeId::client(0), NodeId::server(1))
        .expect("duplicate");
    c.sim
        .drop_head(NodeId::client(0), NodeId::server(1))
        .expect("drop");
    c.sim.fail(NodeId::server(2)); // purges the queued message to s2
    c.sim
        .run_until_op_completes(ClientId(0))
        .expect("write completes on the surviving quorum");
    c.sim.run_to_quiescence().expect("drains and audits");
    c.read(1).expect("read");
    c.metrics_json().to_pretty()
}

fn main() {
    let dir = Path::new("tests/fixtures");
    fs::create_dir_all(dir).expect("create tests/fixtures");
    let path = dir.join("metrics_schema.json");
    fs::write(&path, fixture_export()).expect("write fixture");
    println!("wrote {}", path.display());
}
