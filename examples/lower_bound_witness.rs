//! The paper's proof machinery, live: build the adversarial two-write
//! execution `α^{(v1,v2)}` against a real ABD cluster, watch the valency
//! profile flip from 1-valent to 2-valent, locate the critical pair, and
//! verify the injective counting map of Theorem 4.1 over a small value
//! domain — then watch the same machinery *refute* a cheating algorithm
//! that stores too few bits.
//!
//! ```text
//! cargo run --example lower_bound_witness
//! ```

use shmem_emulation::algorithms::abd::{Abd, AbdClient, AbdServer};
use shmem_emulation::algorithms::lossy::{Lossy, LossyServer};
use shmem_emulation::algorithms::value::ValueSpec;
use shmem_emulation::core::counting::{pairwise_counting, singleton_counting};
use shmem_emulation::core::critical::{find_critical_pair, valency_profile};
use shmem_emulation::core::execution::AlphaExecution;
use shmem_emulation::sim::{ClientId, Sim, SimConfig};

fn abd_world() -> Sim<Abd> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| AbdServer::new(0, spec)).collect(),
        (0..2).map(|c| AbdClient::new(5, c)).collect(),
    )
}

fn lossy_world() -> Sim<Lossy> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| LossyServer::new(0, 1, spec)).collect(),
        (0..2).map(|c| AbdClient::new(5, c)).collect(),
    )
}

fn main() {
    let writer = ClientId(0);
    let reader = ClientId(1);

    // --- The Section 4 construction on ABD (N=5, f=2, |V|=8) ------------
    println!("building alpha^(v1=1, v2=2) against ABD (N=5, f=2)...");
    let alpha = AlphaExecution::build(abd_world(), writer, 2, 1, 2).expect("alpha builds");
    println!(
        "recorded {} points (P0 .. P{})",
        alpha.len(),
        alpha.len() - 1
    );

    let profile = valency_profile(&alpha, reader, false, 4);
    print!("valency profile: ");
    for vals in &profile {
        let tag = match (vals.contains(&1), vals.contains(&2)) {
            (true, false) => '1',
            (false, true) => '2',
            (true, true) => 'B',
            _ => '?',
        };
        print!("{tag}");
    }
    println!("  (1 = only v1 observable, 2 = only v2, B = both)");

    let pair = find_critical_pair(&alpha, reader, false, 4).expect("critical pair exists");
    println!(
        "critical pair at (P{}, P{}): surviving states {:?}, changed server #{:?}",
        pair.index,
        pair.index + 1,
        pair.states_q1.iter().map(|d| d % 1000).collect::<Vec<_>>(),
        pair.changed_server,
    );

    // --- The counting arguments over the whole domain -------------------
    let domain: Vec<u64> = (1..8).collect();
    let singleton = singleton_counting(abd_world, writer, 2, &domain);
    println!(
        "\nTheorem B.1 map v -> S(v): {} values, injective = {}, \
         observed {:.2} bits >= required {:.2} bits",
        singleton.domain.len(),
        singleton.injective,
        singleton.observed_bits(),
        singleton.required_bits()
    );
    assert!(singleton.injective);

    let small: Vec<u64> = vec![1, 2, 3];
    let pairwise = pairwise_counting(abd_world, writer, reader, 2, &small, false, 2);
    println!(
        "Theorem 4.1 map (v1,v2) -> S: {} pairs, injective = {}, \
         observed {:.2} bits >= required {:.2} bits",
        pairwise.pairs,
        pairwise.injective,
        pairwise.observed_bits(),
        pairwise.required_bits()
    );
    assert!(pairwise.injective);

    // --- Refuting a cheat ------------------------------------------------
    println!("\nnow the same machinery against a 1-bit-per-server cheat...");
    let cheat = pairwise_counting(lossy_world, writer, reader, 2, &small, false, 0);
    println!(
        "lossy algorithm: injective = {}, critical-pair failures = {} \
         (each failure is a read returning a value outside {{v1, v2}} — a \
         regularity violation, exactly what the theorems predict for \
         storage below the bound)",
        cheat.injective,
        cheat.failures.len()
    );
    assert!(!cheat.injective);
}
