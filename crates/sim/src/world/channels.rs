//! The step relation: invocations, message delivery, scheduling.
//!
//! Channel queues are `Arc`-shared between forks; every mutation goes
//! through [`Arc::make_mut`], so only the queue actually touched by a step
//! is copied, and only when another fork still shares it.

use super::{RunError, SendRecord, Sim};
use crate::ids::{ClientId, NodeId};
use crate::node::{Ctx, Node, Protocol};
use crate::trace::{OpRecord, StepInfo};
use std::sync::Arc;

impl<P: Protocol> Sim<P> {
    /// Invokes an operation at a client. The invocation action itself is one
    /// step of the execution.
    ///
    /// # Errors
    ///
    /// * [`RunError::NodeUnavailable`] if the client crashed or is frozen.
    /// * [`RunError::OperationPending`] if the client already has an open
    ///   operation (the model requires well-formed clients).
    pub fn invoke(&mut self, client: ClientId, inv: P::Inv) -> Result<(), RunError> {
        let id = NodeId::Client(client);
        if self.is_blocked(id) {
            return Err(RunError::NodeUnavailable { node: id });
        }
        if self.open_ops.contains_key(&client) {
            return Err(RunError::OperationPending { client });
        }
        let idx = client.0 as usize;
        assert!(idx < self.clients.len(), "unknown client {client}");
        self.now += 1;
        self.open_ops.insert(client, self.ops.len());
        Arc::make_mut(&mut self.ops).push(OpRecord {
            client,
            invoked_at: self.now,
            responded_at: None,
            invocation: inv.clone(),
            response: None,
        });
        if let Some(m) = self.metrics_mut() {
            m.on_op_started();
        }
        let mut ctx: Ctx<P> = Ctx::new(id, self.now);
        <P::Client as Node<P>>::on_invoke(Arc::make_mut(&mut self.clients[idx]), inv, &mut ctx);
        self.apply_effects(id, ctx);
        self.sample_meter();
        self.cover_step(super::cover::kind::INVOKE, id, id);
        Ok(())
    }

    /// The deliverable channels at this point: non-empty queues whose
    /// endpoints are neither crashed nor frozen and whose link is not cut,
    /// in deterministic order.
    pub fn step_options(&self) -> Vec<(NodeId, NodeId)> {
        self.channels
            .iter()
            .filter(|(&(from, to), q)| {
                !q.is_empty()
                    && !self.is_blocked(from)
                    && !self.is_blocked(to)
                    && !self.is_cut(from, to)
            })
            .map(|(&key, _)| key)
            .collect()
    }

    /// Delivers the head message of the `from → to` channel: the receiver's
    /// `on_message` runs and its effects are applied. One step.
    ///
    /// # Errors
    ///
    /// * [`RunError::NoSuchMessage`] if the channel is empty or absent.
    /// * [`RunError::NodeUnavailable`] if either endpoint is crashed or
    ///   frozen.
    /// * [`RunError::LinkDown`] if the `from → to` link is cut.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> Result<StepInfo, RunError> {
        if self.is_blocked(from) || self.is_blocked(to) {
            let node = if self.is_blocked(from) { from } else { to };
            return Err(RunError::NodeUnavailable { node });
        }
        if self.is_cut(from, to) {
            return Err(RunError::LinkDown { from, to });
        }
        let msg = match self.channels.get_mut(&(from, to)) {
            Some(q) if !q.is_empty() => Arc::make_mut(q).pop_front().expect("non-empty"),
            _ => return Err(RunError::NoSuchMessage { from, to }),
        };
        self.now += 1;
        match (from.is_server(), to.is_server()) {
            (false, true) => self.traffic.client_to_server += 1,
            (true, false) => self.traffic.server_to_client += 1,
            (true, true) => self.traffic.server_to_server += 1,
            (false, false) => {}
        }
        if let Some(m) = self.metrics_mut() {
            m.on_delivered(from, to);
        }
        let mut ctx: Ctx<P> = Ctx::new(to, self.now);
        match to {
            NodeId::Server(s) => <P::Server as Node<P>>::on_message(
                Arc::make_mut(&mut self.servers[s.0 as usize]),
                from,
                msg,
                &mut ctx,
            ),
            NodeId::Client(c) => <P::Client as Node<P>>::on_message(
                Arc::make_mut(&mut self.clients[c.0 as usize]),
                from,
                msg,
                &mut ctx,
            ),
        }
        self.apply_effects(to, ctx);
        self.sample_meter();
        self.cover_step(super::cover::kind::DELIVER, from, to);
        Ok(StepInfo::Delivered { from, to })
    }

    /// Takes one fair step: delivers from the next schedulable channel in
    /// round-robin order. Returns `None` when no channel is deliverable
    /// (quiescence among unblocked nodes).
    pub fn step_fair(&mut self) -> Option<StepInfo> {
        let options = self.step_options();
        if options.is_empty() {
            return None;
        }
        let pick = options[(self.rr_cursor % options.len() as u64) as usize];
        self.rr_cursor += 1;
        Some(
            self.deliver_one(pick.0, pick.1)
                .expect("step option is deliverable by construction"),
        )
    }

    /// Delivers the `idx`-th queued message of the `from → to` channel
    /// (0 = head) by rotating it to the front first — the adversarial
    /// reorder primitive. Only permitted when the configuration's
    /// [`crate::config::ChannelOrder`] is `Any`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sim::deliver_one`], plus
    /// [`RunError::NoSuchMessage`] when `idx` is out of range.
    ///
    /// # Panics
    ///
    /// Panics under the FIFO channel model with `idx > 0`.
    pub fn deliver_nth(
        &mut self,
        from: NodeId,
        to: NodeId,
        idx: usize,
    ) -> Result<StepInfo, RunError> {
        if idx > 0 {
            assert_eq!(
                self.config.channel_order,
                crate::config::ChannelOrder::Any,
                "out-of-order delivery requires ChannelOrder::Any"
            );
        }
        let queue = self
            .channels
            .get_mut(&(from, to))
            .ok_or(RunError::NoSuchMessage { from, to })?;
        if idx >= queue.len() {
            return Err(RunError::NoSuchMessage { from, to });
        }
        if idx > 0 {
            // Rotate the chosen message to the head; FIFO order of the rest
            // is irrelevant under ChannelOrder::Any.
            let queue = Arc::make_mut(queue);
            let msg = queue.remove(idx).expect("index checked");
            queue.push_front(msg);
        }
        self.deliver_one(from, to)
    }

    /// Takes one step chosen by the caller: the closure picks among
    /// `(channel, queue_len)` options and returns `(option index, message
    /// index)`. Under FIFO configurations the message index must be 0.
    ///
    /// Returns `None` when no step is available.
    pub fn step_with_reorder(
        &mut self,
        choose: impl FnOnce(&[((NodeId, NodeId), usize)]) -> (usize, usize),
    ) -> Option<StepInfo> {
        let options: Vec<((NodeId, NodeId), usize)> = self
            .step_options()
            .into_iter()
            .map(|ch| {
                let len = self.in_flight(ch.0, ch.1);
                (ch, len)
            })
            .collect();
        if options.is_empty() {
            return None;
        }
        let (oi, mi) = choose(&options);
        let ((from, to), len) = options[oi % options.len()];
        Some(
            self.deliver_nth(from, to, mi % len)
                .expect("validated option is deliverable"),
        )
    }

    /// Takes one step chosen by the caller from [`Sim::step_options`] —
    /// used by seeded/adversarial schedulers.
    ///
    /// Returns `None` when no step is available.
    pub fn step_with(
        &mut self,
        choose: impl FnOnce(&[(NodeId, NodeId)]) -> usize,
    ) -> Option<StepInfo> {
        let options = self.step_options();
        if options.is_empty() {
            return None;
        }
        let idx = choose(&options) % options.len();
        let pick = options[idx];
        Some(
            self.deliver_one(pick.0, pick.1)
                .expect("step option is deliverable by construction"),
        )
    }

    /// Steps fairly until no message is deliverable. When metering is on,
    /// the conservation audit runs at the quiescent point — the always-on
    /// self-check for the metrics wiring.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the configured step budget runs out first.
    ///
    /// # Panics
    ///
    /// Panics if the metered message accounting fails its conservation law
    /// at quiescence (a simulator bug, never a legitimate execution).
    pub fn run_to_quiescence(&mut self) -> Result<u64, RunError> {
        let mut steps = 0;
        while self.step_fair().is_some() {
            steps += 1;
            if steps > self.config.step_limit {
                return Err(RunError::StepLimit {
                    steps: self.config.step_limit,
                });
            }
        }
        if let Err(e) = self.audit_conservation() {
            panic!("conservation audit failed at quiescence: {e}");
        }
        Ok(steps)
    }

    /// Steps fairly until the open operation at `client` completes, and
    /// returns its response.
    ///
    /// # Errors
    ///
    /// * [`RunError::NoOpenOperation`] if the client has no open operation.
    /// * [`RunError::Stuck`] if the system quiesces without the operation
    ///   completing (liveness failure — e.g. too many servers crashed).
    /// * [`RunError::StepLimit`] if the step budget runs out.
    pub fn run_until_op_completes(&mut self, client: ClientId) -> Result<P::Resp, RunError> {
        let op_idx = *self
            .open_ops
            .get(&client)
            .ok_or(RunError::NoOpenOperation { client })?;
        let mut steps = 0;
        while self.ops[op_idx].responded_at.is_none() {
            if self.step_fair().is_none() {
                return Err(RunError::Stuck { client });
            }
            steps += 1;
            if steps > self.config.step_limit {
                return Err(RunError::StepLimit {
                    steps: self.config.step_limit,
                });
            }
        }
        Ok(self.ops[op_idx]
            .response
            .clone()
            .expect("completed op has a response"))
    }

    /// Delivers every message currently queued on server-to-server channels
    /// (and any gossip those deliveries enqueue), until the gossip channels
    /// drain — the "channels between the servers act, delivering all their
    /// messages" prelude of Theorem 5.1's valency definition.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if gossip cascades past the step budget.
    pub fn flush_server_channels(&mut self) -> Result<u64, RunError> {
        let mut steps = 0;
        loop {
            let next = self
                .step_options()
                .into_iter()
                .find(|(from, to)| from.is_server() && to.is_server());
            match next {
                Some((from, to)) => {
                    self.deliver_one(from, to)
                        .expect("step option is deliverable");
                    steps += 1;
                    if steps > self.config.step_limit {
                        return Err(RunError::StepLimit {
                            steps: self.config.step_limit,
                        });
                    }
                }
                None => return Ok(steps),
            }
        }
    }

    pub(super) fn apply_effects(&mut self, origin: NodeId, ctx: Ctx<P>) {
        let (outbox, responses) = ctx.into_effects();
        for (to, msg) in outbox {
            if origin.is_server() && to.is_server() && !self.config.server_gossip {
                panic!(
                    "protocol violated the no-gossip model: {origin} sent a message to {to} \
                     but server_gossip is disabled"
                );
            }
            self.validate_target(to);
            if let Some(log) = &mut self.send_log {
                Arc::make_mut(log).push(SendRecord {
                    step: self.now,
                    from: origin,
                    to,
                    msg: msg.clone(),
                });
            }
            let q = Arc::make_mut(self.channels.entry((origin, to)).or_default());
            q.push_back(msg);
            let depth = q.len() as u64;
            if let Some(m) = self.metrics_mut() {
                m.on_sent(origin, to, std::mem::size_of::<P::Msg>() as u64, depth);
            }
        }
        if !responses.is_empty() {
            let client = origin
                .as_client()
                .expect("only clients produce operation responses");
            for resp in responses {
                let idx = self
                    .open_ops
                    .remove(&client)
                    .expect("response produced with no open operation");
                let ops = Arc::make_mut(&mut self.ops);
                ops[idx].responded_at = Some(self.now);
                ops[idx].response = Some(resp);
                let latency = self.now - self.ops[idx].invoked_at;
                if let Some(m) = self.metrics_mut() {
                    m.on_op_completed(latency);
                }
            }
        }
    }

    fn validate_target(&self, to: NodeId) {
        let ok = match to {
            NodeId::Server(s) => (s.0 as usize) < self.servers.len(),
            NodeId::Client(c) => (c.0 as usize) < self.clients.len(),
        };
        assert!(ok, "message sent to unknown node {to}");
    }

    /// The message at the head of the `from → to` channel, if any — what
    /// the next [`Sim::deliver_one`] on that channel would deliver. Used by
    /// adversaries that withhold messages by content (e.g. the Section 6
    /// construction withholding value-dependent messages).
    pub fn peek_head(&self, from: NodeId, to: NodeId) -> Option<&P::Msg> {
        self.channels.get(&(from, to)).and_then(|q| q.front())
    }

    /// Enables or disables the send log. While enabled, every message
    /// enqueued onto a channel is recorded with the step at which it was
    /// sent — the raw material for protocol-structure analyses such as the
    /// Assumption 3(b) phase check in `shmem-core`.
    pub fn record_sends(&mut self, on: bool) {
        if on {
            self.send_log.get_or_insert_with(Default::default);
        } else {
            self.send_log = None;
        }
    }

    /// The recorded sends (empty unless [`Sim::record_sends`] is on).
    pub fn send_log(&self) -> &[SendRecord<P::Msg>] {
        self.send_log.as_deref().map_or(&[], Vec::as_slice)
    }

    /// Messages currently queued from `from` to `to`.
    pub fn in_flight(&self, from: NodeId, to: NodeId) -> usize {
        self.channels.get(&(from, to)).map_or(0, |q| q.len())
    }

    /// Total messages in flight anywhere.
    pub fn total_in_flight(&self) -> usize {
        self.channels.values().map(|q| q.len()).sum()
    }
}
