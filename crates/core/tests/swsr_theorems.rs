//! The SWSR theorems on the single-writer algorithm they are stated for.
//!
//! Theorems B.1, 4.1 and 5.1 address *single-writer single-reader regular*
//! registers; `SwmrAbd` (one-phase writes, writer-owned tags) is the
//! canonical such algorithm. These tests run the full proof machinery
//! against it, including the phase-structure check (its write is a single
//! value-dependent phase — the minimal element of the Assumption 3
//! spectrum).

use shmem_algorithms::abd;
use shmem_algorithms::swmr::{swmr_world, SwmrAbd};
use shmem_algorithms::value::ValueSpec;
use shmem_core::assumptions::write_phase_profile;
use shmem_core::counting::{pairwise_counting, singleton_counting};
use shmem_core::critical::find_critical_pair;
use shmem_core::execution::AlphaExecution;
use shmem_core::valency::{probe_read, ReadOutcome};
use shmem_sim::{ClientId, Sim};

fn world() -> Sim<SwmrAbd> {
    swmr_world(5, 2, ValueSpec::from_cardinality(8))
}

#[test]
fn swsr_write_is_one_value_dependent_phase() {
    let profile =
        write_phase_profile(world(), ClientId(0), 3, abd::is_value_dependent_upstream).unwrap();
    assert_eq!(profile.phases(), 1, "{profile:?}");
    assert_eq!(profile.value_dependent_phases(), 1);
    assert!(profile.satisfies_assumption_3b());
}

#[test]
fn swsr_alpha_and_critical_pair() {
    let alpha = AlphaExecution::build(world(), ClientId(0), 2, 1, 2).expect("alpha builds");
    // One-phase writes make for shorter executions than MWMR ABD.
    assert!(alpha.len() < 30, "len={}", alpha.len());
    assert_eq!(
        probe_read(alpha.point(0), ClientId(0), ClientId(1), false),
        ReadOutcome::Returns(1)
    );
    let pair = find_critical_pair(&alpha, ClientId(1), false, 4).expect("critical pair");
    assert_eq!(pair.states_q1.len(), 3);
    assert!(pair.changed_server.is_some());
}

#[test]
fn swsr_singleton_counting_injective() {
    let report = singleton_counting(world, ClientId(0), 2, &[1, 2, 3, 4, 5, 6, 7]);
    assert!(report.injective, "{report:?}");
    assert!(report.inequality_holds());
}

#[test]
fn swsr_pairwise_counting_injective() {
    let report = pairwise_counting(world, ClientId(0), ClientId(1), 2, &[1, 2, 3], false, 2);
    assert_eq!(report.pairs, 6);
    assert!(
        report.injective,
        "collisions={:?} failures={:?}",
        report.collisions, report.failures
    );
    assert!(report.inequality_holds());
}

#[test]
fn swsr_history_is_regular_and_atomic() {
    use shmem_algorithms::reg::{RegInv, RegResp};
    use shmem_spec::history::{History, OpKind};
    let mut sim = world();
    sim.invoke(ClientId(0), RegInv::Write(4)).unwrap();
    sim.run_until_op_completes(ClientId(0)).unwrap();
    sim.invoke(ClientId(1), RegInv::Read).unwrap();
    sim.run_until_op_completes(ClientId(1)).unwrap();
    let mut h = History::new(0u64);
    for op in sim.ops() {
        let kind = match op.invocation {
            RegInv::Write(v) => OpKind::Write(v),
            RegInv::Read => OpKind::Read,
        };
        let id = h.begin(op.client.0, kind, op.invoked_at);
        if let Some(t) = op.responded_at {
            h.complete(id, t, op.response.and_then(RegResp::read_value));
        }
    }
    assert!(shmem_spec::check_regular(&h).is_ok());
    assert!(shmem_spec::check_atomic(&h).is_ok());
    assert!(shmem_spec::check_safe(&h).is_ok());
}
