//! Regenerates the regression corpus under `tests/corpus/`.
//!
//! For each broken algorithm (the nemesis explorer's positive controls)
//! this explores seeds until a violation is found, shrinks the fault plan
//! to a minimum that still reproduces it, and writes the replayable
//! [`Counterexample`] artifact. `tests/corpus_replay.rs` replays these
//! files on every test run, so the corpus is also a regression gate: if a
//! checker or simulator change makes a stored violation stop reproducing,
//! the replay test fails.
//!
//! ```sh
//! cargo run --release --example gen_corpus
//! ```

use shmem_algorithms::nemesis::{explore, pretty_history, shrink_plan, Counterexample, Oracle};
use shmem_algorithms::{LossyCluster, NwbCluster, ValueSpec};
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("tests/corpus");
    fs::create_dir_all(dir).expect("create tests/corpus");

    // No-write-back: reads skip the write-back phase, so a read can see a
    // new value while a later read sees the old one — an atomicity
    // violation (new/old inversion) under message delay or partition.
    {
        let factory = || NwbCluster::new(3, 1, 3, ValueSpec::from_bits(64.0));
        generate(dir, "nowriteback", Oracle::Atomic, &factory, 1000, |cx| {
            cx.package("nowriteback", 3, 1, 3, 0)
        });
    }

    // Lossy strawman: servers keep only 8 of 64 value bits, so reads
    // return truncated values nobody wrote — a regularity violation.
    {
        let factory = || LossyCluster::new(3, 1, 3, 8, ValueSpec::from_bits(64.0));
        generate(dir, "lossy", Oracle::Regular, &factory, 1000, |cx| {
            cx.package("lossy", 3, 1, 3, 8)
        });
    }
}

struct Packager<'a>(&'a shmem_algorithms::nemesis::Violation);

impl Packager<'_> {
    fn package(
        &self,
        algorithm: &str,
        n: u32,
        f: u32,
        clients: u32,
        kept_bits: u32,
    ) -> Counterexample {
        Counterexample::package(algorithm, n, f, clients, kept_bits, self.0)
    }
}

fn generate<P, F>(
    dir: &Path,
    name: &str,
    oracle: Oracle,
    factory: &F,
    seeds: u64,
    pack: impl Fn(&Packager) -> Counterexample,
) where
    P: shmem_sim::Protocol<Inv = shmem_algorithms::RegInv, Resp = shmem_algorithms::RegResp>,
    F: Fn() -> shmem_algorithms::harness::Cluster<P> + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut v = explore(factory, oracle, seeds, workers)
        .unwrap_or_else(|| panic!("{name}: no violation within {seeds} seeds"));
    println!("== {name}: seed {} violates {:?}", v.seed, oracle);
    let (plan, stats) = shrink_plan(factory, oracle, v.seed, &v.plan);
    println!(
        "   shrunk: {} events -> {}, {} candidates, {} rounds",
        v.plan.events.len(),
        plan.events.len(),
        stats.candidates,
        stats.rounds
    );
    v.plan = plan;
    // Re-run the shrunk plan so the stored violation text matches it.
    let mut cluster = factory();
    let run = shmem_algorithms::nemesis::run_plan(&mut cluster, v.seed, &v.plan);
    let violation = oracle
        .check(&run.history)
        .expect_err("shrunk plan must still violate");
    v.violation = violation;
    println!("{}", pretty_history(&run.history));
    let cx = pack(&Packager(&v));
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, cx.to_json().to_pretty()).expect("write corpus file");
    println!("   wrote {}", path.display());
}
