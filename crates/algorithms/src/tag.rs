//! Logical timestamps ("tags") ordering versions across writers.

use std::fmt;

/// A version tag: a sequence number with writer-id tie-break, totally
/// ordered — the standard construction ABD and CAS use to order writes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    /// Logical sequence number.
    pub seq: u64,
    /// Writer client id breaking ties between concurrent writers.
    pub writer: u32,
}

impl Tag {
    /// The tag of the initial value, smaller than any write's tag.
    pub const ZERO: Tag = Tag { seq: 0, writer: 0 };

    /// Creates a tag.
    pub fn new(seq: u64, writer: u32) -> Tag {
        Tag { seq, writer }
    }

    /// The tag a writer picks after observing `self` as the maximum:
    /// next sequence number, own id.
    pub fn successor(self, writer: u32) -> Tag {
        Tag {
            seq: self.seq + 1,
            writer,
        }
    }

    /// Nominal metadata size of one tag in bits (`u64` + `u32`), the
    /// `o(log|V|)` bookkeeping term of the storage accounting.
    pub const BITS: f64 = 96.0;

    /// Serialized size of one tag on the wire in bytes (`u64` + `u32`,
    /// packed). Batched multi-key messages charge this per carried tag so
    /// the `wire_bytes` ledger counts payload, not padding.
    pub const WIRE_BYTES: u64 = 12;
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.seq, self.writer)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_by_seq_then_writer() {
        assert!(Tag::new(1, 0) < Tag::new(2, 0));
        assert!(Tag::new(1, 0) < Tag::new(1, 1));
        assert!(Tag::new(2, 0) > Tag::new(1, 9));
        assert!(Tag::ZERO < Tag::new(1, 0));
    }

    #[test]
    fn successor_dominates() {
        let t = Tag::new(4, 2);
        let s = t.successor(7);
        assert!(s > t);
        assert_eq!(s, Tag::new(5, 7));
        // Successors of the same tag by different writers are ordered by id.
        assert!(t.successor(1) < t.successor(2));
    }

    #[test]
    fn display() {
        assert_eq!(Tag::new(3, 1).to_string(), "3#1");
    }
}
