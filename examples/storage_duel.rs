//! Storage duel: replication (ABD) vs erasure coding (CAS, CASGC) under
//! growing write concurrency — the dynamics behind the paper's Figure 1
//! and Section 2.3.
//!
//! At low concurrency the coded algorithms store a fraction of a value per
//! server and win; as concurrent versions pile up their cost grows
//! linearly while ABD's stays flat, and past the crossover replication
//! wins — exactly what Theorem 6.5 proves is unavoidable for this class
//! of protocols.
//!
//! ```text
//! cargo run --example storage_duel
//! ```

use shmem_emulation::algorithms::harness::{run_concurrent_workload, AbdCluster, CasCluster};
use shmem_emulation::algorithms::value::ValueSpec;
use shmem_emulation::bounds::{lower, upper, SystemParams};

fn main() {
    // Geometry chosen so CAS's native code (k = N - 2f = 11) is wide:
    // coded cost ~ (nu+1) * 21/11 per concurrent version.
    let n = 21;
    let f = 5;
    let spec = ValueSpec::from_bits(64.0);
    let params = SystemParams::new(n, f).expect("valid parameters");

    println!("N = {n}, f = {f}, |V| = 2^64");
    println!(
        "replication line (f+1) = {}, Theorem 6.5 saturation at nu >= {}\n",
        upper::replication_total(params),
        params.f() + 1
    );
    println!(
        "{:>3} | {:>10} {:>10} {:>10} | {:>10} {:>10}",
        "nu", "ABD", "CAS", "CASGC(1)", "Thm 6.5", "winner"
    );

    for nu in 1..=8u32 {
        let mut abd = AbdCluster::new(n, f, nu + 1, spec);
        run_concurrent_workload(&mut abd, nu, 1, 2, 7).expect("abd workload");
        let abd_total = abd.storage().peak_total_bits / 64.0;

        let mut cas = CasCluster::new(n, f, nu + 1, spec);
        run_concurrent_workload(&mut cas, nu, 1, 2, 7).expect("cas workload");
        let cas_total = cas.storage().peak_total_bits / 64.0;

        let mut casgc = CasCluster::with_gc(n, f, 1, nu + 1, spec);
        run_concurrent_workload(&mut casgc, nu, 1, 2, 7).expect("casgc workload");
        let casgc_total = casgc.storage().peak_total_bits / 64.0;

        let bound = lower::multi_version_total(params, nu).to_f64();
        let winner = if cas_total.min(casgc_total) < abd_total {
            "coding"
        } else {
            "replication"
        };
        println!(
            "{:>3} | {:>10.2} {:>10.2} {:>10.2} | {:>10.2} {:>10}",
            nu, abd_total, cas_total, casgc_total, bound, winner
        );
    }

    println!(
        "\nNote: CAS accumulates one codeword symbol per concurrent version \
         (cost grows with nu); CASGC garbage-collects down to 2 finalized \
         versions; ABD always stores exactly one full value per server."
    );
}
