//! Nemesis fault primitives: message drop, duplication, bounded delay,
//! and directed link cuts / partitions with heal.
//!
//! These are the seed-driven building blocks the nemesis schedule explorer
//! (`shmem-algorithms::nemesis`) composes into fault plans. Every primitive
//! is deterministic — it mutates the world as a pure function of the
//! current state — and returns the [`StepInfo`] that records it in the
//! trace, so an execution replays exactly from `(seed, FaultPlan)`.
//!
//! Queue manipulations ([`Sim::drop_head`], [`Sim::duplicate_head`],
//! [`Sim::delay_head`]) act on the channel directly and deliberately do
//! *not* require the endpoints to be live: the network can lose or
//! duplicate a message regardless of what the endpoints are doing. Link
//! cuts ([`Sim::cut_link`], [`Sim::partition`]) instead gate the step
//! relation — `step_options` skips cut links and `deliver_one` refuses
//! them with [`RunError::LinkDown`](super::RunError::LinkDown) — until
//! healed.
//!
//! Every primitive is also a digest mutation site: queue manipulations
//! unfold the touched channel's component ([`Sim::mark_chan_dirty`]
//! internally), and cut/heal add or subtract their eager component from
//! the running world digest (see `state.rs`).

use super::state::comp_cut;
use super::Sim;
use crate::config::ChannelOrder;
use crate::ids::NodeId;
use crate::node::Protocol;
use crate::trace::StepInfo;
use std::sync::Arc;

impl<P: Protocol> Sim<P> {
    /// Whether the directed link `from → to` is currently cut.
    pub fn is_cut(&self, from: NodeId, to: NodeId) -> bool {
        !self.cut_links.is_empty() && self.cut_links.contains(&(from, to))
    }

    /// Cuts the directed link `from → to`: queued and future messages on
    /// it are held (not lost) until [`Sim::heal_link`]. Idempotent.
    pub fn cut_link(&mut self, from: NodeId, to: NodeId) -> StepInfo {
        if self.cut_links.insert((from, to)) {
            self.digest_acc = self.digest_acc.wrapping_add(comp_cut(from, to));
            if let Some(row) = self.channels.find((from, to)) {
                Arc::make_mut(&mut self.channels).cut[row] = true;
            }
        }
        self.cover(super::cover::kind::CUT, from, to, 0);
        StepInfo::LinkCut { from, to }
    }

    /// Restores a cut link; held messages become deliverable again in
    /// their original order. Idempotent.
    pub fn heal_link(&mut self, from: NodeId, to: NodeId) -> StepInfo {
        if self.cut_links.remove(&(from, to)) {
            self.digest_acc = self.digest_acc.wrapping_sub(comp_cut(from, to));
            if let Some(row) = self.channels.find((from, to)) {
                Arc::make_mut(&mut self.channels).cut[row] = false;
            }
        }
        self.cover(super::cover::kind::HEAL_LINK, from, to, 0);
        StepInfo::LinkHealed { from, to }
    }

    /// Cuts every link between the two sides, in both directions — a
    /// network partition separating `side_a` from `side_b`. Links within
    /// a side are untouched. Returns one [`StepInfo::LinkCut`] per cut,
    /// in deterministic order.
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) -> Vec<StepInfo> {
        let mut steps = Vec::with_capacity(2 * side_a.len() * side_b.len());
        for &a in side_a {
            for &b in side_b {
                steps.push(self.cut_link(a, b));
                steps.push(self.cut_link(b, a));
            }
        }
        steps
    }

    /// Heals every cut link in the world. Returns one
    /// [`StepInfo::LinkHealed`] per healed link, in deterministic order.
    pub fn heal_all_links(&mut self) -> Vec<StepInfo> {
        let cuts: Vec<(NodeId, NodeId)> = self.cut_links.iter().copied().collect();
        cuts.iter().map(|&(f, t)| self.heal_link(f, t)).collect()
    }

    /// The currently cut links, in deterministic order.
    pub fn cut_link_list(&self) -> Vec<(NodeId, NodeId)> {
        self.cut_links.iter().copied().collect()
    }

    /// Discards the head message of the `from → to` channel — message
    /// loss. Works regardless of endpoint liveness or link cuts: the
    /// network loses what it pleases.
    ///
    /// # Errors
    ///
    /// [`RunError::NoSuchMessage`](super::RunError::NoSuchMessage) if the
    /// channel is empty or absent.
    pub fn drop_head(&mut self, from: NodeId, to: NodeId) -> Result<StepInfo, super::RunError> {
        let row = match self.channels.find((from, to)) {
            Some(r) if self.channels.len[r] > 0 => r,
            _ => return Err(super::RunError::NoSuchMessage { from, to }),
        };
        self.mark_chan_dirty(row);
        Arc::make_mut(&mut self.channels).pop_front(row);
        if let Some(m) = self.metrics_mut() {
            m.on_dropped(from, to);
        }
        self.cover(super::cover::kind::DROP, from, to, 0);
        Ok(StepInfo::Dropped { from, to })
    }

    /// Re-enqueues a copy of the head message of `from → to` at the tail —
    /// at-least-once delivery. The original stays at the head, so FIFO
    /// order of first deliveries is preserved; the duplicate arrives after
    /// everything currently queued.
    ///
    /// # Errors
    ///
    /// [`RunError::NoSuchMessage`](super::RunError::NoSuchMessage) if the
    /// channel is empty or absent.
    pub fn duplicate_head(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> Result<StepInfo, super::RunError> {
        let row = match self.channels.find((from, to)) {
            Some(r) if self.channels.len[r] > 0 => r,
            _ => return Err(super::RunError::NoSuchMessage { from, to }),
        };
        self.mark_chan_dirty(row);
        let now = self.now;
        let t = Arc::make_mut(&mut self.channels);
        let copy = t.arena.get(t.head[row]).clone();
        t.push_back(row, copy, now);
        if let Some(m) = self.metrics_mut() {
            m.on_duplicated(from, to);
        }
        self.cover(super::cover::kind::DUPLICATE, from, to, 0);
        Ok(StepInfo::Duplicated { from, to })
    }

    /// Rotates the head message of `from → to` to the tail — a bounded
    /// delay past everything currently queued on the channel. A reorder,
    /// so only permitted under [`ChannelOrder::Any`]; with a single queued
    /// message it is a no-op rotation and allowed under FIFO too.
    ///
    /// # Errors
    ///
    /// [`RunError::NoSuchMessage`](super::RunError::NoSuchMessage) if the
    /// channel is empty or absent.
    ///
    /// # Panics
    ///
    /// Panics under the FIFO channel model when the queue holds more than
    /// one message (the rotation would reorder deliveries).
    pub fn delay_head(&mut self, from: NodeId, to: NodeId) -> Result<StepInfo, super::RunError> {
        let row = match self.channels.find((from, to)) {
            Some(r) if self.channels.len[r] > 0 => r,
            _ => return Err(super::RunError::NoSuchMessage { from, to }),
        };
        if self.channels.len[row] > 1 {
            assert_eq!(
                self.config.channel_order,
                ChannelOrder::Any,
                "delaying past queued messages requires ChannelOrder::Any"
            );
            self.mark_chan_dirty(row);
            let now = self.now;
            let t = Arc::make_mut(&mut self.channels);
            let head = t.pop_front(row);
            t.push_back(row, head, now);
        }
        self.cover(super::cover::kind::DELAY, from, to, 0);
        Ok(StepInfo::Delayed { from, to })
    }
}
