//! Atomicity (linearizability) checking for a single read/write register.
//!
//! A memoized Wing–Gong search specialized to registers: the search state is
//! the pair *(set of decided operations, current register value)* — for a
//! register, nothing else about a prefix of a linearization matters, so the
//! memo collapses the factorial search space drastically. Incomplete
//! operations may either take effect (be linearized) or be dropped.

use crate::history::{History, OpId, OpKind};
use crate::verdict::{Verdict, Violation, Witness};
use std::collections::HashSet;
use std::hash::Hash;

/// Checks that `history` is atomic (linearizable as a register).
///
/// Supports up to 128 operations (the decided-set is a bitmask).
///
/// # Errors
///
/// Returns [`Violation::Malformed`] for non-well-formed histories and
/// [`Violation::NotLinearizable`] when no linearization exists.
///
/// # Panics
///
/// Panics if the history has more than 128 operations.
///
/// # Examples
///
/// A classic non-atomic history — new-old inversion between two reads:
///
/// ```
/// use shmem_spec::history::{History, OpKind};
/// use shmem_spec::atomic::check_atomic;
///
/// let mut h = History::new(0u32);
/// let w = h.begin(0, OpKind::Write(1), 0);
/// h.complete(w, 10, None); // write(1) over [0,10]
/// let r1 = h.begin(1, OpKind::Read, 1);
/// h.complete(r1, 2, Some(1)); // read -> 1 (new)
/// let r2 = h.begin(2, OpKind::Read, 3);
/// h.complete(r2, 4, Some(0)); // read -> 0 (old) AFTER seeing new: violation
/// assert!(check_atomic(&h).is_err());
/// ```
pub fn check_atomic<V: Clone + Eq + Hash>(history: &History<V>) -> Verdict {
    assert!(
        history.len() <= 128,
        "atomicity checker supports at most 128 operations"
    );
    if !history.is_well_formed() {
        return Err(Violation::Malformed);
    }
    let n = history.len();
    if n == 0 {
        return Ok(Witness { order: vec![] });
    }

    // Value universe: initial + written values, indexed densely.
    let mut values: Vec<&V> = vec![history.initial()];
    let index_of = |v: &V, values: &[&V]| values.iter().position(|&u| u == v);
    for op in history.ops() {
        if let OpKind::Write(v) = &op.kind {
            if index_of(v, &values).is_none() {
                values.push(v);
            }
        }
    }

    let ops = history.ops();
    // Precompute real-time predecessors as bitmasks.
    let mut preds = vec![0u128; n];
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i != j && b.precedes(a) {
                preds[i] |= 1 << j;
            }
        }
    }

    let full: u128 = if n == 128 { u128::MAX } else { (1 << n) - 1 };
    let seen: HashSet<(u128, usize)> = HashSet::new();
    let order: Vec<OpId> = Vec::new();

    struct Search<'a, V> {
        full: u128,
        ops: &'a [crate::history::Operation<V>],
        values: &'a [&'a V],
        preds: &'a [u128],
        seen: HashSet<(u128, usize)>,
        order: Vec<OpId>,
    }

    fn dfs<V: Clone + Eq + Hash>(s: &mut Search<'_, V>, decided: u128, value: usize) -> bool {
        let (full, ops, values, preds) = (s.full, s.ops, s.values, s.preds);
        let (seen, order) = (&mut s.seen, &mut s.order);
        return dfs_inner(decided, value, full, ops, values, preds, seen, order);

        #[allow(clippy::too_many_arguments)]
        fn dfs_inner<V: Clone + Eq + Hash>(
            decided: u128,
            value: usize,
            full: u128,
            ops: &[crate::history::Operation<V>],
            values: &[&V],
            preds: &[u128],
            seen: &mut HashSet<(u128, usize)>,
            order: &mut Vec<OpId>,
        ) -> bool {
            if decided == full {
                return true;
            }
            if !seen.insert((decided, value)) {
                return false;
            }
            for i in 0..ops.len() {
                let bit = 1u128 << i;
                if decided & bit != 0 || preds[i] & !decided != 0 {
                    continue;
                }
                let op = &ops[i];
                // Option A: linearize op i here.
                let next_value = match &op.kind {
                    OpKind::Write(v) => Some(
                        values
                            .iter()
                            .position(|&u| u == v)
                            .expect("written value is in the universe"),
                    ),
                    OpKind::Read => {
                        let legal = match (&op.returned, op.responded) {
                            // A completed read must have returned the current value.
                            (Some(r), _) => values[value] == r,
                            // An incomplete read can be linearized with any value.
                            (None, None) => true,
                            (None, Some(_)) => false,
                        };
                        if legal {
                            Some(value)
                        } else {
                            None
                        }
                    }
                };
                if let Some(nv) = next_value {
                    order.push(OpId(i));
                    if dfs_inner(decided | bit, nv, full, ops, values, preds, seen, order) {
                        return true;
                    }
                    order.pop();
                }
                // Option B: drop op i (only if it never completed).
                if op.responded.is_none()
                    && dfs_inner(decided | bit, value, full, ops, values, preds, seen, order)
                {
                    return true;
                }
            }
            false
        }
    }

    let mut search = Search {
        full,
        ops,
        values: &values,
        preds: &preds,
        seen,
        order,
    };
    if dfs(&mut search, 0, 0) {
        let order = search.order;
        // Dropped ops are in `decided` but not in `order`; the witness lists
        // only the effective linearization.
        Ok(Witness { order })
    } else {
        Err(Violation::NotLinearizable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(h: &mut History<u32>, c: u32, v: u32, t0: u64, t1: u64) -> OpId {
        let id = h.begin(c, OpKind::Write(v), t0);
        h.complete(id, t1, None);
        id
    }

    fn r(h: &mut History<u32>, c: u32, got: u32, t0: u64, t1: u64) -> OpId {
        let id = h.begin(c, OpKind::Read, t0);
        h.complete(id, t1, Some(got));
        id
    }

    #[test]
    fn empty_history_is_atomic() {
        assert!(check_atomic(&History::new(0u32)).is_ok());
    }

    #[test]
    fn sequential_history_atomic() {
        let mut h = History::new(0u32);
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, 1, 2, 3);
        w(&mut h, 0, 2, 4, 5);
        r(&mut h, 1, 2, 6, 7);
        let v = check_atomic(&h).unwrap();
        assert_eq!(v.order.len(), 4);
    }

    #[test]
    fn read_of_initial_value() {
        let mut h = History::new(0u32);
        r(&mut h, 1, 0, 0, 1);
        assert!(check_atomic(&h).is_ok());
    }

    #[test]
    fn stale_read_rejected() {
        let mut h = History::new(0u32);
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, 0, 2, 3); // returns initial after write(1) completed
        assert_eq!(check_atomic(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn overlapping_read_may_return_old_or_new() {
        for got in [0u32, 1] {
            let mut h = History::new(0u32);
            let wid = h.begin(0, OpKind::Write(1), 0);
            h.complete(wid, 10, None);
            r(&mut h, 1, got, 2, 3); // overlaps the write
            assert!(check_atomic(&h).is_ok(), "got={got}");
        }
    }

    #[test]
    fn new_old_inversion_rejected() {
        let mut h = History::new(0u32);
        let wid = h.begin(0, OpKind::Write(1), 0);
        h.complete(wid, 10, None);
        r(&mut h, 1, 1, 1, 2); // sees new value
        r(&mut h, 2, 0, 3, 4); // then old value: not atomic
        assert_eq!(check_atomic(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn old_new_order_accepted() {
        let mut h = History::new(0u32);
        let wid = h.begin(0, OpKind::Write(1), 0);
        h.complete(wid, 10, None);
        r(&mut h, 1, 0, 1, 2);
        r(&mut h, 2, 1, 3, 4);
        assert!(check_atomic(&h).is_ok());
    }

    #[test]
    fn incomplete_write_may_take_effect() {
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 0); // never completes
        r(&mut h, 1, 1, 5, 6); // reads it: fine, the write linearizes first
        assert!(check_atomic(&h).is_ok());
    }

    #[test]
    fn incomplete_write_may_be_dropped() {
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 0); // never completes
        r(&mut h, 1, 0, 5, 6); // reads initial: fine, the write is dropped
        assert!(check_atomic(&h).is_ok());
    }

    #[test]
    fn incomplete_write_cannot_flipflop() {
        // Once read as taken-effect, a later read can't see the older value.
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 0); // never completes
        r(&mut h, 1, 1, 5, 6);
        r(&mut h, 2, 0, 7, 8);
        assert_eq!(check_atomic(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn concurrent_writes_any_order() {
        // Two overlapping writes; readers may see either final value.
        for final_v in [1u32, 2] {
            let mut h = History::new(0u32);
            let w1 = h.begin(0, OpKind::Write(1), 0);
            let w2 = h.begin(1, OpKind::Write(2), 1);
            h.complete(w1, 10, None);
            h.complete(w2, 11, None);
            r(&mut h, 2, final_v, 20, 21);
            assert!(check_atomic(&h).is_ok(), "final={final_v}");
        }
    }

    #[test]
    fn read_must_respect_write_order() {
        // w(1) then w(2) sequentially; a later read of 1 is stale.
        let mut h = History::new(0u32);
        w(&mut h, 0, 1, 0, 1);
        w(&mut h, 0, 2, 2, 3);
        r(&mut h, 1, 1, 4, 5);
        assert_eq!(check_atomic(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn malformed_history_rejected() {
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 0);
        h.begin(0, OpKind::Write(2), 1); // same client, first op still open
        assert_eq!(check_atomic(&h), Err(Violation::Malformed));
    }

    #[test]
    fn witness_is_a_legal_linearization() {
        let mut h = History::new(0u32);
        let w1 = w(&mut h, 0, 1, 0, 1);
        let r1 = r(&mut h, 1, 1, 2, 3);
        let wit = check_atomic(&h).unwrap();
        assert_eq!(wit.order, vec![w1, r1]);
    }

    #[test]
    fn duplicate_write_values_supported() {
        // The memoized search does not require unique write values.
        let mut h = History::new(0u32);
        w(&mut h, 0, 5, 0, 1);
        w(&mut h, 0, 5, 2, 3);
        r(&mut h, 1, 5, 4, 5);
        assert!(check_atomic(&h).is_ok());
    }

    #[test]
    fn larger_concurrent_history() {
        // 3 writers, 3 readers, interleaved; all reads justified.
        let mut h = History::new(0u32);
        let w1 = h.begin(0, OpKind::Write(1), 0);
        let w2 = h.begin(1, OpKind::Write(2), 2);
        h.complete(w1, 5, None);
        let r1 = h.begin(3, OpKind::Read, 6);
        h.complete(r1, 7, Some(1));
        h.complete(w2, 9, None);
        let r2 = h.begin(4, OpKind::Read, 10);
        h.complete(r2, 12, Some(2));
        let w3 = h.begin(2, OpKind::Write(3), 11);
        h.complete(w3, 14, None);
        let r3 = h.begin(5, OpKind::Read, 15);
        h.complete(r3, 16, Some(3));
        assert!(check_atomic(&h).is_ok());
    }
}
