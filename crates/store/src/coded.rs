//! Lock-free per-key share slots for the coded protocols, plus the hash
//! side-table of hashed CAS — the store behind [`CasBackend`] /
//! [`HashedBackend`].
//!
//! A CAS key's state (codeword symbols by tag + finalize labels) is a
//! small immutable value behind one atomic pointer, updated RCU-style: a
//! mutator copies the current state, applies the legacy transition
//! (insert symbol / insert finalize label / GC), and CASes the pointer;
//! on a race it retries from the winner's state, so concurrent rounds
//! merge exactly like interleaved sequential rounds (every transition is
//! an idempotent set-insert followed by deterministic GC — the retry
//! converges). Displaced states go through the epoch collector.

use crate::epoch::{Collector, Handle};
use crate::map::AtomicMap;
use shmem_algorithms::backend::{CasBackend, HashedBackend};
use shmem_algorithms::cas::ShardedCasConfig;
use shmem_algorithms::multikey::Key;
use shmem_algorithms::tag::Tag;
use shmem_algorithms::value::{Value, ValueSpec};
use shmem_sim::hash_of;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// One key's immutable CAS state. Cloned and replaced wholesale; the
/// maps stay `BTreeMap`/`BTreeSet` so snapshots hash byte-identically to
/// the sequential reference.
pub(crate) struct CodedState {
    shares: BTreeMap<Tag, Vec<u8>>,
    finalized: BTreeSet<Tag>,
    live: Arc<AtomicUsize>,
}

impl CodedState {
    fn new(
        shares: BTreeMap<Tag, Vec<u8>>,
        finalized: BTreeSet<Tag>,
        live: &Arc<AtomicUsize>,
    ) -> CodedState {
        live.fetch_add(1, SeqCst);
        CodedState {
            shares,
            finalized,
            live: Arc::clone(live),
        }
    }
}

impl Drop for CodedState {
    fn drop(&mut self) {
        self.live.fetch_sub(1, SeqCst);
    }
}

pub(crate) struct CodedCell {
    state: AtomicPtr<CodedState>,
}

impl CodedCell {
    fn empty() -> CodedCell {
        CodedCell {
            state: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// The shared coded store of one emulated server.
pub struct CodedStore {
    map: AtomicMap<CodedCell>,
    /// Announced hashes per key (hashed CAS only; empty otherwise).
    hashes: AtomicMap<HashCell>,
    collector: Collector,
    live: Arc<AtomicUsize>,
}

impl Default for CodedStore {
    fn default() -> CodedStore {
        CodedStore::new()
    }
}

impl CodedStore {
    /// An empty store.
    pub fn new() -> CodedStore {
        CodedStore {
            map: AtomicMap::with_capacity(1024),
            hashes: AtomicMap::with_capacity(1024),
            collector: Collector::new(),
            live: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The store's reclamation domain (for epoch assertions in tests).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Currently allocated (published, not yet freed) key states.
    pub fn live_states(&self) -> usize {
        self.live.load(SeqCst)
    }
}

impl Drop for CodedStore {
    fn drop(&mut self) {
        self.map.for_each(|_, cell| {
            let p = cell.state.swap(std::ptr::null_mut(), SeqCst);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        });
        self.hashes.for_each(|_, cell| {
            let p = cell.state.swap(std::ptr::null_mut(), SeqCst);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        });
    }
}

/// One key's announced hashes (hashed CAS), RCU like [`CodedState`].
pub(crate) struct HashState {
    by_tag: BTreeMap<Tag, u64>,
}

pub(crate) struct HashCell {
    state: AtomicPtr<HashState>,
}

impl HashCell {
    fn empty() -> HashCell {
        HashCell {
            state: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// [`CasBackend`] over the shared coded store: plugs into
/// `ShardedCasServerOn<StoreCasBackend>`. Carries the same config-derived
/// seeding the sequential reference computes, so lazily materialized keys
/// spring into existence with identical state.
pub struct StoreCasBackend {
    store: Arc<CodedStore>,
    epoch: Handle,
    cfg: ShardedCasConfig,
    me: u32,
    initial_share_by_pos: Vec<Vec<u8>>,
}

impl StoreCasBackend {
    /// A backend for server `me` over a fresh private store.
    pub fn new(cfg: ShardedCasConfig, me: u32, initial: Value) -> StoreCasBackend {
        StoreCasBackend::shared(&Arc::new(CodedStore::new()), cfg, me, initial)
    }

    /// A backend for server `me` sharing `store` (one per thread).
    pub fn shared(
        store: &Arc<CodedStore>,
        cfg: ShardedCasConfig,
        me: u32,
        initial: Value,
    ) -> StoreCasBackend {
        let initial_share_by_pos = cfg.code().encode_bytes(&ValueSpec::to_bytes(initial));
        StoreCasBackend {
            epoch: store.collector.register(),
            store: Arc::clone(store),
            cfg,
            me,
            initial_share_by_pos,
        }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<CodedStore> {
        &self.store
    }

    /// Drains this handle's deferred frees as far as the epoch allows.
    pub fn collect(&self) {
        self.epoch.collect();
    }

    /// The seed state of an untouched in-shard key: its initial-value
    /// symbol under `Tag::ZERO`, finalized — exactly the reference's.
    fn seed(&self, pos: u32) -> (BTreeMap<Tag, Vec<u8>>, BTreeSet<Tag>) {
        let initial = self.initial_share_by_pos[pos as usize].clone();
        ([(Tag::ZERO, initial)].into(), [Tag::ZERO].into())
    }

    /// The legacy GC rule, applied to a state under construction.
    fn gc(cfg: &ShardedCasConfig, shares: &mut BTreeMap<Tag, Vec<u8>>, finalized: &BTreeSet<Tag>) {
        let Some(delta) = cfg.gc_depth else {
            return;
        };
        let keep_from = finalized.iter().rev().nth(delta as usize).copied();
        if let Some(cutoff) = keep_from {
            shares.retain(|&t, _| t >= cutoff);
        }
    }

    /// RCU update of `key`'s state: materialize if needed, apply
    /// `mutate` (returning `None` for "already satisfied"), GC, CAS;
    /// retry from the winner on a race. Returns the share for
    /// `want_share` read from the state this call left installed.
    fn update(
        &self,
        key: Key,
        pos: u32,
        mutate: impl Fn(&mut BTreeMap<Tag, Vec<u8>>, &mut BTreeSet<Tag>) -> bool,
        want_share: Option<Tag>,
    ) -> Option<Vec<u8>> {
        let _guard = self.epoch.enter();
        let cell = self.store.map.get_or_insert(key, CodedCell::empty);
        loop {
            let p = cell.state.load(SeqCst);
            let (mut shares, mut finalized) = if p.is_null() {
                self.seed(pos)
            } else {
                let s = unsafe { &*p };
                (s.shares.clone(), s.finalized.clone())
            };
            let changed = mutate(&mut shares, &mut finalized);
            if changed {
                Self::gc(&self.cfg, &mut shares, &finalized);
            } else if !p.is_null() {
                // Already satisfied: leave the winner in place.
                let s = unsafe { &*p };
                return want_share.and_then(|t| s.shares.get(&t).cloned());
            }
            let result = want_share.and_then(|t| shares.get(&t).cloned());
            let n = Box::into_raw(Box::new(CodedState::new(
                shares,
                finalized,
                &self.store.live,
            )));
            match cell.state.compare_exchange(p, n, SeqCst, SeqCst) {
                Ok(_) => {
                    if !p.is_null() {
                        self.epoch.retire(unsafe { Box::from_raw(p) });
                    }
                    return result;
                }
                Err(_) => {
                    drop(unsafe { Box::from_raw(n) });
                    continue; // retry from the winner's state
                }
            }
        }
    }

    /// Read-only view of `key`'s state under a pin.
    fn with_state<R>(&self, key: Key, f: impl FnOnce(Option<&CodedState>) -> R) -> R {
        let _guard = self.epoch.enter();
        let p = self
            .store
            .map
            .get(key)
            .map_or(std::ptr::null_mut(), |cell| cell.state.load(SeqCst));
        if p.is_null() {
            f(None)
        } else {
            f(Some(unsafe { &*p }))
        }
    }
}

impl Clone for StoreCasBackend {
    /// A clone is a *sibling*: same shared store, fresh epoch handle.
    fn clone(&self) -> StoreCasBackend {
        StoreCasBackend {
            epoch: self.store.collector.register(),
            store: Arc::clone(&self.store),
            cfg: self.cfg.clone(),
            me: self.me,
            initial_share_by_pos: self.initial_share_by_pos.clone(),
        }
    }
}

impl std::fmt::Debug for StoreCasBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreCasBackend")
            .field("me", &self.me)
            .field("keys_held", &CasBackend::keys_held(self))
            .finish()
    }
}

impl CasBackend for StoreCasBackend {
    fn max_finalized(&self, key: Key) -> Tag {
        self.with_state(key, |s| {
            s.and_then(|s| s.finalized.iter().next_back().copied())
                .unwrap_or(Tag::ZERO)
        })
    }

    fn pre_write(&mut self, key: Key, tag: Tag, share: Vec<u8>) {
        let Some(pos) = self.cfg.map.position_for_key(self.me, key) else {
            return;
        };
        self.update(
            key,
            pos,
            |shares, _| match shares.entry(tag) {
                std::collections::btree_map::Entry::Occupied(_) => false,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(share.clone());
                    true
                }
            },
            None,
        );
    }

    fn finalize(&mut self, key: Key, tag: Tag) {
        let Some(pos) = self.cfg.map.position_for_key(self.me, key) else {
            return;
        };
        self.update(key, pos, |_, finalized| finalized.insert(tag), None);
    }

    fn read_get(&mut self, key: Key, tag: Tag) -> Option<Option<Vec<u8>>> {
        let pos = self.cfg.map.position_for_key(self.me, key)?;
        Some(self.update(key, pos, |_, finalized| finalized.insert(tag), Some(tag)))
    }

    fn versions_held(&self, key: Key) -> usize {
        self.with_state(key, |s| s.map_or(0, |s| s.shares.len()))
    }

    fn keys_held(&self) -> usize {
        let _guard = self.epoch.enter();
        let mut n = 0;
        self.store
            .map
            .for_each(|_, cell| n += usize::from(!cell.state.load(SeqCst).is_null()));
        n
    }

    fn total_versions(&self) -> usize {
        let _guard = self.epoch.enter();
        let mut n = 0;
        self.store.map.for_each(|_, cell| {
            let p = cell.state.load(SeqCst);
            if !p.is_null() {
                n += unsafe { &*p }.shares.len();
            }
        });
        n
    }

    fn total_tags(&self) -> usize {
        let _guard = self.epoch.enter();
        let mut n = 0;
        self.store.map.for_each(|_, cell| {
            let p = cell.state.load(SeqCst);
            if !p.is_null() {
                let s = unsafe { &*p };
                n += s.shares.len() + s.finalized.len();
            }
        });
        n
    }

    fn digest_with(&self, me: u32) -> u64 {
        let _guard = self.epoch.enter();
        // Owned snapshot in canonical key order; hashes byte-identically
        // to the reference's borrowed views.
        type Canonical = Vec<(Key, BTreeMap<Tag, Vec<u8>>, BTreeSet<Tag>)>;
        let mut canonical: Canonical = Vec::new();
        self.store.map.for_each(|key, cell| {
            let p = cell.state.load(SeqCst);
            if !p.is_null() {
                let s = unsafe { &*p };
                canonical.push((key, s.shares.clone(), s.finalized.clone()));
            }
        });
        canonical.sort_by_key(|&(k, _, _)| k);
        hash_of(&(me, canonical))
    }
}

/// [`HashedBackend`] over the shared coded store: the CAS backend plus
/// the RCU'd hash side-table.
pub struct StoreHashedBackend {
    cas: StoreCasBackend,
    /// `h(initial)`, served for `Tag::ZERO` lookups that miss the table —
    /// kept out of the hash side-table so `hashed_digest_with` matches the
    /// reference backend's canonical shape (see `LocalHashed`).
    initial_digest: u64,
}

impl StoreHashedBackend {
    /// A backend for server `me` over a fresh private store.
    pub fn new(cfg: ShardedCasConfig, me: u32, initial: Value) -> StoreHashedBackend {
        StoreHashedBackend {
            cas: StoreCasBackend::new(cfg, me, initial),
            initial_digest: shmem_algorithms::hashed::value_digest(initial),
        }
    }

    /// A backend for server `me` sharing `store` (one per thread).
    pub fn shared(
        store: &Arc<CodedStore>,
        cfg: ShardedCasConfig,
        me: u32,
        initial: Value,
    ) -> StoreHashedBackend {
        StoreHashedBackend {
            cas: StoreCasBackend::shared(store, cfg, me, initial),
            initial_digest: shmem_algorithms::hashed::value_digest(initial),
        }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<CodedStore> {
        &self.cas.store
    }

    fn hash_snapshot(&self) -> BTreeMap<(Key, Tag), u64> {
        let _guard = self.cas.epoch.enter();
        let mut out = BTreeMap::new();
        self.cas.store.hashes.for_each(|key, cell| {
            let p = cell.state.load(SeqCst);
            if !p.is_null() {
                for (&tag, &d) in &unsafe { &*p }.by_tag {
                    out.insert((key, tag), d);
                }
            }
        });
        out
    }
}

impl Clone for StoreHashedBackend {
    fn clone(&self) -> StoreHashedBackend {
        StoreHashedBackend {
            cas: self.cas.clone(),
            initial_digest: self.initial_digest,
        }
    }
}

impl std::fmt::Debug for StoreHashedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHashedBackend")
            .field("me", &self.cas.me)
            .finish()
    }
}

impl CasBackend for StoreHashedBackend {
    fn max_finalized(&self, key: Key) -> Tag {
        self.cas.max_finalized(key)
    }
    fn pre_write(&mut self, key: Key, tag: Tag, share: Vec<u8>) {
        self.cas.pre_write(key, tag, share);
    }
    fn finalize(&mut self, key: Key, tag: Tag) {
        self.cas.finalize(key, tag);
    }
    fn read_get(&mut self, key: Key, tag: Tag) -> Option<Option<Vec<u8>>> {
        self.cas.read_get(key, tag)
    }
    fn versions_held(&self, key: Key) -> usize {
        self.cas.versions_held(key)
    }
    fn keys_held(&self) -> usize {
        self.cas.keys_held()
    }
    fn total_versions(&self) -> usize {
        self.cas.total_versions()
    }
    fn total_tags(&self) -> usize {
        self.cas.total_tags()
    }
    fn digest_with(&self, me: u32) -> u64 {
        self.cas.digest_with(me)
    }
}

impl HashedBackend for StoreHashedBackend {
    fn put_hash(&mut self, key: Key, tag: Tag, digest: u64) {
        let _guard = self.cas.epoch.enter();
        let cell = self.cas.store.hashes.get_or_insert(key, HashCell::empty);
        loop {
            let p = cell.state.load(SeqCst);
            let mut by_tag = if p.is_null() {
                BTreeMap::new()
            } else {
                let s = unsafe { &*p };
                // Last announcement wins, like the reference's insert.
                if s.by_tag.get(&tag) == Some(&digest) {
                    return;
                }
                s.by_tag.clone()
            };
            by_tag.insert(tag, digest);
            let n = Box::into_raw(Box::new(HashState { by_tag }));
            match cell.state.compare_exchange(p, n, SeqCst, SeqCst) {
                Ok(_) => {
                    if !p.is_null() {
                        self.cas.epoch.retire(unsafe { Box::from_raw(p) });
                    }
                    return;
                }
                Err(_) => {
                    drop(unsafe { Box::from_raw(n) });
                }
            }
        }
    }

    fn get_hash(&self, key: Key, tag: Tag) -> Option<u64> {
        let stored = (|| {
            let _guard = self.cas.epoch.enter();
            let cell = self.cas.store.hashes.get(key)?;
            let p = cell.state.load(SeqCst);
            if p.is_null() {
                return None;
            }
            unsafe { &*p }.by_tag.get(&tag).copied()
        })();
        stored.or_else(|| {
            // Tag::ZERO is never announced — every key implicitly starts
            // at the initial value, whose digest is seeded at startup.
            (tag == Tag::ZERO).then_some(self.initial_digest)
        })
    }

    fn hash_count(&self) -> usize {
        let _guard = self.cas.epoch.enter();
        let mut n = 0;
        self.cas.store.hashes.for_each(|_, cell| {
            let p = cell.state.load(SeqCst);
            if !p.is_null() {
                n += unsafe { &*p }.by_tag.len();
            }
        });
        n
    }

    fn hashed_digest_with(&self, me: u32) -> u64 {
        hash_of(&(self.cas.digest_with(me), &self.hash_snapshot()))
    }
}
