//! Regenerates the golden digest fixtures under `tests/fixtures/`.
//!
//! For a matrix of (algorithm × seed × sampled fault plan) this runs the
//! nemesis driver to completion and records the world's final digest and
//! trace length. `tests/digest_golden.rs` replays the stored plans on
//! every test run and asserts byte-identical digests, so any change to
//! the simulator's state representation, scheduler order, fault
//! semantics, or digest fold shows up as a tier-1 failure — the fixture
//! is the contract that hot-loop rework preserves observable behavior.
//!
//! Only regenerate after an *intentional* semantic change, and say so in
//! the commit that updates the fixture:
//!
//! ```sh
//! cargo run --release --example gen_digest_golden
//! ```

use shmem_algorithms::nemesis::{run_plan, ClusterShape, FaultPlan};
use shmem_algorithms::{AbdCluster, CasCluster, GossipCluster, NwbCluster, ValueSpec};
use shmem_util::json::Json;
use shmem_util::DetRng;
use std::fs;
use std::path::Path;

/// Salt folded into each seed before plan sampling, so fixture plans are
/// not correlated with any other DetRng stream in the repo.
const PLAN_SALT: u64 = 0x60_1DE2_D16E;

fn main() {
    let spec = ValueSpec::from_bits(64.0);
    let mut entries: Vec<Json> = Vec::new();
    for &(algorithm, n, f, clients) in &[
        ("abd", 5u32, 2u32, 3u32),
        ("abd-gossip", 3, 1, 3),
        ("cas", 5, 2, 3),
        ("nowriteback", 3, 1, 2),
    ] {
        let shape = ClusterShape {
            servers: n,
            f,
            clients,
            reordering: false,
        };
        for seed in 1u64..=3 {
            let plan = FaultPlan::sample(&mut DetRng::seed_from_u64(seed ^ PLAN_SALT), shape);
            let run = match algorithm {
                "abd" => run_plan(&mut AbdCluster::new(n, f, clients, spec), seed, &plan),
                "abd-gossip" => run_plan(&mut GossipCluster::new(n, f, clients, spec), seed, &plan),
                "cas" => run_plan(&mut CasCluster::new(n, f, clients, spec), seed, &plan),
                "nowriteback" => run_plan(&mut NwbCluster::new(n, f, clients, spec), seed, &plan),
                other => unreachable!("unknown algorithm {other}"),
            };
            entries.push(Json::Obj(vec![
                ("algorithm".into(), Json::str(algorithm)),
                ("n".into(), Json::Num(f64::from(n))),
                ("f".into(), Json::Num(f64::from(f))),
                ("clients".into(), Json::Num(f64::from(clients))),
                ("seed".into(), Json::Num(seed as f64)),
                // Hex string: JSON numbers are f64 and would round a u64.
                (
                    "digest".into(),
                    Json::str(format!("{:#018x}", run.final_digest)),
                ),
                ("trace_len".into(), Json::Num(run.trace.len() as f64)),
                ("plan".into(), plan.to_json()),
            ]));
        }
    }
    let doc = Json::Obj(vec![
        (
            "comment".into(),
            Json::str(
                "Golden world digests for (algorithm × seed × fault plan); \
                 regenerate with `cargo run --release --example gen_digest_golden` \
                 only after an intentional semantic change.",
            ),
        ),
        ("entries".into(), Json::Arr(entries)),
    ]);
    let dir = Path::new("tests/fixtures");
    fs::create_dir_all(dir).expect("create tests/fixtures");
    let path = dir.join("digest_golden.json");
    fs::write(&path, doc.to_pretty() + "\n").expect("write fixture");
    println!("wrote {}", path.display());
}
