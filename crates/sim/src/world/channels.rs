//! The step relation: invocations, message delivery, scheduling.
//!
//! This is the simulator's hot loop, and it is allocation-free in steady
//! state:
//!
//! * scheduler scans walk the channel table's `nonempty` row bitset
//!   (ascending row order, so option order is byte-for-byte the old
//!   `BTreeMap` iteration order that recorded fault corpora replay
//!   against);
//! * messages move through the slab arena (`table.rs`) — enqueueing
//!   reuses freed slots instead of heap-allocating;
//! * the per-event [`Ctx`] borrows recycled scratch vectors from the
//!   world instead of allocating an outbox per step;
//! * in the fault-free case [`Sim::step_fair`] picks its channel straight
//!   from the `nonempty` bitset (`select`) without materializing an
//!   options list at all.
//!
//! The channel table and the node vectors are `Arc`s shared between
//! forks. Rather than paying `Arc::make_mut`'s refcount round-trips per
//! step, the delivery loop claims *unique ownership* of all three once —
//! the `hot_owned` flag on [`Sim`] — and thereafter reaches their
//! payloads directly; the first delivery after a fork unshares the trio
//! in one go and re-establishes the claim (see [`Sim::deliver_row`]'s
//! safety comment).

use super::{RunError, SendRecord, Sim};
use crate::ids::{ClientId, NodeId};
use crate::node::{Ctx, Node, Protocol};
use crate::trace::{OpRecord, StepInfo};
use std::sync::Arc;

impl<P: Protocol> Sim<P> {
    /// Invokes an operation at a client. The invocation action itself is one
    /// step of the execution.
    ///
    /// # Errors
    ///
    /// * [`RunError::NodeUnavailable`] if the client crashed or is frozen.
    /// * [`RunError::OperationPending`] if the client already has an open
    ///   operation (the model requires well-formed clients).
    pub fn invoke(&mut self, client: ClientId, inv: P::Inv) -> Result<(), RunError> {
        let id = NodeId::Client(client);
        if self.is_blocked(id) {
            return Err(RunError::NodeUnavailable { node: id });
        }
        if self.open_ops.contains_key(&client) {
            return Err(RunError::OperationPending { client });
        }
        let idx = client.0 as usize;
        assert!(idx < self.clients.len(), "unknown client {client}");
        self.now += 1;
        self.open_ops.insert(client, self.ops.len());
        Arc::make_mut(&mut self.ops).push(OpRecord {
            client,
            invoked_at: self.now,
            responded_at: None,
            invocation: inv.clone(),
            response: None,
        });
        if let Some(m) = self.metrics_mut() {
            m.on_op_started();
        }
        self.mark_node_dirty(self.servers.len() + idx);
        let mut ctx: Ctx<P> = Ctx::with_buffers(
            id,
            self.now,
            std::mem::take(&mut self.scratch_outbox),
            std::mem::take(&mut self.scratch_resp),
        );
        <P::Client as Node<P>>::on_invoke(
            &mut Arc::make_mut(&mut self.clients)[idx],
            inv,
            &mut ctx,
        );
        self.apply_effects(id, ctx);
        self.sample_meter_for(id);
        self.cover_step(super::cover::kind::INVOKE, id, id);
        Ok(())
    }

    /// Collects the deliverable channels into `out` (cleared first): the
    /// non-empty, un-cut rows whose endpoints are unblocked, in key order.
    fn fill_step_options(&self, out: &mut Vec<(NodeId, NodeId)>) {
        out.clear();
        let t = &*self.channels;
        for row in t.nonempty.iter() {
            let r = row as usize;
            if !t.cut[r]
                && !self.blocked[t.src_slot[r] as usize]
                && !self.blocked[t.dst_slot[r] as usize]
            {
                out.push(t.keys[r]);
            }
        }
    }

    /// The deliverable channels at this point: non-empty queues whose
    /// endpoints are neither crashed nor frozen and whose link is not cut,
    /// in deterministic order.
    pub fn step_options(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        self.fill_step_options(&mut out);
        out
    }

    /// [`Sim::step_options`] into a caller-owned buffer (cleared first) —
    /// the allocation-free variant for schedulers that scan every step.
    pub fn step_options_into(&self, out: &mut Vec<(NodeId, NodeId)>) {
        self.fill_step_options(out);
    }

    /// Delivers the head message of the `from → to` channel: the receiver's
    /// `on_message` runs and its effects are applied. One step.
    ///
    /// # Errors
    ///
    /// * [`RunError::NoSuchMessage`] if the channel is empty or absent.
    /// * [`RunError::NodeUnavailable`] if either endpoint is crashed or
    ///   frozen.
    /// * [`RunError::LinkDown`] if the `from → to` link is cut.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> Result<StepInfo, RunError> {
        if self.is_blocked(from) || self.is_blocked(to) {
            let node = if self.is_blocked(from) { from } else { to };
            return Err(RunError::NodeUnavailable { node });
        }
        if self.is_cut(from, to) {
            return Err(RunError::LinkDown { from, to });
        }
        let src = self.node_slot(from) as u32;
        let dst = self.node_slot(to) as u32;
        let row = match self.channels.lookup(src, dst) {
            Some(r) if self.channels.len[r] > 0 => r,
            _ => return Err(RunError::NoSuchMessage { from, to }),
        };
        Ok(self.deliver_row(row))
    }

    /// The delivery core: pops `row`'s head, dispatches it, applies the
    /// effects. The row must be non-empty and deliverable.
    fn deliver_row(&mut self, row: usize) -> StepInfo {
        let fast = self.send_log.is_none()
            && self.metrics_level == crate::metrics::MetricsLevel::Off
            && self.cut_links.is_empty();
        let nserv = self.servers.len() as u32;
        let nclients = self.clients.len() as u32;
        // Claim unique ownership of the hot allocations once, instead of
        // paying `Arc::make_mut`'s refcount round-trips on every step.
        // After the three unshares below, no other pointer to the server
        // vec, client vec, or channel table exists — re-sharing them
        // requires `Sim::clone`, which clears `hot_owned` on both worlds
        // through `&self`, and `&mut self` here excludes any concurrent
        // clone of *this* world.
        use std::sync::atomic::Ordering::Relaxed;
        if !self.hot_owned.load(Relaxed) {
            Arc::make_mut(&mut self.servers);
            Arc::make_mut(&mut self.clients);
            Arc::make_mut(&mut self.channels);
            self.hot_owned.store(true, Relaxed);
        }
        // SAFETY: `hot_owned` (checked or just established above) proves
        // these `Arc`s unique, so mutating their payloads in place is
        // sound for the same reason `Arc::get_mut_unchecked` is. The raw
        // borrow of the table coexists with the disjoint field accesses
        // below (nodes, scratch, digest caches).
        let t = unsafe {
            &mut *(Arc::as_ptr(&self.channels) as *mut super::table::ChannelTable<P::Msg>)
        };
        let (from, to) = t.keys[row];
        if !t.dirty[row] {
            t.dirty[row] = true;
            self.digest_acc = self.digest_acc.wrapping_sub(t.comp[row]);
        }
        let dst_slot = t.dst_slot[row] as usize;
        let msg = t.pop_front(row);
        self.now += 1;
        match (from.is_server(), to.is_server()) {
            (false, true) => self.traffic.client_to_server += 1,
            (true, false) => self.traffic.server_to_client += 1,
            (true, true) => self.traffic.server_to_server += 1,
            (false, false) => {}
        }
        if self.metrics_level != crate::metrics::MetricsLevel::Off {
            if let Some(m) = self.metrics.as_mut().map(Arc::make_mut) {
                m.on_delivered(from, to);
            }
        }
        // `mark_node_dirty`, inlined to keep the table borrow alive.
        if !self.node_dirty[dst_slot] {
            self.node_dirty[dst_slot] = true;
            self.digest_acc = self.digest_acc.wrapping_sub(self.node_comp[dst_slot]);
        }
        let mut ctx: Ctx<P> = Ctx::with_buffers(
            to,
            self.now,
            std::mem::take(&mut self.scratch_outbox),
            std::mem::take(&mut self.scratch_resp),
        );
        // SAFETY: covered by the `hot_owned` uniqueness claim above; the
        // node vectors are separate allocations from the table borrowed
        // as `t`.
        match to {
            NodeId::Server(s) => <P::Server as Node<P>>::on_message(
                unsafe {
                    &mut (&mut *(Arc::as_ptr(&self.servers) as *mut Vec<P::Server>))[s.0 as usize]
                },
                from,
                msg,
                &mut ctx,
            ),
            NodeId::Client(c) => <P::Client as Node<P>>::on_message(
                unsafe {
                    &mut (&mut *(Arc::as_ptr(&self.clients) as *mut Vec<P::Client>))[c.0 as usize]
                },
                from,
                msg,
                &mut ctx,
            ),
        }
        if fast {
            let (mut outbox, mut responses) = ctx.into_effects();
            if !outbox.is_empty() {
                let src = dst_slot as u32;
                let origin_is_server = to.is_server();
                let gossip_ok = self.config.server_gossip;
                let now = self.now;
                for (dst_id, m) in outbox.drain(..) {
                    let dst = match dst_id {
                        NodeId::Server(s) => {
                            if origin_is_server && !gossip_ok {
                                panic!(
                                    "protocol violated the no-gossip model: {to} sent a message \
                                     to {dst_id} but server_gossip is disabled"
                                );
                            }
                            assert!(s.0 < nserv, "message sent to unknown node {dst_id}");
                            s.0
                        }
                        NodeId::Client(c) => {
                            assert!(c.0 < nclients, "message sent to unknown node {dst_id}");
                            nserv + c.0
                        }
                    };
                    let r = match t.lookup(src, dst) {
                        Some(r) => r,
                        None => t.ensure((to, dst_id), src, dst, false),
                    };
                    if !t.dirty[r] {
                        t.dirty[r] = true;
                        self.digest_acc = self.digest_acc.wrapping_sub(t.comp[r]);
                    }
                    t.push_back(r, m, now);
                }
            }
            self.scratch_outbox = outbox;
            if !responses.is_empty() {
                self.record_responses(to, &mut responses);
            }
            self.scratch_resp = responses;
        } else {
            self.apply_effects(to, ctx);
        }
        self.sample_meter_for(to);
        self.cover_step(super::cover::kind::DELIVER, from, to);
        StepInfo::Delivered { from, to }
    }

    /// Takes one fair step: delivers from the next schedulable channel in
    /// round-robin order. Returns `None` when no channel is deliverable
    /// (quiescence among unblocked nodes).
    pub fn step_fair(&mut self) -> Option<StepInfo> {
        if self.blocked_count == 0 && self.cut_links.is_empty() {
            // Fault-free fast path: every non-empty row is deliverable, so
            // the round-robin pick selects from the nonempty set directly.
            let t = &*self.channels;
            let n = t.nonempty.len();
            if n == 0 {
                return None;
            }
            // Same `rr_cursor mod n` pick as the general path; the cursor
            // fits 32 bits for any execution the step limit admits, and a
            // 32-bit division is markedly cheaper.
            let k = match u32::try_from(self.rr_cursor) {
                Ok(rr) => rr % n,
                Err(_) => (self.rr_cursor % u64::from(n)) as u32,
            };
            let row = t.nonempty.select(k) as usize;
            self.rr_cursor += 1;
            return Some(self.deliver_row(row));
        }
        let mut options = std::mem::take(&mut self.scratch_options);
        self.fill_step_options(&mut options);
        let step = if options.is_empty() {
            None
        } else {
            let pick = options[(self.rr_cursor % options.len() as u64) as usize];
            self.rr_cursor += 1;
            Some(
                self.deliver_one(pick.0, pick.1)
                    .expect("step option is deliverable by construction"),
            )
        };
        self.scratch_options = options;
        step
    }

    /// Delivers the `idx`-th queued message of the `from → to` channel
    /// (0 = head) by rotating it to the front first — the adversarial
    /// reorder primitive. Only permitted when the configuration's
    /// [`crate::config::ChannelOrder`] is `Any`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sim::deliver_one`], plus
    /// [`RunError::NoSuchMessage`] when `idx` is out of range.
    ///
    /// # Panics
    ///
    /// Panics under the FIFO channel model with `idx > 0`.
    pub fn deliver_nth(
        &mut self,
        from: NodeId,
        to: NodeId,
        idx: usize,
    ) -> Result<StepInfo, RunError> {
        if idx > 0 {
            assert_eq!(
                self.config.channel_order,
                crate::config::ChannelOrder::Any,
                "out-of-order delivery requires ChannelOrder::Any"
            );
        }
        let row = self
            .channels
            .find((from, to))
            .ok_or(RunError::NoSuchMessage { from, to })?;
        if idx >= self.channels.len[row] as usize {
            return Err(RunError::NoSuchMessage { from, to });
        }
        if idx > 0 {
            // Rotate the chosen message to the head; FIFO order of the rest
            // is irrelevant under ChannelOrder::Any.
            self.mark_chan_dirty(row);
            Arc::make_mut(&mut self.channels).rotate_nth_to_front(row, idx);
        }
        self.deliver_one(from, to)
    }

    /// Takes one step chosen by the caller: the closure picks among
    /// `(channel, queue_len)` options and returns `(option index, message
    /// index)`. Under FIFO configurations the message index must be 0.
    ///
    /// Returns `None` when no step is available.
    pub fn step_with_reorder(
        &mut self,
        choose: impl FnOnce(&[((NodeId, NodeId), usize)]) -> (usize, usize),
    ) -> Option<StepInfo> {
        let mut options = std::mem::take(&mut self.scratch_weighted);
        options.clear();
        {
            let t = &*self.channels;
            for row in t.nonempty.iter() {
                let r = row as usize;
                if !t.cut[r]
                    && !self.blocked[t.src_slot[r] as usize]
                    && !self.blocked[t.dst_slot[r] as usize]
                {
                    options.push((t.keys[r], t.len[r] as usize));
                }
            }
        }
        let step = if options.is_empty() {
            None
        } else {
            let (oi, mi) = choose(&options);
            let ((from, to), len) = options[oi % options.len()];
            Some(
                self.deliver_nth(from, to, mi % len)
                    .expect("validated option is deliverable"),
            )
        };
        self.scratch_weighted = options;
        step
    }

    /// Takes one step chosen by the caller from [`Sim::step_options`] —
    /// used by seeded/adversarial schedulers.
    ///
    /// Returns `None` when no step is available.
    pub fn step_with(
        &mut self,
        choose: impl FnOnce(&[(NodeId, NodeId)]) -> usize,
    ) -> Option<StepInfo> {
        let mut options = std::mem::take(&mut self.scratch_options);
        self.fill_step_options(&mut options);
        let step = if options.is_empty() {
            None
        } else {
            let idx = choose(&options) % options.len();
            let pick = options[idx];
            Some(
                self.deliver_one(pick.0, pick.1)
                    .expect("step option is deliverable by construction"),
            )
        };
        self.scratch_options = options;
        step
    }

    /// Steps fairly until no message is deliverable. When metering is on,
    /// the conservation audit runs at the quiescent point — the always-on
    /// self-check for the metrics wiring.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the configured step budget runs out first.
    ///
    /// # Panics
    ///
    /// Panics if the metered message accounting fails its conservation law
    /// at quiescence (a simulator bug, never a legitimate execution).
    pub fn run_to_quiescence(&mut self) -> Result<u64, RunError> {
        let mut steps = 0;
        while self.step_fair().is_some() {
            steps += 1;
            if steps > self.config.step_limit {
                return Err(RunError::StepLimit {
                    steps: self.config.step_limit,
                });
            }
        }
        if let Err(e) = self.audit_conservation() {
            panic!("conservation audit failed at quiescence: {e}");
        }
        Ok(steps)
    }

    /// Steps fairly until the open operation at `client` completes, and
    /// returns its response.
    ///
    /// # Errors
    ///
    /// * [`RunError::NoOpenOperation`] if the client has no open operation.
    /// * [`RunError::Stuck`] if the system quiesces without the operation
    ///   completing (liveness failure — e.g. too many servers crashed).
    /// * [`RunError::StepLimit`] if the step budget runs out.
    pub fn run_until_op_completes(&mut self, client: ClientId) -> Result<P::Resp, RunError> {
        let op_idx = *self
            .open_ops
            .get(&client)
            .ok_or(RunError::NoOpenOperation { client })?;
        let mut steps = 0;
        while self.ops[op_idx].responded_at.is_none() {
            if self.step_fair().is_none() {
                return Err(RunError::Stuck { client });
            }
            steps += 1;
            if steps > self.config.step_limit {
                return Err(RunError::StepLimit {
                    steps: self.config.step_limit,
                });
            }
        }
        Ok(self.ops[op_idx]
            .response
            .clone()
            .expect("completed op has a response"))
    }

    /// Delivers every message currently queued on server-to-server channels
    /// (and any gossip those deliveries enqueue), until the gossip channels
    /// drain — the "channels between the servers act, delivering all their
    /// messages" prelude of Theorem 5.1's valency definition.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if gossip cascades past the step budget.
    pub fn flush_server_channels(&mut self) -> Result<u64, RunError> {
        let mut steps = 0;
        loop {
            // First deliverable server→server row in key order — the same
            // channel the old options-list `find` selected.
            let t = &*self.channels;
            let next = t.nonempty.iter().map(|row| row as usize).find(|&r| {
                let (from, to) = t.keys[r];
                from.is_server()
                    && to.is_server()
                    && !t.cut[r]
                    && !self.blocked[t.src_slot[r] as usize]
                    && !self.blocked[t.dst_slot[r] as usize]
            });
            match next {
                Some(row) => {
                    self.deliver_row(row);
                    steps += 1;
                    if steps > self.config.step_limit {
                        return Err(RunError::StepLimit {
                            steps: self.config.step_limit,
                        });
                    }
                }
                None => return Ok(steps),
            }
        }
    }

    pub(super) fn apply_effects(&mut self, origin: NodeId, ctx: Ctx<P>) {
        let (mut outbox, mut responses) = ctx.into_effects();
        if !outbox.is_empty() {
            let fast = self.send_log.is_none()
                && self.metrics_level == crate::metrics::MetricsLevel::Off
                && self.cut_links.is_empty();
            if fast {
                // No send log, no metrics ledger, no cut links: the whole
                // outbox drains under a single table unshare, with the
                // route table resolving each channel in one load.
                let src = self.node_slot(origin) as u32;
                let origin_is_server = origin.is_server();
                let gossip_ok = self.config.server_gossip;
                let nserv = self.servers.len() as u32;
                let nclients = self.clients.len() as u32;
                let now = self.now;
                let t = Arc::make_mut(&mut self.channels);
                for (to, msg) in outbox.drain(..) {
                    let dst = match to {
                        NodeId::Server(s) => {
                            if origin_is_server && !gossip_ok {
                                panic!(
                                    "protocol violated the no-gossip model: {origin} sent a \
                                     message to {to} but server_gossip is disabled"
                                );
                            }
                            assert!(s.0 < nserv, "message sent to unknown node {to}");
                            s.0
                        }
                        NodeId::Client(c) => {
                            assert!(c.0 < nclients, "message sent to unknown node {to}");
                            nserv + c.0
                        }
                    };
                    let row = match t.lookup(src, dst) {
                        Some(r) => r,
                        None => t.ensure((origin, to), src, dst, false),
                    };
                    if !t.dirty[row] {
                        t.dirty[row] = true;
                        self.digest_acc = self.digest_acc.wrapping_sub(t.comp[row]);
                    }
                    t.push_back(row, msg, now);
                }
            } else {
                for (to, msg) in outbox.drain(..) {
                    if origin.is_server() && to.is_server() && !self.config.server_gossip {
                        panic!(
                            "protocol violated the no-gossip model: {origin} sent a message to \
                             {to} but server_gossip is disabled"
                        );
                    }
                    self.validate_target(to);
                    if let Some(log) = &mut self.send_log {
                        Arc::make_mut(log).push(SendRecord {
                            step: self.now,
                            from: origin,
                            to,
                            msg: msg.clone(),
                        });
                    }
                    let src = self.node_slot(origin) as u32;
                    let dst = self.node_slot(to) as u32;
                    let cut = self.is_cut(origin, to);
                    let row = Arc::make_mut(&mut self.channels).ensure((origin, to), src, dst, cut);
                    self.mark_chan_dirty(row);
                    // Wire size is only charged when metered; computing it
                    // lazily keeps the off path free of the (potentially
                    // payload-walking) `msg_wire_bytes` call.
                    let wire_bytes = (self.metrics_level != crate::metrics::MetricsLevel::Off)
                        .then(|| P::msg_wire_bytes(&msg));
                    let depth = Arc::make_mut(&mut self.channels).push_back(row, msg, self.now);
                    if let (Some(m), Some(bytes)) = (self.metrics_mut(), wire_bytes) {
                        m.on_sent(origin, to, bytes, u64::from(depth));
                    }
                }
            }
        }
        self.scratch_outbox = outbox;
        if !responses.is_empty() {
            self.record_responses(origin, &mut responses);
        }
        self.scratch_resp = responses;
    }

    /// Books a client's operation responses into the op log.
    fn record_responses(&mut self, origin: NodeId, responses: &mut Vec<P::Resp>) {
        let client = origin
            .as_client()
            .expect("only clients produce operation responses");
        for resp in responses.drain(..) {
            let idx = self
                .open_ops
                .remove(&client)
                .expect("response produced with no open operation");
            let detections = if self.metrics_level != crate::metrics::MetricsLevel::Off {
                P::count_detections(&resp)
            } else {
                0
            };
            let ops = Arc::make_mut(&mut self.ops);
            ops[idx].responded_at = Some(self.now);
            ops[idx].response = Some(resp);
            let latency = self.now - self.ops[idx].invoked_at;
            if let Some(m) = self.metrics_mut() {
                m.on_op_completed(latency);
                if detections > 0 {
                    m.on_read_failed_detect(detections);
                }
            }
        }
    }

    fn validate_target(&self, to: NodeId) {
        let ok = match to {
            NodeId::Server(s) => (s.0 as usize) < self.servers.len(),
            NodeId::Client(c) => (c.0 as usize) < self.clients.len(),
        };
        assert!(ok, "message sent to unknown node {to}");
    }

    /// The message at the head of the `from → to` channel, if any — what
    /// the next [`Sim::deliver_one`] on that channel would deliver. Used by
    /// adversaries that withhold messages by content (e.g. the Section 6
    /// construction withholding value-dependent messages).
    pub fn peek_head(&self, from: NodeId, to: NodeId) -> Option<&P::Msg> {
        let t = &*self.channels;
        let row = t.find((from, to))?;
        let h = t.head[row];
        if h.is_nil() {
            None
        } else {
            Some(t.arena.get(h))
        }
    }

    /// Enables or disables the send log. While enabled, every message
    /// enqueued onto a channel is recorded with the step at which it was
    /// sent — the raw material for protocol-structure analyses such as the
    /// Assumption 3(b) phase check in `shmem-core`.
    pub fn record_sends(&mut self, on: bool) {
        if on {
            self.send_log.get_or_insert_with(Default::default);
        } else {
            self.send_log = None;
        }
    }

    /// The recorded sends (empty unless [`Sim::record_sends`] is on).
    pub fn send_log(&self) -> &[SendRecord<P::Msg>] {
        self.send_log.as_deref().map_or(&[], Vec::as_slice)
    }

    /// Messages currently queued from `from` to `to`.
    pub fn in_flight(&self, from: NodeId, to: NodeId) -> usize {
        self.channels
            .find((from, to))
            .map_or(0, |r| self.channels.len[r] as usize)
    }

    /// Total messages in flight anywhere.
    pub fn total_in_flight(&self) -> usize {
        self.channels.in_flight
    }
}
