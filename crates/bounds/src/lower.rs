//! The paper's storage-cost **lower bounds**.
//!
//! | Function family | Paper result | Scope |
//! |---|---|---|
//! | `singleton_*` | Theorem B.1 / Corollary B.2 | any regular SWSR algorithm |
//! | `no_gossip_*` | Theorem 4.1 / Corollary 4.2 | regular SWSR, no server-to-server messages, `f ≥ 2` |
//! | `universal_*` | Theorem 5.1 / Corollary 5.2 | regular SWSR, fully universal |
//! | `multi_version_*` | Theorem 6.5 / Corollary 6.6 | weakly-regular MWSR, single-value-phase writes (Assumptions 1–3) |
//!
//! Each family provides a normalized asymptotic form (`*_total`, `*_max`,
//! returning the exact [`Ratio`] coefficient of `log2 |V|`) and a
//! finite-`|V|` form in bits (`*_total_bits`, `*_max_bits`).

use crate::domain::ValueDomain;
use crate::params::SystemParams;
use crate::ratio::Ratio;
use crate::util::log2_u32;

// ---------------------------------------------------------------------------
// Theorem B.1 / Corollary B.2 — the Singleton-style baseline bound.
// ---------------------------------------------------------------------------

/// Corollary B.2, normalized: `TotalStorage / log2|V| ≥ N / (N − f)`.
///
/// ```
/// use shmem_bounds::{lower, Ratio, SystemParams};
/// let p = SystemParams::new(21, 10)?;
/// assert_eq!(lower::singleton_total(p), Ratio::new(21, 11));
/// # Ok::<(), shmem_bounds::ParamError>(())
/// ```
pub fn singleton_total(p: SystemParams) -> Ratio {
    Ratio::new(p.n() as i128, p.quorum() as i128)
}

/// Corollary B.2, normalized: `MaxStorage / log2|V| ≥ 1 / (N − f)`.
pub fn singleton_max(p: SystemParams) -> Ratio {
    Ratio::new(1, p.quorum() as i128)
}

/// Corollary B.2, exact bits: `TotalStorage ≥ N · log2|V| / (N − f)`.
pub fn singleton_total_bits(p: SystemParams, d: ValueDomain) -> f64 {
    p.n() as f64 * d.log2_card() / p.quorum() as f64
}

/// Corollary B.2, exact bits: `MaxStorage ≥ log2|V| / (N − f)`.
pub fn singleton_max_bits(p: SystemParams, d: ValueDomain) -> f64 {
    d.log2_card() / p.quorum() as f64
}

/// Theorem B.1, the subset constraint right-hand side: for every subset of
/// `N − f` servers, `Σ log2|S_n| ≥ log2 |V|`.
pub fn singleton_subset_rhs_bits(d: ValueDomain) -> f64 {
    d.log2_card()
}

// ---------------------------------------------------------------------------
// Theorem 4.1 / Corollary 4.2 — no server gossip.
// ---------------------------------------------------------------------------

/// Corollary 4.2, normalized: `TotalStorage / log2|V| ≥ 2N / (N − f + 1)`.
///
/// Requires no server-to-server channels and `f ≥ 2`
/// ([`SystemParams::supports_no_gossip_bound`]).
///
/// ```
/// use shmem_bounds::{lower, Ratio, SystemParams};
/// let p = SystemParams::new(21, 10)?;
/// assert_eq!(lower::no_gossip_total(p), Ratio::new(42, 12));
/// # Ok::<(), shmem_bounds::ParamError>(())
/// ```
pub fn no_gossip_total(p: SystemParams) -> Ratio {
    Ratio::new(2 * p.n() as i128, p.quorum() as i128 + 1)
}

/// Corollary 4.2, normalized: `MaxStorage / log2|V| ≥ 2 / (N − f + 1)`.
pub fn no_gossip_max(p: SystemParams) -> Ratio {
    Ratio::new(2, p.quorum() as i128 + 1)
}

/// Corollary 4.2, exact bits:
/// `TotalStorage ≥ N (log2|V| + log2(|V|−1) − log2(N−f)) / (N − f + 1)`.
///
/// The result is clamped at zero: for very small `|V|` the correction terms
/// can make the algebraic right-hand side negative, in which case the bound
/// is vacuous.
pub fn no_gossip_total_bits(p: SystemParams, d: ValueDomain) -> f64 {
    (p.n() as f64 * no_gossip_rhs_numerator(p, d) / (p.quorum() as f64 + 1.0)).max(0.0)
}

/// Corollary 4.2, exact bits:
/// `MaxStorage ≥ (log2|V| + log2(|V|−1) − log2(N−f)) / (N − f + 1)`, clamped
/// at zero.
pub fn no_gossip_max_bits(p: SystemParams, d: ValueDomain) -> f64 {
    (no_gossip_rhs_numerator(p, d) / (p.quorum() as f64 + 1.0)).max(0.0)
}

/// Theorem 4.1, the subset constraint right-hand side: for every subset `𝒩`
/// of `N − f` servers,
/// `Σ_{n∈𝒩} log2|S_n| + max_{n∈𝒩} log2|S_n| ≥` this value.
pub fn no_gossip_subset_rhs_bits(p: SystemParams, d: ValueDomain) -> f64 {
    no_gossip_rhs_numerator(p, d)
}

fn no_gossip_rhs_numerator(p: SystemParams, d: ValueDomain) -> f64 {
    d.log2_card() + d.log2_card_minus_one() - log2_u32(p.quorum())
}

// ---------------------------------------------------------------------------
// Theorem 5.1 / Corollary 5.2 — universal (gossip allowed).
// ---------------------------------------------------------------------------

/// Corollary 5.2, normalized: `TotalStorage / log2|V| ≥ 2N / (N − f + 2)`.
///
/// ```
/// use shmem_bounds::{lower, Ratio, SystemParams};
/// let p = SystemParams::new(21, 10)?;
/// assert_eq!(lower::universal_total(p), Ratio::new(42, 13));
/// # Ok::<(), shmem_bounds::ParamError>(())
/// ```
pub fn universal_total(p: SystemParams) -> Ratio {
    Ratio::new(2 * p.n() as i128, p.quorum() as i128 + 2)
}

/// Corollary 5.2, normalized: `MaxStorage / log2|V| ≥ 2 / (N − f + 2)`.
pub fn universal_max(p: SystemParams) -> Ratio {
    Ratio::new(2, p.quorum() as i128 + 2)
}

/// Corollary 5.2, exact bits:
/// `TotalStorage ≥ N (log2|V| + log2(|V|−1) − 2·log2(N−f)) / (N − f + 2)`,
/// clamped at zero.
pub fn universal_total_bits(p: SystemParams, d: ValueDomain) -> f64 {
    (p.n() as f64 * universal_rhs_numerator(p, d) / (p.quorum() as f64 + 2.0)).max(0.0)
}

/// Corollary 5.2, exact bits:
/// `MaxStorage ≥ (log2|V| + log2(|V|−1) − 2·log2(N−f)) / (N − f + 2)`,
/// clamped at zero.
pub fn universal_max_bits(p: SystemParams, d: ValueDomain) -> f64 {
    (universal_rhs_numerator(p, d) / (p.quorum() as f64 + 2.0)).max(0.0)
}

/// Theorem 5.1, the subset constraint right-hand side: for every subset `𝒩`
/// of `N − f` servers,
/// `Σ_{n∈𝒩} log2|S_n| + 2·max_{n∈𝒩} log2|S_n| ≥` this value.
pub fn universal_subset_rhs_bits(p: SystemParams, d: ValueDomain) -> f64 {
    universal_rhs_numerator(p, d)
}

fn universal_rhs_numerator(p: SystemParams, d: ValueDomain) -> f64 {
    d.log2_card() + d.log2_card_minus_one() - 2.0 * log2_u32(p.quorum())
}

// ---------------------------------------------------------------------------
// Theorem 6.5 / Corollary 6.6 — restricted write protocols, ν active writes.
// ---------------------------------------------------------------------------

/// Corollary 6.6, normalized:
/// `TotalStorage / log2|V| ≥ ν* N / (N − f + ν* − 1)` with
/// `ν* = min(ν, f + 1)`.
///
/// Returns [`Ratio::ZERO`] for `nu == 0` (no writes ⇒ vacuous bound).
///
/// ```
/// use shmem_bounds::{lower, Ratio, SystemParams};
/// let p = SystemParams::new(21, 10)?;
/// // ν = 3: 3·21 / (21 − 10 + 2) = 63/13.
/// assert_eq!(lower::multi_version_total(p, 3), Ratio::new(63, 13));
/// // ν ≥ f + 1 saturates at the replication cost f + 1 = 11.
/// assert_eq!(lower::multi_version_total(p, 11), Ratio::new(11, 1));
/// assert_eq!(lower::multi_version_total(p, 100), Ratio::new(11, 1));
/// # Ok::<(), shmem_bounds::ParamError>(())
/// ```
pub fn multi_version_total(p: SystemParams, nu: u32) -> Ratio {
    let ns = p.nu_star(nu);
    if ns == 0 {
        return Ratio::ZERO;
    }
    Ratio::new(
        ns as i128 * p.n() as i128,
        p.quorum() as i128 + ns as i128 - 1,
    )
}

/// Corollary 6.6, normalized:
/// `MaxStorage / log2|V| ≥ ν* / (N − f + ν* − 1)`.
pub fn multi_version_max(p: SystemParams, nu: u32) -> Ratio {
    let ns = p.nu_star(nu);
    if ns == 0 {
        return Ratio::ZERO;
    }
    Ratio::new(ns as i128, p.quorum() as i128 + ns as i128 - 1)
}

/// Theorem 6.5, the subset constraint right-hand side: for the subset `𝒩` of
/// the `min(N − f + ν − 1, N)` servers (see
/// [`multi_version_subset_size`]),
/// `Σ_{n∈𝒩} log2|S_n| ≥ log2 C(|V|−1, ν*) − ν*·log2(N−f+ν*−1) − log2(ν*!)`.
///
/// Clamped at zero (vacuous for tiny `|V|`).
pub fn multi_version_subset_rhs_bits(p: SystemParams, nu: u32, d: ValueDomain) -> f64 {
    let ns = p.nu_star(nu);
    if ns == 0 {
        return 0.0;
    }
    let denom_width = (p.quorum() + ns - 1) as f64;
    (d.log2_binomial_card_minus_one(ns)
        - ns as f64 * denom_width.log2()
        - crate::util::log2_factorial(ns))
    .max(0.0)
}

/// The size of the server subset Theorem 6.5's constraint applies to:
/// `min(N − f + ν − 1, N)`.
pub fn multi_version_subset_size(p: SystemParams, nu: u32) -> u32 {
    (p.quorum() + nu.saturating_sub(1)).min(p.n())
}

/// Corollary 6.6, exact bits: total-storage form derived from the subset
/// constraint by the paper's sorting argument (as in the proofs of
/// Corollaries 4.2 and B.2):
/// `TotalStorage ≥ N · RHS / (N − f + ν* − 1)`.
pub fn multi_version_total_bits(p: SystemParams, nu: u32, d: ValueDomain) -> f64 {
    let ns = p.nu_star(nu);
    if ns == 0 {
        return 0.0;
    }
    let width = (p.quorum() + ns - 1) as f64;
    p.n() as f64 * multi_version_subset_rhs_bits(p, nu, d) / width
}

/// Corollary 6.6, exact bits: max-storage form,
/// `MaxStorage ≥ RHS / (N − f + ν* − 1)`.
pub fn multi_version_max_bits(p: SystemParams, nu: u32, d: ValueDomain) -> f64 {
    let ns = p.nu_star(nu);
    if ns == 0 {
        return 0.0;
    }
    let width = (p.quorum() + ns - 1) as f64;
    multi_version_subset_rhs_bits(p, nu, d) / width
}

/// The strongest normalized total-storage lower bound applicable to an
/// algorithm class, given whether it gossips and (for restricted-write-
/// protocol algorithms) the active-write budget:
/// `max(B.1, 4.1-or-5.1, optionally 6.5)`.
pub fn best_total(p: SystemParams, gossip: bool, restricted_writes: Option<u32>) -> Ratio {
    let mut best = singleton_total(p);
    let two_phase = if gossip || !p.supports_no_gossip_bound() {
        universal_total(p)
    } else {
        no_gossip_total(p)
    };
    best = best.max(two_phase);
    if let Some(nu) = restricted_writes {
        best = best.max(multi_version_total(p, nu));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> SystemParams {
        SystemParams::new(21, 10).unwrap()
    }

    fn huge() -> ValueDomain {
        ValueDomain::from_bits(4096)
    }

    #[test]
    fn figure1_singleton_value() {
        assert_eq!(singleton_total(fig1()), Ratio::new(21, 11));
        assert_eq!(singleton_max(fig1()), Ratio::new(1, 11));
    }

    #[test]
    fn figure1_no_gossip_value() {
        assert_eq!(no_gossip_total(fig1()), Ratio::new(7, 2)); // 42/12
        assert_eq!(no_gossip_max(fig1()), Ratio::new(1, 6)); // 2/12
    }

    #[test]
    fn figure1_universal_value() {
        assert_eq!(universal_total(fig1()), Ratio::new(42, 13));
        assert_eq!(universal_max(fig1()), Ratio::new(2, 13));
    }

    #[test]
    fn figure1_multi_version_series() {
        let p = fig1();
        // The Theorem 6.5 series from Figure 1: ν*N/(N−f+ν*−1).
        let expect = [
            (1, Ratio::new(21, 11)),
            (2, Ratio::new(42, 12)),
            (3, Ratio::new(63, 13)),
            (5, Ratio::new(105, 15)), // = 7
            (11, Ratio::new(11, 1)),
            (16, Ratio::new(11, 1)), // saturated at f+1
        ];
        for (nu, want) in expect {
            assert_eq!(multi_version_total(p, nu), want, "nu={nu}");
        }
    }

    #[test]
    fn multi_version_nu1_equals_singleton() {
        // At ν = 1 Theorem 6.5 degenerates to N/(N−f), matching B.1.
        for (n, f) in [(5, 2), (21, 10), (7, 3), (100, 49)] {
            let p = SystemParams::new(n, f).unwrap();
            assert_eq!(multi_version_total(p, 1), singleton_total(p));
        }
    }

    #[test]
    fn universal_is_about_twice_singleton_for_large_n() {
        // Section 2.2: with f fixed and N → ∞ the new bound tends to twice
        // the old one.
        let f = 10;
        let p = SystemParams::new(10_000, f).unwrap();
        let ratio = (universal_total(p) / singleton_total(p)).to_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn no_gossip_dominates_universal() {
        // N−f+1 < N−f+2 so the no-gossip bound is always at least the
        // universal one (a smaller algorithm class gives a stronger bound).
        for (n, f) in [(5, 2), (21, 10), (9, 4), (33, 16)] {
            let p = SystemParams::new(n, f).unwrap();
            assert!(no_gossip_total(p) > universal_total(p));
        }
    }

    #[test]
    fn multi_version_saturates_at_replication() {
        let p = fig1();
        // ν* = f+1 ⇒ denominator N−f+f+1−1 = N ⇒ bound = f+1.
        assert_eq!(multi_version_total(p, p.f() + 1), Ratio::from(p.f() + 1));
        assert_eq!(multi_version_total(p, 10 * p.n()), Ratio::from(p.f() + 1));
    }

    #[test]
    fn multi_version_zero_writes_is_vacuous() {
        assert_eq!(multi_version_total(fig1(), 0), Ratio::ZERO);
        assert_eq!(multi_version_max(fig1(), 0), Ratio::ZERO);
        assert_eq!(multi_version_total_bits(fig1(), 0, huge()), 0.0);
    }

    #[test]
    fn finite_v_bits_converge_to_normalized() {
        let p = fig1();
        let d = huge();
        let per_bit = |bits: f64| bits / d.log2_card();
        assert!((per_bit(singleton_total_bits(p, d)) - singleton_total(p).to_f64()).abs() < 1e-2);
        assert!((per_bit(no_gossip_total_bits(p, d)) - no_gossip_total(p).to_f64()).abs() < 1e-2);
        assert!((per_bit(universal_total_bits(p, d)) - universal_total(p).to_f64()).abs() < 1e-2);
        // The 6.5 correction terms are O(nu log nu + nu log N) bits, so use a
        // wider domain for its convergence check.
        let dw = ValueDomain::from_bits(1 << 16);
        let per_bit_w = |bits: f64| bits / dw.log2_card();
        for nu in 1..=16 {
            assert!(
                (per_bit_w(multi_version_total_bits(p, nu, dw))
                    - multi_version_total(p, nu).to_f64())
                .abs()
                    < 2e-3,
                "nu={nu}"
            );
        }
    }

    #[test]
    fn finite_v_bits_never_exceed_normalized_times_log_v() {
        // The finite-|V| forms subtract positive correction terms, so they
        // must sit below the asymptotic slope.
        let p = fig1();
        for bits in [8u32, 16, 64, 512] {
            let d = ValueDomain::from_bits(bits);
            let l = d.log2_card();
            assert!(no_gossip_total_bits(p, d) <= no_gossip_total(p).to_f64() * l + 1e-9);
            assert!(universal_total_bits(p, d) <= universal_total(p).to_f64() * l + 1e-9);
            for nu in 1..=13 {
                assert!(
                    multi_version_total_bits(p, nu, d)
                        <= multi_version_total(p, nu).to_f64() * l + 1e-9
                );
            }
        }
    }

    #[test]
    fn tiny_domain_bounds_clamped_nonnegative() {
        let p = SystemParams::new(5, 2).unwrap();
        let d = ValueDomain::from_cardinality(2).unwrap();
        assert!(no_gossip_total_bits(p, d) >= 0.0);
        assert!(universal_total_bits(p, d) >= 0.0);
        assert!(multi_version_total_bits(p, 3, d) >= 0.0);
    }

    #[test]
    fn subset_size_for_theorem_6_5() {
        let p = fig1();
        assert_eq!(multi_version_subset_size(p, 1), 11);
        assert_eq!(multi_version_subset_size(p, 3), 13);
        assert_eq!(multi_version_subset_size(p, 11), 21);
        assert_eq!(multi_version_subset_size(p, 50), 21); // capped at N
    }

    #[test]
    fn best_total_picks_strongest_applicable() {
        let p = fig1();
        // Gossiping two-phase algorithm: universal bound wins over B.1.
        assert_eq!(best_total(p, true, None), universal_total(p));
        // Non-gossiping: Theorem 4.1 applies and is stronger.
        assert_eq!(best_total(p, false, None), no_gossip_total(p));
        // Restricted writes with high concurrency: Theorem 6.5 dominates.
        assert_eq!(best_total(p, true, Some(12)), Ratio::from(11u32));
        // f = 1 excludes Theorem 4.1 even without gossip.
        let p1 = SystemParams::new(5, 1).unwrap();
        assert_eq!(best_total(p1, false, None), universal_total(p1));
    }

    #[test]
    fn monotonicity_in_nu() {
        let p = fig1();
        let mut prev = Ratio::ZERO;
        for nu in 0..=30 {
            let b = multi_version_total(p, nu);
            assert!(b >= prev, "bound must be nondecreasing in nu");
            prev = b;
        }
    }

    #[test]
    fn max_bounds_scale_total_by_n() {
        let p = fig1();
        let n = Ratio::from(p.n());
        assert_eq!(singleton_max(p) * n, singleton_total(p));
        assert_eq!(no_gossip_max(p) * n, no_gossip_total(p));
        assert_eq!(universal_max(p) * n, universal_total(p));
        assert_eq!(multi_version_max(p, 4) * n, multi_version_total(p, 4));
    }
}
