//! Benchmarks for the analytic bound formulas (E1/E2 regeneration cost).

use shmem_bench::fig1::paper_figure1;
use shmem_bounds::{catalogue, lower, SystemParams, ValueDomain};
use shmem_util::bench::{black_box, Criterion};
use shmem_util::{criterion_group, criterion_main};

fn bench_bounds(c: &mut Criterion) {
    let p = SystemParams::new(21, 10).unwrap();
    let d = ValueDomain::from_bits(4096);

    c.bench_function("bounds/figure1_full", |b| {
        b.iter(|| black_box(paper_figure1()))
    });

    c.bench_function("bounds/catalogue_eval", |b| {
        b.iter(|| black_box(catalogue::evaluate_all(p, black_box(6))))
    });

    c.bench_function("bounds/finite_v_corollaries", |b| {
        b.iter(|| {
            black_box((
                lower::singleton_total_bits(p, d),
                lower::no_gossip_total_bits(p, d),
                lower::universal_total_bits(p, d),
                lower::multi_version_total_bits(p, black_box(6), d),
            ))
        })
    });

    c.bench_function("bounds/multi_version_sweep_1000", |b| {
        b.iter(|| {
            let mut acc = 0f64;
            for nu in 1..=1000u32 {
                acc += lower::multi_version_total(p, nu).to_f64();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
