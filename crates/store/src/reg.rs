//! The lock-free replicated-register store behind [`AbdBackend`].
//!
//! One [`AtomicMap`] cell per key, holding a single atomic pointer to the
//! current immutable `(tag, value)` version. `store_if_newer` is a
//! tag-ordered compare-and-bump: racing writers CAS the pointer and the
//! loser re-reads, so concurrent stores always resolve to the maximum
//! MWMR tag — the same merge the sequential reference performs, made
//! atomic. Displaced versions are retired through the epoch collector and
//! freed two epochs later, after every reader that could hold them has
//! unpinned.

use crate::epoch::{Collector, Handle};
use crate::map::AtomicMap;
use shmem_algorithms::backend::AbdBackend;
use shmem_algorithms::multikey::Key;
use shmem_algorithms::tag::Tag;
use shmem_algorithms::value::Value;
use shmem_sim::hash_of;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// An immutable published version. Carries the store's live-allocation
/// counter so the leak tests can assert every displaced version is freed.
pub(crate) struct RegVersion {
    tag: Tag,
    value: Value,
    live: Arc<AtomicUsize>,
}

impl RegVersion {
    fn new(tag: Tag, value: Value, live: &Arc<AtomicUsize>) -> RegVersion {
        live.fetch_add(1, SeqCst);
        RegVersion {
            tag,
            value,
            live: Arc::clone(live),
        }
    }
}

impl Drop for RegVersion {
    fn drop(&mut self) {
        self.live.fetch_sub(1, SeqCst);
    }
}

/// Per-key cell: the current version, or null while unmaterialized
/// (logically `(Tag::ZERO, initial)`).
pub(crate) struct RegCell {
    cur: AtomicPtr<RegVersion>,
}

impl RegCell {
    fn empty() -> RegCell {
        RegCell {
            cur: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// The shared register store: one process-wide instance per emulated
/// server, accessed by any number of threads through [`RegHandle`]s.
pub struct RegStore {
    map: AtomicMap<RegCell>,
    collector: Collector,
    live: Arc<AtomicUsize>,
}

impl Default for RegStore {
    fn default() -> RegStore {
        RegStore::new()
    }
}

impl RegStore {
    /// An empty store (every key at its initial value).
    pub fn new() -> RegStore {
        RegStore {
            // Sized (with the map's 2x slot headroom) so 16k keys fit
            // in the first table at half load — comfortably above the
            // benchmark and emulation keyspaces, at 512 KiB of slot
            // metadata.
            map: AtomicMap::with_capacity(16 * 1024),
            collector: Collector::new(),
            live: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Registers an accessing thread.
    pub fn handle(self: &Arc<RegStore>) -> RegHandle {
        RegHandle {
            epoch: self.collector.register(),
            store: Arc::clone(self),
        }
    }

    /// The store's reclamation domain (for epoch assertions in tests).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Currently allocated (published, not yet freed) versions.
    pub fn live_versions(&self) -> usize {
        self.live.load(SeqCst)
    }
}

impl Drop for RegStore {
    fn drop(&mut self) {
        // Exclusive access: free the current version of every cell. The
        // map then frees the cells, the collector whatever was deferred.
        self.map.for_each(|_, cell| {
            let p = cell.cur.swap(std::ptr::null_mut(), SeqCst);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        });
    }
}

/// One thread's handle onto a [`RegStore`]. `Send`, not `Sync`.
pub struct RegHandle {
    store: Arc<RegStore>,
    epoch: Handle,
}

impl RegHandle {
    /// The current `(tag, value)` for `key`, if materialized.
    pub fn load(&self, key: Key) -> Option<(Tag, Value)> {
        let _guard = self.epoch.enter();
        let cell = self.store.map.get(key)?;
        let p = cell.cur.load(SeqCst);
        if p.is_null() {
            return None;
        }
        // Safe: pinned, so a concurrently displaced version outlives us.
        let v = unsafe { &*p };
        Some((v.tag, v.value))
    }

    /// Tag-ordered compare-and-bump: publishes `(tag, value)` iff `tag`
    /// exceeds the key's current tag (absent = `Tag::ZERO`). Concurrent
    /// racers resolve to the maximum tag. Returns whether this call won.
    pub fn store_if_newer(&self, key: Key, tag: Tag, value: Value) -> bool {
        let _guard = self.epoch.enter();
        let cell = self.store.map.get_or_insert(key, RegCell::empty);
        let mut new: Option<*mut RegVersion> = None;
        loop {
            let p = cell.cur.load(SeqCst);
            let cur_tag = if p.is_null() {
                Tag::ZERO
            } else {
                unsafe { &*p }.tag
            };
            if tag <= cur_tag {
                // Lost to an equal-or-newer version; drop the unpublished
                // allocation, if any.
                if let Some(n) = new {
                    drop(unsafe { Box::from_raw(n) });
                }
                return false;
            }
            let n = *new.get_or_insert_with(|| {
                Box::into_raw(Box::new(RegVersion::new(tag, value, &self.store.live)))
            });
            match cell.cur.compare_exchange(p, n, SeqCst, SeqCst) {
                Ok(_) => {
                    if !p.is_null() {
                        self.epoch.retire(unsafe { Box::from_raw(p) });
                    }
                    return true;
                }
                Err(_) => continue, // re-read the winner's tag
            }
        }
    }

    /// Number of keys with materialized state.
    pub fn keys_held(&self) -> usize {
        let _guard = self.epoch.enter();
        let mut n = 0;
        self.store
            .map
            .for_each(|_, cell| n += usize::from(!cell.cur.load(SeqCst).is_null()));
        n
    }

    /// A point-in-time snapshot (canonical key order). Byte-identical to
    /// the sequential reference's map once quiescent.
    pub fn snapshot(&self) -> BTreeMap<Key, (Tag, Value)> {
        let _guard = self.epoch.enter();
        let mut out = BTreeMap::new();
        self.store.map.for_each(|key, cell| {
            let p = cell.cur.load(SeqCst);
            if !p.is_null() {
                let v = unsafe { &*p };
                out.insert(key, (v.tag, v.value));
            }
        });
        out
    }

    /// Drains this handle's deferred frees as far as the epoch allows.
    pub fn collect(&self) {
        self.epoch.collect();
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<RegStore> {
        &self.store
    }
}

impl Clone for RegHandle {
    /// A clone is a *sibling*: same shared store, fresh epoch handle.
    fn clone(&self) -> RegHandle {
        self.store.handle()
    }
}

/// [`AbdBackend`] over the shared store: plugs into
/// `ShardedAbdServerOn<StoreAbdBackend>` so the unchanged ABD automaton
/// runs against lock-free shared state.
pub struct StoreAbdBackend {
    handle: RegHandle,
}

impl StoreAbdBackend {
    /// A backend over a fresh private store.
    pub fn new() -> StoreAbdBackend {
        StoreAbdBackend {
            handle: Arc::new(RegStore::new()).handle(),
        }
    }

    /// A backend sharing `store` (one per accessing thread).
    pub fn shared(store: &Arc<RegStore>) -> StoreAbdBackend {
        StoreAbdBackend {
            handle: store.handle(),
        }
    }

    /// The underlying handle.
    pub fn handle(&self) -> &RegHandle {
        &self.handle
    }
}

impl Default for StoreAbdBackend {
    fn default() -> StoreAbdBackend {
        StoreAbdBackend::new()
    }
}

impl Clone for StoreAbdBackend {
    fn clone(&self) -> StoreAbdBackend {
        StoreAbdBackend {
            handle: self.handle.clone(),
        }
    }
}

impl std::fmt::Debug for StoreAbdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreAbdBackend")
            .field("keys_held", &self.handle.keys_held())
            .finish()
    }
}

impl AbdBackend for StoreAbdBackend {
    fn load(&self, key: Key) -> Option<(Tag, Value)> {
        self.handle.load(key)
    }

    fn store_if_newer(&mut self, key: Key, tag: Tag, value: Value) -> bool {
        self.handle.store_if_newer(key, tag, value)
    }

    fn keys_held(&self) -> usize {
        self.handle.keys_held()
    }

    fn digest_with(&self, initial: Value) -> u64 {
        // Hashing an owned snapshot produces the same bytes as the
        // reference hashing its in-struct map.
        hash_of(&(initial, &self.handle.snapshot()))
    }
}
