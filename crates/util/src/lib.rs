//! Dependency-free utility substrate for the workspace.
//!
//! The build environment is fully offline, so everything the repo needs
//! beyond the standard library lives here:
//!
//! * [`rng`] — a small, fast, seedable deterministic PRNG ([`rng::DetRng`],
//!   SplitMix64) used for seeded adversarial schedules and randomized
//!   tests. Determinism across platforms and runs is a hard requirement for
//!   the proof machinery (probe verdicts are memoized by digest).
//! * [`prop`] — a miniature property-testing harness with a
//!   `proptest!`-compatible macro surface (strategies over ranges, vectors,
//!   tuples, `prop_map`/`prop_flat_map`, `Just`, weighted booleans).
//! * [`bench`] — a miniature benchmarking harness with a
//!   criterion-compatible macro surface (`criterion_group!`,
//!   `criterion_main!`, `Criterion::bench_function`, groups, throughput).
//! * [`json`] — a tiny JSON emitter and parser for the table/figure
//!   exporters and the nemesis counterexample corpus.
//! * [`cli`] — a tiny clap-style argument parser for the workspace
//!   binaries (`--key value` options, flags, `--help`).
//! * [`shrink`] — counterexample minimization (ddmin delta debugging and
//!   scalar shrinking), the shrinking hook the property harness itself
//!   omits.
//! * [`tamper`] — the canonical corruption-adversary byte tamper, defined
//!   once so the simulator, the lock-free store, and the network layer
//!   corrupt payloads byte-identically.

pub mod bench;
pub mod cli;
pub mod json;
pub mod prop;
pub mod rng;
pub mod shrink;
pub mod tamper;

pub use rng::DetRng;
pub use tamper::{tamper_bytes, tamper_mix, tamper_value};
