//! Epoch-based memory reclamation for the lock-free store.
//!
//! Hand-rolled (the workspace is dependency-free) but following the
//! classic three-epoch scheme used by the mw-cas / chamt reclamation
//! idiom (SNIPPETS.md Snippet 2): readers *pin* the global epoch for the
//! duration of a lock-free read, writers *retire* unlinked allocations
//! into a per-handle deferred list stamped with the epoch at unlink time,
//! and a retired allocation is freed only once the global epoch has
//! advanced **two** steps past its stamp.
//!
//! Safety argument, informally: an allocation retired at epoch `g` was
//! unlinked from the shared structure *before* being retired, so only a
//! reader already pinned at the time of the unlink can still hold a
//! reference to it — and that reader's pin epoch is at most `g`. The
//! global epoch advances `g → g+1` only when every pinned participant is
//! pinned at `g`, and `g+1 → g+2` only when every pinned participant is
//! pinned at `g+1`; by then every pin from epoch `≤ g` has been dropped.
//! Hence at `global ≥ g+2` no live guard can reach the retired
//! allocation and freeing it is sound. All orderings are `SeqCst`; the
//! store's throughput comes from per-operation cheapness, not from
//! relaxed-ordering heroics. The one deliberate optimisation is the
//! *standing pin* ([`Handle::enter`]): per-operation hot paths keep the
//! slot continuously published and refresh it only every
//! [`REFRESH_EVERY`] entries, so the store-load publish fence — the
//! dominant per-op cost of classic epoch pinning — is amortised away.
//! A stale standing pin can only *delay* reclamation (the epoch stalls
//! until the refresh), never admit a use-after-free: safety needs the
//! slot published before any dereference, and a standing slot is
//! published at all times.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, Weak};

/// Anything retirable. The blanket impl makes every `Send` payload
/// retirable; "reclaiming" is simply dropping the box once safe.
pub trait Reclaim: Send {}
impl<T: Send> Reclaim for T {}

type Garbage = (u64, Box<dyn Reclaim>);

/// A participant's pin state: 0 = unpinned, `e + 1` = pinned at epoch `e`.
struct ParticipantSlot {
    pinned: AtomicU64,
}

struct CollectorInner {
    /// The global epoch. Monotonic; advances by 1.
    global: AtomicU64,
    /// Pin slots of all live handles (dead ones pruned lazily).
    slots: Mutex<Vec<Weak<ParticipantSlot>>>,
    /// Garbage whose owning handle exited before it became freeable.
    orphan: Mutex<Vec<Garbage>>,
    /// Retired-but-not-yet-freed allocations (across all handles).
    deferred: AtomicU64,
    /// Allocations freed so far.
    reclaimed: AtomicU64,
}

/// The shared reclamation domain of one store. Cheap to clone.
#[derive(Clone)]
pub struct Collector {
    inner: Arc<CollectorInner>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// A fresh domain at epoch 0.
    pub fn new() -> Collector {
        Collector {
            inner: Arc::new(CollectorInner {
                global: AtomicU64::new(0),
                slots: Mutex::new(Vec::new()),
                orphan: Mutex::new(Vec::new()),
                deferred: AtomicU64::new(0),
                reclaimed: AtomicU64::new(0),
            }),
        }
    }

    /// Registers a new participant (one per accessing thread).
    pub fn register(&self) -> Handle {
        let slot = Arc::new(ParticipantSlot {
            pinned: AtomicU64::new(0),
        });
        self.inner.slots.lock().unwrap().push(Arc::downgrade(&slot));
        Handle {
            inner: Arc::clone(&self.inner),
            slot,
            garbage: RefCell::new(Vec::new()),
            ops: Cell::new(0),
            standing: Cell::new(0),
            since_refresh: Cell::new(0),
            active_guards: Cell::new(0),
        }
    }

    /// Retired allocations not yet freed.
    pub fn deferred(&self) -> u64 {
        self.inner.deferred.load(SeqCst)
    }

    /// Allocations freed so far.
    pub fn reclaimed(&self) -> u64 {
        self.inner.reclaimed.load(SeqCst)
    }

    /// The current global epoch (for tests).
    pub fn epoch(&self) -> u64 {
        self.inner.global.load(SeqCst)
    }

    /// Drains the orphan list as far as the epoch allows, advancing it if
    /// possible. At quiescence (no pinned participants), repeated calls
    /// drain everything: each call advances the epoch by one and frees
    /// what became stale, so three calls always suffice.
    pub fn flush(&self) {
        for _ in 0..3 {
            self.inner.try_advance();
            self.inner.collect_orphans();
        }
    }
}

impl CollectorInner {
    /// Advances the global epoch iff every pinned participant is pinned
    /// at the current epoch. Returns the (possibly new) epoch.
    ///
    /// Non-blocking: if another participant is already scanning the
    /// slot list, skip — their scan is the progress we wanted, and
    /// waiting here would let one preempted mutex holder stall every
    /// writer's periodic collect for a scheduler quantum.
    fn try_advance(&self) -> u64 {
        let global = self.global.load(SeqCst);
        {
            let Ok(mut slots) = self.slots.try_lock() else {
                return global;
            };
            let mut all_current = true;
            slots.retain(|w| match w.upgrade() {
                Some(slot) => {
                    let p = slot.pinned.load(SeqCst);
                    if p != 0 && p != global + 1 {
                        all_current = false;
                    }
                    true
                }
                None => false,
            });
            if !all_current {
                return global;
            }
        }
        // A lost race just means someone else advanced; that is progress
        // too, and the caller re-reads the epoch anyway.
        let _ = self
            .global
            .compare_exchange(global, global + 1, SeqCst, SeqCst);
        self.global.load(SeqCst)
    }

    /// Frees every garbage item (in `list`) stamped two or more epochs
    /// behind `global`, for a list whose stamps are non-decreasing (a
    /// per-handle deferred list: stamps are read from the monotone
    /// global at retire time). The freeable set is then a prefix, so a
    /// fruitless call — the common case while a descheduled sibling
    /// stalls the epoch and the list grows — costs `O(log len)`, not a
    /// full scan. A linear `retain` here is quadratic over a scheduler
    /// quantum on loaded machines and collapses write throughput.
    fn collect_sorted(&self, list: &mut Vec<Garbage>, global: u64) {
        debug_assert!(list.windows(2).all(|w| w[0].0 <= w[1].0));
        let freeable = list.partition_point(|&(stamp, _)| stamp + 2 <= global);
        if freeable > 0 {
            list.drain(..freeable);
            self.deferred.fetch_sub(freeable as u64, SeqCst);
            self.reclaimed.fetch_add(freeable as u64, SeqCst);
        }
    }

    /// [`CollectorInner::collect_sorted`] for lists with no stamp order
    /// (the orphan list interleaves chunks from differently-aged
    /// handles). Rare path: only `flush` and post-orphaning collects
    /// land here.
    fn collect_list(&self, list: &mut Vec<Garbage>, global: u64) {
        let before = list.len();
        list.retain(|&(stamp, _)| stamp + 2 > global);
        let freed = (before - list.len()) as u64;
        if freed > 0 {
            self.deferred.fetch_sub(freed, SeqCst);
            self.reclaimed.fetch_add(freed, SeqCst);
        }
    }

    /// Non-blocking for the same reason as [`CollectorInner::try_advance`];
    /// orphans skipped here drain on the next collect or flush.
    fn collect_orphans(&self) {
        let global = self.global.load(SeqCst);
        if let Ok(mut orphan) = self.orphan.try_lock() {
            self.collect_list(&mut orphan, global);
        }
    }
}

impl Drop for CollectorInner {
    fn drop(&mut self) {
        // Last reference: no handles, no guards. Everything still
        // deferred is unreachable and safe to drop with the orphan Vec.
        let orphan = self.orphan.get_mut().unwrap();
        let n = orphan.len() as u64;
        self.deferred.fetch_sub(n, SeqCst);
        self.reclaimed.fetch_add(n, SeqCst);
    }
}

/// One thread's participation in a [`Collector`]. `Send` but not `Sync`:
/// each accessing thread registers its own handle.
pub struct Handle {
    inner: Arc<CollectorInner>,
    slot: Arc<ParticipantSlot>,
    garbage: RefCell<Vec<Garbage>>,
    /// Operations since the last advance/collect attempt.
    ops: Cell<u64>,
    /// Standing-pin state for [`Handle::enter`]: the value currently
    /// published in the slot (0 = slot not standing-pinned).
    standing: Cell<u64>,
    /// [`Handle::enter`] calls since the standing pin was last refreshed.
    since_refresh: Cell<u64>,
    /// Live guards on this handle (eager and standing alike).
    active_guards: Cell<u32>,
}

/// Try to advance the epoch every this many retires.
const ADVANCE_EVERY: u64 = 32;

/// Refresh a standing pin ([`Handle::enter`]) to the current epoch every
/// this many entries. Larger = cheaper hot path, slower reclamation
/// convergence (garbage lingers at most one refresh interval longer).
const REFRESH_EVERY: u64 = 128;

impl Handle {
    /// Pins the current epoch for the guard's lifetime. Lock-free reads
    /// of store pointers are valid only under a live guard.
    ///
    /// This is the *eager* pin: the slot publishes on entry and clears on
    /// the (outermost) guard drop, so a dropped guard immediately stops
    /// blocking reclamation. Per-operation hot paths should prefer
    /// [`Handle::enter`], which amortises the publish fence.
    ///
    /// Nesting under a live guard (from `pin` or `enter`) is allowed:
    /// the inner pin reuses the already-published slot rather than
    /// republishing it. Republishing would move the slot forward to the
    /// current epoch, letting the collector advance two past the outer
    /// guard's pin epoch and free versions that guard still
    /// dereferences.
    pub fn pin(&self) -> Guard<'_> {
        if self.active_guards.get() == 0 {
            self.publish();
        }
        self.active_guards.set(self.active_guards.get() + 1);
        Guard {
            handle: self,
            eager: true,
        }
    }

    /// Pins like [`Handle::pin`], but *keeps the slot published* after
    /// the guard drops (a "standing" pin) so the next `enter` is a
    /// couple of unsynchronised counter bumps instead of a store-load
    /// fence. The standing pin is refreshed to the current epoch every
    /// [`REFRESH_EVERY`] entries and released by [`Handle::collect`] at
    /// quiescence; in between it merely *delays* reclamation (the epoch
    /// cannot advance past a stale standing pin), never unsafely — the
    /// slot is continuously published, so no collector can free a
    /// version this handle might still dereference.
    pub fn enter(&self) -> Guard<'_> {
        let n = self.since_refresh.get() + 1;
        self.since_refresh.set(n);
        // Refresh only with no guard live: re-publishing while a guard
        // holds references is fine for *this* overwrite-in-place scheme,
        // but releasing in `collect` is not, and one rule is simpler.
        if self.standing.get() == 0 || (n >= REFRESH_EVERY && self.active_guards.get() == 0) {
            self.publish();
            self.since_refresh.set(0);
        }
        self.active_guards.set(self.active_guards.get() + 1);
        Guard {
            handle: self,
            eager: false,
        }
    }

    /// Publishes the slot at the current epoch with the full
    /// store-then-recheck fence: if the epoch moved between the read and
    /// the store we re-pin at the newer epoch, so an advancing collector
    /// can never miss this participant.
    fn publish(&self) {
        loop {
            let e = self.inner.global.load(SeqCst);
            self.slot.pinned.store(e + 1, SeqCst);
            if self.inner.global.load(SeqCst) == e {
                self.standing.set(e + 1);
                return;
            }
        }
    }

    /// Defers dropping `garbage` until two epochs from now. The caller
    /// must have already unlinked it from the shared structure.
    pub fn retire(&self, garbage: Box<dyn Reclaim>) {
        let stamp = self.inner.global.load(SeqCst);
        self.garbage.borrow_mut().push((stamp, garbage));
        self.inner.deferred.fetch_add(1, SeqCst);
        let ops = self.ops.get() + 1;
        self.ops.set(ops);
        if ops.is_multiple_of(ADVANCE_EVERY) {
            self.collect();
        }
    }

    /// Tries to advance the epoch and frees whatever became stale in this
    /// handle's deferred list. If this handle holds a standing pin with
    /// no live guard, the pin is released first so the handle's own
    /// (possibly stale) pin cannot stall the advance it is asking for.
    pub fn collect(&self) {
        if self.active_guards.get() == 0 && self.standing.get() != 0 {
            self.slot.pinned.store(0, SeqCst);
            self.standing.set(0);
        }
        let global = self.inner.try_advance();
        self.inner
            .collect_sorted(&mut self.garbage.borrow_mut(), global);
        self.inner.collect_orphans();
    }

    /// The owning collector (to register sibling handles).
    pub fn collector(&self) -> Collector {
        Collector {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        // This handle can no longer advance its garbage; hand it to the
        // collector so surviving handles (or teardown) free it.
        let mut garbage = self.garbage.borrow_mut();
        self.inner.orphan.lock().unwrap().append(&mut garbage);
        self.slot.pinned.store(0, SeqCst);
    }
}

/// An active pin. Dropping an eager guard ([`Handle::pin`]) unpins the
/// slot once no guard remains; dropping a standing guard
/// ([`Handle::enter`]) leaves the slot published for the next entry.
pub struct Guard<'a> {
    handle: &'a Handle,
    eager: bool,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let remaining = self.handle.active_guards.get() - 1;
        self.handle.active_guards.set(remaining);
        if self.eager && remaining == 0 {
            self.handle.slot.pinned.store(0, SeqCst);
            self.handle.standing.set(0);
        }
    }
}
