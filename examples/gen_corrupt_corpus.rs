//! Regenerates the corruption regression corpus under `tests/corpus/`.
//!
//! The corruption adversary's positive controls are the *real* crash-fault
//! algorithms: plain CAS and ABD store shares without integrity metadata,
//! so a corruption plan within the `f` budget makes a completed read
//! return a value nobody wrote — a silent corruption the
//! `no-silent-corruption` oracle rejects. This explores corruption-armed
//! plans until such a read appears, shrinks the plan (the corrupt-server
//! set shrinks with it), and writes the replayable artifact.
//! `tests/corpus_replay.rs` picks the files up automatically.
//!
//! Hashed CAS is deliberately absent: it has no such counterexample — the
//! `corrupt-gate` sweeps assert it stays clean over the same plans.
//!
//! ```sh
//! cargo run --release --example gen_corrupt_corpus
//! ```

use shmem_algorithms::nemesis::{
    corrupt_plan_for_seed, explore_with, pretty_history, run_plan, shrink_plan, Counterexample,
    Oracle,
};
use shmem_algorithms::{AbdCluster, CasCluster, ValueSpec};
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("tests/corpus");
    fs::create_dir_all(dir).expect("create tests/corpus");

    // Plain CAS: a tampered coded slot decodes to garbage and the read
    // completes with it — no digest to catch the forgery.
    {
        let factory = || CasCluster::new(5, 1, 3, ValueSpec::from_bits(64.0));
        generate(dir, "cas-corrupt", "cas", &factory, 1000);
    }

    // ABD: a forged tag above every honest one makes readers adopt the
    // tampered replica outright.
    {
        let factory = || AbdCluster::new(5, 1, 3, ValueSpec::from_bits(64.0));
        generate(dir, "abd-corrupt", "abd", &factory, 1000);
    }
}

fn generate<P, F>(dir: &Path, name: &str, algorithm: &str, factory: &F, seeds: u64)
where
    P: shmem_sim::Protocol<Inv = shmem_algorithms::RegInv, Resp = shmem_algorithms::RegResp>,
    F: Fn() -> shmem_algorithms::harness::Cluster<P> + Sync,
{
    let oracle = Oracle::NoSilentCorruption;
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut v = explore_with(factory, oracle, seeds, workers, corrupt_plan_for_seed)
        .unwrap_or_else(|| panic!("{name}: no silent corruption within {seeds} seeds"));
    println!("== {name}: seed {} violates {:?}", v.seed, oracle);
    let (plan, stats) = shrink_plan(factory, oracle, v.seed, &v.plan);
    println!(
        "   shrunk: {} events -> {}, corrupt servers {:?}, {} candidates, {} rounds",
        v.plan.events.len(),
        plan.events.len(),
        plan.corrupt_servers,
        stats.candidates,
        stats.rounds
    );
    v.plan = plan;
    // Re-run the shrunk plan so the stored violation text matches it.
    let mut cluster = factory();
    let run = run_plan(&mut cluster, v.seed, &v.plan);
    let violation = oracle
        .check(&run.history)
        .expect_err("shrunk plan must still violate");
    v.violation = violation;
    println!("{}", pretty_history(&run.history));
    let cx = Counterexample::package(algorithm, 5, 1, 3, 0, &v);
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, cx.to_json().to_pretty()).expect("write corpus file");
    println!("   wrote {}", path.display());
}
