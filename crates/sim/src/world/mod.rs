//! The simulated world: nodes, channels, the step relation, failures and
//! the adversary controls the lower-bound proofs need.
//!
//! The module is layered:
//!
//! * [`mod@self`] — the [`Sim`] type, construction, and world-level docs;
//! * `state` — node state access, storage metering, digests, observation;
//! * `channels` — the step relation: delivery, scheduling, invocations;
//! * `table` — the structure-of-arrays channel table and message arena the
//!   step relation runs on;
//! * `adversary` — crash/recover and freeze/unfreeze controls;
//! * `faults` — nemesis primitives: message drop, duplication, delay,
//!   directed link cuts and partitions with heal;
//! * `corrupt` — corruption-adversary primitives: stored-state tampering
//!   and in-flight payload tampering behind protocol opt-in hooks;
//! * `fork` — cheap structural-sharing clones and the [`Snapshot`] /
//!   [`Point`] handle API;
//! * `error` — [`RunError`] and [`SendRecord`].
//!
//! # Forking
//!
//! Every bulky field of [`Sim`] (the server and client automata vectors,
//! the channel table with its message arena, operation history, send log,
//! storage meter) sits behind an [`Arc`], so `Sim::clone` is a handful of
//! reference-count bumps regardless of world size. Cold-path mutation
//! goes through [`Arc::make_mut`], which copies only the structure
//! actually touched — and only when it is still shared with another fork
//! (copy-on-write). The delivery loop instead claims unique ownership of
//! the three hot structures (node vectors + channel table) once per fork
//! via the `hot_owned` flag and then mutates them in place with no
//! refcount traffic at all (see `channels.rs`).
//! The proof machinery forks the world at every point of an `α^{(v1,v2)}`
//! execution, so this is the difference between `O(points · world)` and
//! `O(points + touched-state)` for a whole search.
//!
//! # The hot loop
//!
//! The step relation is allocation-free in steady state: messages live in
//! a slab arena with free-list reuse (`table`), channel queues are
//! intrusive lists threaded through the arena, scheduler scans walk a
//! maintained bitset of non-empty channel rows, and the per-event
//! outbox/response buffers are recycled scratch vectors on [`Sim`]. The
//! world digest is maintained incrementally at each mutation site rather
//! than recomputed by a full walk (see `state.rs`).

mod adversary;
mod audit;
mod channels;
mod corrupt;
mod cover;
mod error;
mod faults;
mod fork;
mod state;
mod table;

pub use error::{RunError, SendRecord};
pub use fork::{Point, Snapshot};

use crate::config::SimConfig;
use crate::coverage::CoverageMap;
use crate::ids::{ClientId, NodeId};
use crate::meter::StorageMeter;
use crate::metrics::{MetricsLevel, MetricsRegistry};
use crate::node::{Ctx, Node, Protocol};
use crate::trace::{OpRecord, TrafficCounters};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use table::ChannelTable;

/// A complete simulated system at a point of an execution.
///
/// `Sim` is cheaply forkable (`Clone`): the proof machinery clones the world
/// at a point `P` and extends the copy — exactly the paper's "extension of
/// `α_i`" constructions. Clones share state structurally and copy on first
/// write (see the [module docs](self)).
///
/// # Examples
///
/// A two-node ping-pong (see the crate tests for full protocols):
///
/// ```
/// use shmem_sim::{Ctx, Node, NodeId, Protocol, Sim, SimConfig, hash_of};
///
/// struct Ping;
/// impl Protocol for Ping {
///     type Msg = u32;
///     type Inv = ();
///     type Resp = u32;
///     type Server = Counter;
///     type Client = Asker;
/// }
/// #[derive(Clone, Default)]
/// struct Counter(u32);
/// impl Node<Ping> for Counter {
///     fn on_message(&mut self, from: NodeId, m: u32, ctx: &mut Ctx<Ping>) {
///         self.0 += m;
///         ctx.send(from, self.0);
///     }
///     fn digest(&self) -> u64 { hash_of(&self.0) }
/// }
/// #[derive(Clone, Default)]
/// struct Asker;
/// impl Node<Ping> for Asker {
///     fn on_invoke(&mut self, _: (), ctx: &mut Ctx<Ping>) {
///         ctx.send(NodeId::server(0), 7);
///     }
///     fn on_message(&mut self, _: NodeId, m: u32, ctx: &mut Ctx<Ping>) {
///         ctx.respond(m);
///     }
///     fn digest(&self) -> u64 { 0 }
/// }
///
/// let mut sim = Sim::<Ping>::new(
///     SimConfig::default(),
///     vec![Counter::default()],
///     vec![Asker::default()],
/// );
/// sim.invoke(shmem_sim::ClientId(0), ()).unwrap();
/// let resp = sim.run_until_op_completes(shmem_sim::ClientId(0)).unwrap();
/// assert_eq!(resp, 7);
/// ```
pub struct Sim<P: Protocol> {
    pub(super) config: SimConfig,
    /// All server automata behind one `Arc`: construction is two
    /// allocations instead of one per node, and a delivery touches one
    /// contiguous vector. A fork's first node mutation copies the vector.
    pub(super) servers: Arc<Vec<P::Server>>,
    pub(super) clients: Arc<Vec<P::Client>>,
    pub(in crate::world) channels: Arc<ChannelTable<P::Msg>>,
    pub(super) failed: BTreeSet<NodeId>,
    pub(super) frozen: BTreeSet<NodeId>,
    pub(super) cut_links: BTreeSet<(NodeId, NodeId)>,
    /// `failed ∪ frozen` as a flat mask indexed by [`Sim::node_slot`] —
    /// what the per-step eligibility scan reads instead of two `BTreeSet`
    /// lookups per channel.
    pub(super) blocked: Vec<bool>,
    /// How many mask entries are set; zero selects the scheduler's
    /// fault-free fast path.
    pub(super) blocked_count: u32,
    /// Whether this world has proven itself the *unique* owner of the
    /// three hot-path allocations (`servers`, `clients`, `channels`), so
    /// the delivery loop may reach their payloads without per-step
    /// refcount traffic (see [`Sim::deliver_row`]'s safety comment).
    ///
    /// Set by [`Sim::new`] (freshly built `Arc`s are unique) and by the
    /// delivery loop after it unshares all three; cleared — on *both*
    /// worlds — by `Sim::clone`, the only place the hot `Arc`s are ever
    /// cloned. Atomic only so `clone(&self)` can clear it on its source;
    /// every access uses `Relaxed` because the flag is always read and
    /// written under a borrow that already excludes the racing writer.
    pub(super) hot_owned: std::sync::atomic::AtomicBool,
    pub(super) now: u64,
    pub(super) rr_cursor: u64,
    pub(super) open_ops: BTreeMap<ClientId, usize>,
    pub(super) ops: Arc<Vec<OpRecord<P::Inv, P::Resp>>>,
    pub(super) meter: Arc<StorageMeter>,
    /// Observation points that changed no peak, not yet booked into the
    /// shared meter — deferring them keeps the per-step sample from
    /// unsharing the meter `Arc` when nothing moved. Flushed whenever the
    /// meter is next unshared anyway; reads add it to `points_observed`.
    pub(super) meter_pending_ticks: u64,
    /// `None` at [`MetricsLevel::Off`], so unmetered worlds pay nothing —
    /// not even a refcount bump on fork.
    pub(super) metrics: Option<Arc<MetricsRegistry>>,
    /// The registry's level cached inline so the hot-path hooks branch on
    /// a local byte instead of dereferencing the `Arc`. Kept in sync by
    /// construction and [`Sim::set_metrics`].
    pub(super) metrics_level: MetricsLevel,
    /// `None` when coverage is off (the default), mirroring `metrics`.
    pub(super) coverage: Option<Arc<CoverageMap>>,
    /// Cached inline so the hot-path hooks branch on a local bool instead
    /// of checking the `Option`. Kept in sync by construction and
    /// [`Sim::set_coverage`].
    pub(super) coverage_on: bool,
    pub(super) send_log: Option<Arc<Vec<SendRecord<P::Msg>>>>,
    pub(super) traffic: TrafficCounters,
    /// Sum of the *clean* digest components (see `state.rs`): per-node and
    /// per-channel components whose caches are current, plus the
    /// failed/frozen/cut components, which are always maintained eagerly.
    pub(super) digest_acc: u64,
    /// Cached per-node digest components, indexed by [`Sim::node_slot`] —
    /// valid only where `node_dirty` is false.
    pub(super) node_comp: Vec<u64>,
    pub(super) node_dirty: Vec<bool>,
    /// Reusable buffers for the per-event [`Ctx`] and scheduler scans —
    /// the step relation allocates nothing in steady state. Scratch state
    /// is empty between steps and excluded from `Clone`.
    pub(super) scratch_outbox: Vec<(NodeId, P::Msg)>,
    pub(super) scratch_resp: Vec<P::Resp>,
    pub(super) scratch_options: Vec<(NodeId, NodeId)>,
    pub(super) scratch_weighted: Vec<((NodeId, NodeId), usize)>,
}

impl<P: Protocol> Sim<P> {
    /// Builds a world and runs every node's `on_start`.
    pub fn new(
        config: SimConfig,
        mut servers: Vec<P::Server>,
        mut clients: Vec<P::Client>,
    ) -> Sim<P> {
        let n = servers.len();
        let slots = n + clients.len();
        // Run `on_start` on the still-unshared vectors — no per-node
        // `Arc::make_mut` — stashing each node's effects for application
        // once the world exists. Applying all effects after all `on_start`s
        // enqueues the same messages in the same order as interleaving.
        let mut startup: Vec<(NodeId, Ctx<P>)> = Vec::new();
        for (i, s) in servers.iter_mut().enumerate() {
            let id = NodeId::server(i as u32);
            let mut ctx: Ctx<P> = Ctx::new(id, 0);
            <P::Server as Node<P>>::on_start(s, &mut ctx);
            if ctx.has_effects() {
                startup.push((id, ctx));
            }
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let id = NodeId::client(i as u32);
            let mut ctx: Ctx<P> = Ctx::new(id, 0);
            <P::Client as Node<P>>::on_start(c, &mut ctx);
            if ctx.has_effects() {
                startup.push((id, ctx));
            }
        }
        let mut sim = Sim {
            config,
            servers: Arc::new(servers),
            clients: Arc::new(clients),
            channels: Arc::new(ChannelTable::mesh(
                n as u32,
                (slots - n) as u32,
                config.server_gossip,
            )),
            failed: BTreeSet::new(),
            frozen: BTreeSet::new(),
            cut_links: BTreeSet::new(),
            blocked: vec![false; slots],
            blocked_count: 0,
            hot_owned: std::sync::atomic::AtomicBool::new(true),
            now: 0,
            rr_cursor: 0,
            open_ops: BTreeMap::new(),
            ops: Arc::new(Vec::new()),
            meter: Arc::new(StorageMeter::new(n)),
            meter_pending_ticks: 0,
            metrics: (config.metrics != MetricsLevel::Off)
                .then(|| Arc::new(MetricsRegistry::new(config.metrics, n))),
            metrics_level: config.metrics,
            coverage: config.coverage.then(|| Arc::new(CoverageMap::new())),
            coverage_on: config.coverage,
            send_log: None,
            traffic: TrafficCounters::default(),
            // Every node starts with a stale (dirty) digest component, so
            // nothing is hashed until a digest is actually requested.
            digest_acc: 0,
            node_comp: vec![0; slots],
            node_dirty: vec![true; slots],
            scratch_outbox: Vec::new(),
            scratch_resp: Vec::new(),
            scratch_options: Vec::new(),
            scratch_weighted: Vec::new(),
        };
        for (id, ctx) in startup {
            sim.apply_effects(id, ctx);
        }
        sim.sample_meter_full();
        sim
    }

    /// The configuration the world was built with.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The current step index — the "point" number of the execution.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Flat index of `node` into the block mask and digest caches:
    /// servers first, then clients.
    #[inline]
    pub(super) fn node_slot(&self, node: NodeId) -> usize {
        match node {
            NodeId::Server(s) => s.0 as usize,
            NodeId::Client(c) => self.servers.len() + c.0 as usize,
        }
    }

    /// Re-derives `blocked[node]` from the authoritative sets after a
    /// fail/recover/freeze/unfreeze transition.
    pub(super) fn refresh_blocked(&mut self, node: NodeId) {
        let slot = self.node_slot(node);
        let now_blocked = self.failed.contains(&node) || self.frozen.contains(&node);
        if self.blocked[slot] != now_blocked {
            self.blocked[slot] = now_blocked;
            if now_blocked {
                self.blocked_count += 1;
            } else {
                self.blocked_count -= 1;
            }
        }
    }
}

impl<P: Protocol> fmt::Debug for Sim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sim {{ step {}, {} servers, {} clients, {} in flight, {} failed, {} frozen, {} cut \
             links }}",
            self.now,
            self.servers.len(),
            self.clients.len(),
            self.total_in_flight(),
            self.failed.len(),
            self.frozen.len(),
            self.cut_links.len()
        )
    }
}

#[cfg(test)]
mod tests;
