//! [`CorruptingBackend`]: the corruption adversary at the store seam.
//!
//! The lock-free backends publish immutable versions through atomic
//! pointers — there is no mutable borrow into stored state for an
//! adversary to flip bytes in, and racing one in would break the epoch
//! reclamation contract. So the pooled-server adversary sits where a
//! Byzantine server actually sits: on the *serving* path. The decorator
//! wraps any backend and, while armed, tampers every coded share it hands
//! to readers (`read_get`) and every replicated value it loads for a
//! query (`load`), deterministically in `(salt, key)` via the same
//! `shmem-util` tamper primitives the sim-level adversary uses — the
//! stored state underneath stays canonical (digests delegate untouched),
//! the lies happen at the interface.
//!
//! The hash side-table is delegated verbatim: announced digests are the
//! integrity metadata guarding the data, and the adversary does not get
//! to forge them. That asymmetry is the whole experiment — hashed CAS
//! over a corrupting backend turns every tampered share into a visible
//! `ReadFailed`, plain CAS and ABD serve fabricated values.

use shmem_algorithms::backend::{AbdBackend, CasBackend, HashedBackend};
use shmem_algorithms::corrupt::FORGED_WRITER;
use shmem_algorithms::multikey::Key;
use shmem_algorithms::tag::Tag;
use shmem_algorithms::value::Value;
use shmem_util::{tamper_bytes, tamper_value};

/// A backend decorator that tampers read-path payloads while armed.
#[derive(Clone, Debug)]
pub struct CorruptingBackend<B> {
    inner: B,
    salt: u64,
    armed: bool,
}

impl<B> CorruptingBackend<B> {
    /// Wraps `inner`, disarmed — byte-identical to the bare backend until
    /// [`CorruptingBackend::arm`].
    pub fn new(inner: B, salt: u64) -> CorruptingBackend<B> {
        CorruptingBackend {
            inner,
            salt,
            armed: false,
        }
    }

    /// Starts (or stops) tampering served payloads.
    pub fn arm(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Whether the decorator is currently tampering.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }
}

impl<B: AbdBackend> AbdBackend for CorruptingBackend<B> {
    fn load(&self, key: Key) -> Option<(Tag, Value)> {
        let (tag, value) = self.inner.load(key)?;
        if self.armed {
            // Forge a tag above every honest one so the fabrication wins
            // the reader's max-tag fold — the one attack replication
            // leaves open (see `LocalAbd::corrupt`).
            Some((
                tag.successor(FORGED_WRITER),
                tamper_value(value, self.salt, key),
            ))
        } else {
            Some((tag, value))
        }
    }

    fn store_if_newer(&mut self, key: Key, tag: Tag, value: Value) -> bool {
        self.inner.store_if_newer(key, tag, value)
    }

    fn keys_held(&self) -> usize {
        self.inner.keys_held()
    }

    fn digest_with(&self, initial: Value) -> u64 {
        self.inner.digest_with(initial)
    }
}

impl<B: CasBackend> CasBackend for CorruptingBackend<B> {
    fn max_finalized(&self, key: Key) -> Tag {
        self.inner.max_finalized(key)
    }

    fn pre_write(&mut self, key: Key, tag: Tag, share: Vec<u8>) {
        self.inner.pre_write(key, tag, share);
    }

    fn finalize(&mut self, key: Key, tag: Tag) {
        self.inner.finalize(key, tag);
    }

    fn read_get(&mut self, key: Key, tag: Tag) -> Option<Option<Vec<u8>>> {
        let mut share = self.inner.read_get(key, tag)?;
        if self.armed {
            if let Some(share) = share.as_mut() {
                tamper_bytes(share, self.salt, key);
            }
        }
        Some(share)
    }

    fn versions_held(&self, key: Key) -> usize {
        self.inner.versions_held(key)
    }

    fn keys_held(&self) -> usize {
        self.inner.keys_held()
    }

    fn total_versions(&self) -> usize {
        self.inner.total_versions()
    }

    fn total_tags(&self) -> usize {
        self.inner.total_tags()
    }

    fn digest_with(&self, me: u32) -> u64 {
        self.inner.digest_with(me)
    }
}

impl<B: HashedBackend> HashedBackend for CorruptingBackend<B> {
    fn put_hash(&mut self, key: Key, tag: Tag, digest: u64) {
        self.inner.put_hash(key, tag, digest);
    }

    fn get_hash(&self, key: Key, tag: Tag) -> Option<u64> {
        self.inner.get_hash(key, tag)
    }

    fn hash_count(&self) -> usize {
        self.inner.hash_count()
    }

    fn hashed_digest_with(&self, me: u32) -> u64 {
        self.inner.hashed_digest_with(me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_algorithms::backend::{LocalAbd, LocalHashed};
    use shmem_algorithms::cas::ShardedCasConfig;
    use shmem_algorithms::hashed::value_digest;
    use shmem_algorithms::multikey::ShardMap;
    use shmem_algorithms::value::ValueSpec;

    fn cfg() -> ShardedCasConfig {
        ShardedCasConfig::native(ShardMap::full(4), 1, ValueSpec::from_bits(64.0))
    }

    #[test]
    fn disarmed_is_transparent_and_armed_tampers_reads_only() {
        let initial = 0;
        let mut b = CorruptingBackend::new(LocalHashed::new(cfg(), 0, initial), 0xBEEF);
        let tag = Tag::ZERO.successor(7);
        b.pre_write(3, tag, vec![1, 2, 3]);
        b.finalize(3, tag);
        b.put_hash(3, tag, 42);

        let honest = b.read_get(3, tag).flatten().expect("symbol held");
        assert_eq!(honest, vec![1, 2, 3]);

        b.arm(true);
        let lied = b.read_get(3, tag).flatten().expect("symbol held");
        assert_ne!(lied, honest, "armed read_get must tamper the share");
        // Stored state and integrity metadata stay canonical: digests
        // equal the bare backend's, hashes come back unforged.
        assert_eq!(b.get_hash(3, tag), Some(42));
        let bare = {
            let mut bare = LocalHashed::new(cfg(), 0, initial);
            bare.pre_write(3, tag, vec![1, 2, 3]);
            bare.finalize(3, tag);
            bare.put_hash(3, tag, 42);
            bare.read_get(3, tag); // same write-back as the wrapped one
            bare.read_get(3, tag);
            bare
        };
        assert_eq!(b.hashed_digest_with(0), bare.hashed_digest_with(0));
    }

    #[test]
    fn tampering_is_deterministic_in_salt_and_key() {
        let run = |salt: u64| {
            let mut b = CorruptingBackend::new(LocalHashed::new(cfg(), 0, 0), salt);
            let tag = Tag::ZERO.successor(1);
            b.pre_write(9, tag, vec![0xAA; 8]);
            b.finalize(9, tag);
            b.arm(true);
            b.read_get(9, tag).flatten().expect("symbol held")
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn abd_load_forges_tag_and_value_while_armed() {
        let mut b = CorruptingBackend::new(LocalAbd::new(), 0x5A17);
        let tag = Tag::ZERO.successor(2);
        assert!(b.store_if_newer(5, tag, 77));
        let (honest_tag, honest_value) = AbdBackend::load(&b, 5).expect("materialized");
        assert_eq!((honest_tag, honest_value), (tag, 77));
        b.arm(true);
        let (forged_tag, forged_value) = AbdBackend::load(&b, 5).expect("materialized");
        assert!(forged_tag > honest_tag, "forged tag must win the fold");
        assert_ne!(forged_value, honest_value);
        // The fabrication never collides with a real written value.
        assert_ne!(value_digest(forged_value), value_digest(honest_value));
    }
}
