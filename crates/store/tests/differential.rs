//! Sequential-reference differential tests: the store-backed protocols
//! are *byte-identical* to the legacy in-struct servers when driven
//! single-threaded.
//!
//! For each protocol pair (`ShardedAbd` / [`StoreAbd`], `ShardedCas` /
//! [`StoreCas`], `ShardedHashed` / [`StoreHashed`]) the same seeded
//! workload and schedule drive both worlds; the [`StepInfo`] traces, the
//! op-for-op responses, and the full simulator digests (which fold in
//! every server's `Node::digest`, i.e. the backend's canonical state
//! hash) must match exactly — at batch size 1 and batch size 16. Per-key
//! projections of the store-backed runs must also pass the unchanged
//! `shmem-spec` atomicity checker.

use shmem_algorithms::abd::{ShardedAbd, ShardedAbdClient, ShardedAbdServer, ShardedAbdServerOn};
use shmem_algorithms::cas::{
    ShardedCas, ShardedCasClient, ShardedCasConfig, ShardedCasServer, ShardedCasServerOn,
};
use shmem_algorithms::hashed::{
    ShardedHashed, ShardedHashedClient, ShardedHashedServer, ShardedHashedServerOn,
};
use shmem_algorithms::workloads::ZipfKeys;
use shmem_algorithms::{project_histories, Key, MultiInv, MultiResp, ShardMap, Value, ValueSpec};
use shmem_sim::{ClientId, Protocol, ServerId, Sim, SimConfig, StepInfo};
use shmem_spec::check_atomic;
use shmem_store::coded::{StoreCasBackend, StoreHashedBackend};
use shmem_store::reg::StoreAbdBackend;
use shmem_store::{StoreAbd, StoreCas, StoreHashed};
use shmem_util::DetRng;

const SPEC: f64 = 64.0;
const N: u32 = 5;
const F: u32 = 1;
const CLIENTS: u32 = 3;
const ROUNDS: u64 = 4;
const UNIVERSE: u64 = 32;

/// Drives `sim` through `ROUNDS` rounds of concurrent batched ops (two
/// writers, one reader — homogeneous batches) under a workload and
/// schedule derived only from `seed`, then drains to quiescence.
/// Returns the step trace and the final simulator digest.
fn run_world<P>(sim: &mut Sim<P>, seed: u64, batch: usize) -> (Vec<StepInfo>, u64)
where
    P: Protocol<Inv = MultiInv, Resp = MultiResp>,
{
    let zipf = ZipfKeys::new(UNIVERSE, 0.99);
    let mut workload = DetRng::seed_from_u64(seed);
    let mut sched = DetRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut trace = Vec::new();
    let mut next: Value = 0;
    for _round in 0..ROUNDS {
        for c in 0..CLIENTS {
            let keys = zipf.sample_batch(&mut workload, batch);
            let inv = if c.is_multiple_of(2) {
                let pairs: Vec<(Key, Value)> = keys
                    .iter()
                    .map(|&k| {
                        next += 1;
                        (k, next)
                    })
                    .collect();
                MultiInv::writes(&pairs)
            } else {
                MultiInv::reads(&keys)
            };
            sim.invoke(ClientId(c), inv).unwrap();
        }
        while (0..CLIENTS).any(|c| sim.has_open_op(ClientId(c))) {
            let info = sim
                .step_with(|opts| sched.gen_range(0..opts.len()))
                .expect("open ops but no deliverable step");
            trace.push(info);
            assert!(trace.len() < 1_000_000, "runaway schedule");
        }
    }
    while let Some(info) = sim.step_with(|opts| sched.gen_range(0..opts.len())) {
        trace.push(info);
    }
    (trace, sim.digest())
}

/// Runs both worlds and asserts byte-identity: traces, responses, and
/// digests; then checks the store world's per-key projections atomic.
fn assert_equivalent<L, S>(legacy: &mut Sim<L>, store: &mut Sim<S>, seed: u64, batch: usize)
where
    L: Protocol<Inv = MultiInv, Resp = MultiResp>,
    S: Protocol<Inv = MultiInv, Resp = MultiResp>,
{
    let (lt, ld) = run_world(legacy, seed, batch);
    let (st, sd) = run_world(store, seed, batch);
    assert_eq!(
        lt, st,
        "seed {seed} batch {batch}: store backend diverged from legacy trace"
    );
    assert_eq!(
        ld, sd,
        "seed {seed} batch {batch}: digest mismatch — backend state not canonical"
    );
    assert_eq!(legacy.ops().len(), store.ops().len());
    for (l, s) in legacy.ops().iter().zip(store.ops()) {
        assert_eq!(l.invoked_at, s.invoked_at, "seed {seed} batch {batch}");
        assert_eq!(l.responded_at, s.responded_at, "seed {seed} batch {batch}");
        assert_eq!(
            l.response, s.response,
            "seed {seed} batch {batch}: response mismatch"
        );
    }
    for (key, h) in project_histories(0, store.ops()) {
        assert!(
            check_atomic(&h).is_ok(),
            "seed {seed} batch {batch} key {key}: store projection not atomic"
        );
    }
}

fn abd_worlds() -> (Sim<ShardedAbd>, Sim<StoreAbd>) {
    let spec = ValueSpec::from_bits(SPEC);
    let map = ShardMap::full(N);
    let legacy = Sim::new(
        SimConfig::without_gossip(),
        (0..N).map(|_| ShardedAbdServer::new(0, spec)).collect(),
        (0..CLIENTS)
            .map(|c| ShardedAbdClient::new(map, c))
            .collect(),
    );
    let store = Sim::new(
        SimConfig::without_gossip(),
        (0..N)
            .map(|_| ShardedAbdServerOn::with_backend(0, spec, StoreAbdBackend::new()))
            .collect(),
        (0..CLIENTS)
            .map(|c| ShardedAbdClient::new(map, c))
            .collect(),
    );
    (legacy, store)
}

fn cas_worlds(cfg: &ShardedCasConfig) -> (Sim<ShardedCas>, Sim<StoreCas>) {
    let legacy = Sim::new(
        SimConfig::without_gossip(),
        (0..N)
            .map(|i| ShardedCasServer::new(cfg.clone(), ServerId(i), 0))
            .collect(),
        (0..CLIENTS)
            .map(|c| ShardedCasClient::new(cfg.clone(), c))
            .collect(),
    );
    let store = Sim::new(
        SimConfig::without_gossip(),
        (0..N)
            .map(|i| {
                ShardedCasServerOn::with_backend(
                    cfg.clone(),
                    ServerId(i),
                    StoreCasBackend::new(cfg.clone(), i, 0),
                )
            })
            .collect(),
        (0..CLIENTS)
            .map(|c| ShardedCasClient::new(cfg.clone(), c))
            .collect(),
    );
    (legacy, store)
}

fn hashed_worlds(cfg: &ShardedCasConfig) -> (Sim<ShardedHashed>, Sim<StoreHashed>) {
    let legacy = Sim::new(
        SimConfig::without_gossip(),
        (0..N)
            .map(|i| ShardedHashedServer::new(cfg.clone(), ServerId(i), 0))
            .collect(),
        (0..CLIENTS)
            .map(|c| ShardedHashedClient::new(cfg.clone(), c))
            .collect(),
    );
    let store = Sim::new(
        SimConfig::without_gossip(),
        (0..N)
            .map(|i| {
                ShardedHashedServerOn::with_backend(
                    cfg.clone(),
                    ServerId(i),
                    StoreHashedBackend::new(cfg.clone(), i, 0),
                )
            })
            .collect(),
        (0..CLIENTS)
            .map(|c| ShardedHashedClient::new(cfg.clone(), c))
            .collect(),
    );
    (legacy, store)
}

#[test]
fn store_abd_matches_legacy_batch_1_and_16() {
    for batch in [1usize, 16] {
        for seed in 0..4u64 {
            let (mut legacy, mut store) = abd_worlds();
            assert_equivalent(&mut legacy, &mut store, seed, batch);
        }
    }
}

#[test]
fn store_cas_matches_legacy_batch_1_and_16() {
    let cfg = ShardedCasConfig::native(ShardMap::full(N), F, ValueSpec::from_bits(SPEC));
    for batch in [1usize, 16] {
        for seed in 0..4u64 {
            let (mut legacy, mut store) = cas_worlds(&cfg);
            assert_equivalent(&mut legacy, &mut store, seed, batch);
        }
    }
}

#[test]
fn store_cas_matches_legacy_under_gc() {
    let cfg = ShardedCasConfig::native(ShardMap::full(N), F, ValueSpec::from_bits(SPEC)).with_gc(0);
    for seed in 0..4u64 {
        let (mut legacy, mut store) = cas_worlds(&cfg);
        assert_equivalent(&mut legacy, &mut store, seed, 4);
    }
}

#[test]
fn store_hashed_matches_legacy_batch_1_and_16() {
    let cfg = ShardedCasConfig::native(ShardMap::full(N), F, ValueSpec::from_bits(SPEC));
    for batch in [1usize, 16] {
        for seed in 0..4u64 {
            let (mut legacy, mut store) = hashed_worlds(&cfg);
            assert_equivalent(&mut legacy, &mut store, seed, batch);
        }
    }
}
