//! Deterministic execution coverage: the feedback signal for
//! coverage-guided nemesis fuzzing.
//!
//! A [`CoverageMap`] is a fixed 64k-slot bitmap fed from cheap, fully
//! deterministic signals of the execution (AFL-style edge coverage, but
//! over simulator events instead of basic blocks):
//!
//! * **state-transition edges** — every delivery and invocation hashes the
//!   event's location (kind, endpoints, low bits of the *receiving node's*
//!   post-step digest — the only [`crate::world::Sim::digest`] component a
//!   single step can change) against the previous event's location;
//! * **fault-variant edges** — every nemesis primitive (drop, duplicate,
//!   delay, cut, heal, crash, recover, freeze, unfreeze) contributes its
//!   own location, so a schedule that injects a fault between two
//!   deliveries covers different edges than one that does not;
//! * **end-of-run signatures** — the fuzz driver folds metrics-ledger
//!   buckets (peak queue depth, dropped/duplicated/purged counts) and the
//!   final world digest in via [`CoverageMap::record_signature`].
//!
//! Two executions with equal inputs produce identical maps (every signal
//! is a pure function of the execution), so coverage is usable as a corpus
//! admission criterion without breaking the nemesis determinism contract:
//! the fuzzer's reducer merges per-run maps in a fixed order and the
//! result is byte-identical across reruns and worker counts.
//!
//! Like [`crate::metrics::MetricsLevel`], coverage is **off by default**:
//! the world carries `None` and every hook reduces to one branch on an
//! inline `bool`, so unmetered simulations (proof machinery, benchmarks)
//! pay nothing.

use shmem_util::json::Json;

/// Number of coverage slots (64k, AFL's classic map size).
pub const COVERAGE_SLOTS: usize = 1 << 16;

const WORDS: usize = COVERAGE_SLOTS / 64;

/// SplitMix64 finalizer — the same mixer [`shmem_util::DetRng`] uses, so
/// slot assignment is bit-identical on every platform.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64k-slot edge-coverage bitmap over simulator events.
///
/// ```
/// use shmem_sim::coverage::CoverageMap;
///
/// let mut a = CoverageMap::new();
/// a.record_event(1, 0, 3, 7);
/// a.record_event(2, 3, 0, 9);
/// let mut b = CoverageMap::new();
/// b.record_event(1, 0, 3, 7);
/// b.record_event(2, 3, 0, 9);
/// assert_eq!(a.occupied(), b.occupied());
/// assert_eq!(a.covered(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageMap {
    bits: Vec<u64>,
    covered: u32,
    /// The previous event's location hash (AFL's `prev_loc`), shifted so
    /// that A→B and B→A cover different edges.
    prev_loc: u64,
}

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap {
            bits: vec![0u64; WORDS],
            covered: 0,
            prev_loc: 0,
        }
    }

    /// The slot a raw key lands in.
    #[inline]
    pub fn slot_of(key: u64) -> u32 {
        (mix64(key) & (COVERAGE_SLOTS as u64 - 1)) as u32
    }

    #[inline]
    fn set(&mut self, slot: u32) -> bool {
        let (word, bit) = ((slot / 64) as usize, slot % 64);
        let mask = 1u64 << bit;
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.covered += 1;
            true
        } else {
            false
        }
    }

    /// Whether `slot` is covered.
    pub fn contains(&self, slot: u32) -> bool {
        let (word, bit) = ((slot as usize / 64) % WORDS, slot % 64);
        self.bits[word] & (1u64 << bit) != 0
    }

    /// Records one simulator event as an edge from the previous event:
    /// `kind` tags the event variant, `a`/`b` encode its endpoints, and
    /// `extra` carries event-specific state (e.g. the receiver's post-step
    /// digest bits). Returns whether the edge's slot was new.
    pub fn record_event(&mut self, kind: u64, a: u64, b: u64, extra: u64) -> bool {
        let loc = mix64(
            kind.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (a << 40)
                ^ (b << 20)
                ^ extra.rotate_left(13),
        );
        let slot = ((loc ^ self.prev_loc) & (COVERAGE_SLOTS as u64 - 1)) as u32;
        self.prev_loc = loc >> 1;
        self.set(slot)
    }

    /// Records an end-of-run signature (metrics buckets, final digest) as
    /// its own slot, independent of the edge chain. Returns whether the
    /// slot was new.
    pub fn record_signature(&mut self, key: u64) -> bool {
        let slot = CoverageMap::slot_of(key);
        self.set(slot)
    }

    /// Number of covered slots.
    pub fn covered(&self) -> usize {
        self.covered as usize
    }

    /// The covered slots, sorted ascending — the per-run harvest the fuzz
    /// driver feeds to its reducer.
    pub fn occupied(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.covered as usize);
        for (w, &bits) in self.bits.iter().enumerate() {
            let mut rest = bits;
            while rest != 0 {
                let bit = rest.trailing_zeros();
                out.push((w as u32) * 64 + bit);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Marks `slots` covered; returns how many were new. This is the
    /// reducer's merge primitive — bitwise-or semantics, so folding
    /// per-run slot sets in any fixed order yields the same map (the fuzz
    /// reducer folds in candidate-index order to make *admission decisions*
    /// order-independent of thread scheduling too).
    pub fn admit_slots(&mut self, slots: &[u32]) -> u64 {
        let mut novel = 0;
        for &slot in slots {
            if self.set(slot % COVERAGE_SLOTS as u32) {
                novel += 1;
            }
        }
        novel
    }

    /// Order-insensitive signature of a slot set — the corpus dedup key.
    /// Commutative fold (sum/xor of per-slot mixes), so equal sets give
    /// equal signatures regardless of slot order.
    pub fn signature_of(slots: &[u32]) -> u64 {
        let mut sum = 0u64;
        let mut xor = 0u64;
        for &s in slots {
            let m = mix64(u64::from(s).wrapping_add(0xA076_1D64_78BD_642F));
            sum = sum.wrapping_add(m);
            xor ^= m.rotate_left(17);
        }
        mix64(sum ^ xor ^ (slots.len() as u64) << 48)
    }

    /// Byte-stable JSON export: covered-slot count plus the slot list.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("covered".to_string(), Json::Num(self.covered as f64)),
            (
                "slots".to_string(),
                Json::Arr(
                    self.occupied()
                        .into_iter()
                        .map(|s| Json::Num(f64::from(s)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_empty() {
        let m = CoverageMap::new();
        assert_eq!(m.covered(), 0);
        assert!(m.occupied().is_empty());
        assert!(!m.contains(0));
    }

    #[test]
    fn events_are_deterministic_and_order_sensitive() {
        let mut a = CoverageMap::new();
        a.record_event(1, 2, 3, 4);
        a.record_event(5, 6, 7, 8);
        let mut b = CoverageMap::new();
        b.record_event(1, 2, 3, 4);
        b.record_event(5, 6, 7, 8);
        assert_eq!(a, b);
        // Swapped order covers different edges (the chain matters).
        let mut c = CoverageMap::new();
        c.record_event(5, 6, 7, 8);
        c.record_event(1, 2, 3, 4);
        assert_ne!(a.occupied(), c.occupied());
    }

    #[test]
    fn admit_counts_only_new_slots() {
        let mut m = CoverageMap::new();
        assert_eq!(m.admit_slots(&[3, 9, 3]), 2);
        assert_eq!(m.admit_slots(&[9, 11]), 1);
        assert_eq!(m.covered(), 3);
        assert!(m.contains(3) && m.contains(9) && m.contains(11));
    }

    #[test]
    fn occupied_roundtrips_through_admit() {
        let mut m = CoverageMap::new();
        for i in 0..100u64 {
            m.record_event(i, i * 3, i * 7, i * 11);
        }
        let slots = m.occupied();
        assert_eq!(slots.len(), m.covered());
        let mut copy = CoverageMap::new();
        assert_eq!(copy.admit_slots(&slots), slots.len() as u64);
        assert_eq!(copy.occupied(), slots);
    }

    #[test]
    fn signature_is_order_insensitive_and_set_sensitive() {
        let a = CoverageMap::signature_of(&[1, 2, 3]);
        let b = CoverageMap::signature_of(&[3, 1, 2]);
        let c = CoverageMap::signature_of(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(CoverageMap::signature_of(&[]), a);
    }

    #[test]
    fn signatures_feed_slots_outside_the_edge_chain() {
        let mut m = CoverageMap::new();
        m.record_event(1, 2, 3, 4);
        let before = m.prev_loc;
        m.record_signature(42);
        assert_eq!(m.prev_loc, before, "signatures must not disturb the chain");
        assert_eq!(m.covered(), 2);
    }

    #[test]
    fn json_export_is_stable() {
        let mut m = CoverageMap::new();
        m.admit_slots(&[5, 1]);
        assert_eq!(
            m.to_json().to_compact(),
            r#"{"covered":2,"slots":[1,5]}"#.to_string()
        );
    }
}
