//! The client side: logical protocol clients multiplexed over worker
//! threads, driven closed-loop by a deterministic load generator.
//!
//! One OS thread (a *worker*) owns one transport endpoint and a block of
//! *logical clients*, each an unchanged `P::Client` automaton plus a
//! little in-flight bookkeeping. Closed-loop means every logical client
//! has at most one operation outstanding; thousands of concurrent
//! clients cost thousands of small structs, not thousands of threads.
//!
//! Reliability is layered here, not in the protocols: the transport may
//! drop messages, so a worker retransmits an in-flight operation's last
//! send after [`LoadConfig::retransmit`] of silence (the automata dedupe
//! via their `heard` sets, so duplicates are harmless), and *retires* a
//! logical client whose operation exceeds [`LoadConfig::op_timeout`] —
//! the operation is recorded as incomplete, never resubmitted under a
//! reused nonce, and the spec checker treats it as free to have taken
//! effect at any point. That is exactly the crash-stop client model the
//! paper's algorithms are proved under.

use crate::transport::{Envelope, Transport};
use crate::wire::WireMsg;
use shmem_algorithms::multikey::{Key, MultiInv, MultiResp};
use shmem_sim::{ClientId, Ctx, Histogram, Node, NodeId, OpRecord, Protocol};
use shmem_util::DetRng;
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Logical clients, total across all workers.
    pub clients: u32,
    /// Worker threads the clients are sharded over.
    pub workers: usize,
    /// Operations each logical client issues.
    pub ops_per_client: usize,
    /// Distinct keys per batched operation.
    pub batch: usize,
    /// Keyspace: operations draw from `0..keyspace`.
    pub keyspace: u64,
    /// Probability an operation is a write batch.
    pub write_ratio: f64,
    /// Deterministic seed for workloads.
    pub seed: u64,
    /// Silence after which an in-flight op's last round is retransmitted.
    pub retransmit: Duration,
    /// Deadline after which an in-flight op is abandoned and its logical
    /// client retired.
    pub op_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 8,
            workers: 2,
            ops_per_client: 16,
            batch: 1,
            keyspace: 16,
            write_ratio: 0.5,
            seed: 1,
            // High enough that fault-free runs never retransmit (a dup
            // PreWrite after GC could resurrect a pruned share and
            // perturb exact storage accounting).
            retransmit: Duration::from_millis(500),
            op_timeout: Duration::from_secs(20),
        }
    }
}

impl LoadConfig {
    /// Splits `0..clients` into `workers` contiguous blocks.
    pub fn client_blocks(&self) -> Vec<Vec<ClientId>> {
        let workers = self.workers.max(1);
        let mut blocks: Vec<Vec<ClientId>> = vec![Vec::new(); workers];
        for c in 0..self.clients {
            blocks[c as usize % workers].push(ClientId(c));
        }
        blocks.retain(|b| !b.is_empty());
        blocks
    }
}

/// What one worker thread produced.
pub struct WorkerReport {
    /// Per-operation invocation/response records, feedable to
    /// `project_histories` exactly like simulator traces.
    pub records: Vec<OpRecord<MultiInv, MultiResp>>,
    /// Operation latency histogram (nanoseconds, log₂ buckets).
    pub latency_ns: Histogram,
    /// Protocol messages sent (including retransmissions).
    pub msgs_sent: u64,
    /// Wire bytes sent, charged via [`Protocol::msg_wire_bytes`].
    pub wire_bytes: u64,
    /// Retransmission rounds fired.
    pub retransmits: u64,
    /// Operations completed.
    pub completed: u64,
    /// Logical clients retired on operation timeout.
    pub retired: u64,
}

enum SlotState {
    Idle,
    Busy {
        inv: MultiInv,
        invoked_ns: u64,
        last_send: Instant,
        cached: Vec<Envelope>,
    },
    Retired,
}

/// One logical client: automaton + in-flight bookkeeping.
struct Slot<P: Protocol> {
    id: ClientId,
    machine: P::Client,
    ops_left: usize,
    rng: DetRng,
    state: SlotState,
}

/// Drives a block of logical clients over `transport` until every one
/// has finished its operations (or been retired), then returns the
/// worker's records and counters.
///
/// `epoch` must be shared by every worker of a run: operation timestamps
/// are nanoseconds since it, making cross-worker real-time order valid
/// input for the atomicity checkers.
pub fn run_worker<P, T>(
    mut transport: T,
    ids: Vec<ClientId>,
    make_client: impl Fn(ClientId) -> P::Client,
    cfg: &LoadConfig,
    epoch: Instant,
) -> WorkerReport
where
    P: Protocol<Inv = MultiInv, Resp = MultiResp>,
    P::Msg: WireMsg,
    T: Transport,
{
    let mut report = WorkerReport {
        records: Vec::new(),
        latency_ns: Histogram::new(),
        msgs_sent: 0,
        wire_bytes: 0,
        retransmits: 0,
        completed: 0,
        retired: 0,
    };
    let mut slots: Vec<Slot<P>> = ids
        .into_iter()
        .map(|id| Slot {
            id,
            machine: make_client(id),
            ops_left: cfg.ops_per_client,
            rng: DetRng::seed_from_u64(cfg.seed ^ (0x9e37_79b9_7f4a_7c15 ^ u64::from(id.0))),
            state: SlotState::Idle,
        })
        .collect();

    loop {
        let mut live = false;

        // Start the next operation of every idle slot (closed loop).
        for slot in &mut slots {
            if matches!(slot.state, SlotState::Idle) && slot.ops_left > 0 {
                start_op::<P, T>(slot, cfg, &mut transport, epoch, &mut report);
            }
            match slot.state {
                SlotState::Busy { .. } => live = true,
                SlotState::Idle if slot.ops_left > 0 => live = true,
                _ => {}
            }
        }
        if !live {
            break;
        }

        // Drain inbound traffic: one short blocking wait, then whatever
        // is already queued.
        let mut budget = 256;
        let mut wait = Duration::from_micros(500);
        while budget > 0 {
            match transport.recv_timeout(wait) {
                Ok(Some(env)) => {
                    on_envelope::<P, T>(&mut slots, env, cfg, &mut transport, epoch, &mut report);
                    wait = Duration::ZERO;
                    budget -= 1;
                }
                Ok(None) => break,
                Err(_) => return drain_incomplete(slots, report),
            }
        }

        // Retransmit stalled rounds; retire operations past deadline.
        let now = Instant::now();
        for slot in &mut slots {
            let SlotState::Busy {
                invoked_ns,
                last_send,
                ref cached,
                ref inv,
            } = slot.state
            else {
                continue;
            };
            let age = epoch.elapsed().as_nanos() as u64 - invoked_ns;
            if age > cfg.op_timeout.as_nanos() as u64 {
                report.records.push(OpRecord {
                    client: slot.id,
                    invoked_at: invoked_ns,
                    responded_at: None,
                    invocation: inv.clone(),
                    response: None,
                });
                report.retired += 1;
                slot.state = SlotState::Retired;
                continue;
            }
            if now.duration_since(last_send) > cfg.retransmit {
                for env in cached {
                    let _ = transport.send(env);
                }
                report.retransmits += 1;
                report.msgs_sent += cached.len() as u64;
                if let SlotState::Busy { last_send, .. } = &mut slot.state {
                    *last_send = now;
                }
            }
        }
    }
    report
}

/// Generates the next invocation for `slot`: a batch of distinct keys,
/// all-writes or all-reads (the CAS round structure requires homogeneous
/// batches).
fn next_inv(rng: &mut DetRng, cfg: &LoadConfig) -> MultiInv {
    let batch = cfg.batch.min(cfg.keyspace as usize).max(1);
    let mut keys: Vec<Key> = Vec::with_capacity(batch);
    while keys.len() < batch {
        let k = rng.gen_range(0..cfg.keyspace.max(1));
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    if rng.gen_bool(cfg.write_ratio) {
        let pairs: Vec<(Key, u64)> = keys.into_iter().map(|k| (k, rng.next_u64())).collect();
        MultiInv::writes(&pairs)
    } else {
        MultiInv::reads(&keys)
    }
}

fn start_op<P, T>(
    slot: &mut Slot<P>,
    cfg: &LoadConfig,
    transport: &mut T,
    epoch: Instant,
    report: &mut WorkerReport,
) where
    P: Protocol<Inv = MultiInv, Resp = MultiResp>,
    P::Msg: WireMsg,
    T: Transport,
{
    slot.ops_left -= 1;
    let inv = next_inv(&mut slot.rng, cfg);
    let invoked_ns = epoch.elapsed().as_nanos() as u64;
    let mut ctx: Ctx<P> = Ctx::new(NodeId::Client(slot.id), invoked_ns);
    slot.machine.on_invoke(inv.clone(), &mut ctx);
    let (outbox, responses) = ctx.into_effects();
    debug_assert!(responses.is_empty(), "ops cannot complete at invocation");
    let cached = send_outbox::<P, T>(transport, slot.id, outbox, report);
    slot.state = SlotState::Busy {
        inv,
        invoked_ns,
        last_send: Instant::now(),
        cached,
    };
}

fn on_envelope<P, T>(
    slots: &mut [Slot<P>],
    env: Envelope,
    _cfg: &LoadConfig,
    transport: &mut T,
    epoch: Instant,
    report: &mut WorkerReport,
) where
    P: Protocol<Inv = MultiInv, Resp = MultiResp>,
    P::Msg: WireMsg,
    T: Transport,
{
    let NodeId::Client(to) = env.to else {
        return;
    };
    let Some(slot) = slots.iter_mut().find(|s| s.id == to) else {
        return;
    };
    // A straggler reply for an already-completed (or retired) operation
    // still reaches the automaton — protocols tolerate late deliveries —
    // but malformed payloads are dropped here, never panicked on.
    let Ok(msg) = P::Msg::from_wire(&env.payload) else {
        return;
    };
    let now_ns = epoch.elapsed().as_nanos() as u64;
    let mut ctx: Ctx<P> = Ctx::new(NodeId::Client(slot.id), now_ns);
    slot.machine.on_message(env.from, msg, &mut ctx);
    let (outbox, responses) = ctx.into_effects();
    if !outbox.is_empty() {
        let cached = send_outbox::<P, T>(transport, slot.id, outbox, report);
        if let SlotState::Busy {
            cached: c,
            last_send,
            ..
        } = &mut slot.state
        {
            *c = cached;
            *last_send = Instant::now();
        }
    }
    if let Some(resp) = responses.into_iter().next() {
        if let SlotState::Busy {
            inv, invoked_ns, ..
        } = std::mem::replace(&mut slot.state, SlotState::Idle)
        {
            report.latency_ns.record(now_ns - invoked_ns);
            report.completed += 1;
            report.records.push(OpRecord {
                client: slot.id,
                invoked_at: invoked_ns,
                responded_at: Some(now_ns),
                invocation: inv,
                response: Some(resp),
            });
        }
    }
}

fn send_outbox<P, T>(
    transport: &mut T,
    me: ClientId,
    outbox: Vec<(NodeId, P::Msg)>,
    report: &mut WorkerReport,
) -> Vec<Envelope>
where
    P: Protocol,
    P::Msg: WireMsg,
    T: Transport,
{
    let mut cached = Vec::with_capacity(outbox.len());
    for (to, msg) in outbox {
        report.msgs_sent += 1;
        report.wire_bytes += P::msg_wire_bytes(&msg);
        let env = Envelope {
            from: NodeId::Client(me),
            to,
            payload: msg.to_wire(),
        };
        // Send errors drop the message; the retransmit timer retries.
        let _ = transport.send(&env);
        cached.push(env);
    }
    cached
}

/// Transport died: record every in-flight operation as incomplete.
fn drain_incomplete<P: Protocol>(slots: Vec<Slot<P>>, mut report: WorkerReport) -> WorkerReport {
    for slot in slots {
        if let SlotState::Busy {
            inv, invoked_ns, ..
        } = slot.state
        {
            report.records.push(OpRecord {
                client: slot.id,
                invoked_at: invoked_ns,
                responded_at: None,
                invocation: inv,
                response: None,
            });
            report.retired += 1;
        }
    }
    report
}
