//! Operation histories of a single read/write register.

use std::fmt;

/// Index of an operation within a [`History`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// What an operation does.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind<V> {
    /// A read of the register.
    Read,
    /// A write of the given value.
    Write(V),
}

/// One operation's interval and payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation<V> {
    /// The client the operation ran at.
    pub client: u32,
    /// Read or write.
    pub kind: OpKind<V>,
    /// Invocation time (step index; only the order matters).
    pub invoked: u64,
    /// Response time, `None` if the operation never completed.
    pub responded: Option<u64>,
    /// The value a completed read returned.
    pub returned: Option<V>,
}

impl<V> Operation<V> {
    /// Whether the operation completed.
    pub fn is_complete(&self) -> bool {
        self.responded.is_some()
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OpKind::Write(_))
    }

    /// The written value, if a write.
    pub fn written(&self) -> Option<&V> {
        match &self.kind {
            OpKind::Write(v) => Some(v),
            OpKind::Read => None,
        }
    }

    /// Whether this operation's response precedes `other`'s invocation
    /// (strict real-time order).
    pub fn precedes(&self, other: &Operation<V>) -> bool {
        match self.responded {
            Some(r) => r < other.invoked,
            None => false,
        }
    }
}

/// A history of operations on one register with initial value `initial`.
///
/// Built incrementally with [`History::begin`] / [`History::complete`], or
/// all at once with [`History::from_ops`].
#[derive(Clone, Debug)]
pub struct History<V> {
    initial: V,
    ops: Vec<Operation<V>>,
}

impl<V: Clone + Eq> History<V> {
    /// An empty history over a register initialized to `initial`.
    pub fn new(initial: V) -> History<V> {
        History {
            initial,
            ops: Vec::new(),
        }
    }

    /// Builds a history from pre-assembled operations.
    pub fn from_ops(initial: V, ops: Vec<Operation<V>>) -> History<V> {
        History { initial, ops }
    }

    /// The register's initial value.
    pub fn initial(&self) -> &V {
        &self.initial
    }

    /// Starts an operation; returns its id.
    pub fn begin(&mut self, client: u32, kind: OpKind<V>, invoked: u64) -> OpId {
        self.ops.push(Operation {
            client,
            kind,
            invoked,
            responded: None,
            returned: None,
        });
        OpId(self.ops.len() - 1)
    }

    /// Completes an operation. `returned` carries a read's result.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown, the operation already completed, or
    /// `responded` does not come after the invocation.
    pub fn complete(&mut self, id: OpId, responded: u64, returned: Option<V>) {
        let op = &mut self.ops[id.0];
        assert!(op.responded.is_none(), "operation completed twice");
        assert!(
            responded >= op.invoked,
            "response must not precede invocation"
        );
        op.responded = Some(responded);
        op.returned = returned;
    }

    /// All operations, in the order they were begun.
    pub fn ops(&self) -> &[Operation<V>] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operation by id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn op(&self, id: OpId) -> &Operation<V> {
        &self.ops[id.0]
    }

    /// Ids of all writes.
    pub fn writes(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_write())
            .map(|(i, _)| OpId(i))
    }

    /// Ids of all reads.
    pub fn reads(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.is_write())
            .map(|(i, _)| OpId(i))
    }

    /// Whether all write values are pairwise distinct and differ from the
    /// initial value — the precondition under which the register checkers
    /// are exact.
    pub fn has_unique_write_values(&self) -> bool {
        let mut seen: Vec<&V> = vec![&self.initial];
        for op in &self.ops {
            if let Some(v) = op.written() {
                if seen.contains(&v) {
                    return false;
                }
                seen.push(v);
            }
        }
        true
    }

    /// The number of *active* write operations at point `t`: writes
    /// invoked at or before `t` and not yet responded (Section 2.3's
    /// definition, evaluated at one point).
    pub fn active_writes_at(&self, t: u64) -> usize {
        self.ops
            .iter()
            .filter(|o| o.is_write() && o.invoked <= t && o.responded.is_none_or(|r| r > t))
            .count()
    }

    /// The number of active write operations *of the execution*: the
    /// supremum over all points of the number of concurrently active
    /// writes — the `ν` every Section 6 statement is parameterized by.
    pub fn max_active_writes(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| o.is_write())
            .map(|o| self.active_writes_at(o.invoked))
            .max()
            .unwrap_or(0)
    }

    /// Checks interval well-formedness: per-client operations must be
    /// sequential (a client invokes only after its previous response).
    pub fn is_well_formed(&self) -> bool {
        let mut per_client: std::collections::BTreeMap<u32, Vec<&Operation<V>>> =
            std::collections::BTreeMap::new();
        for op in &self.ops {
            per_client.entry(op.client).or_default().push(op);
        }
        for ops in per_client.values() {
            for w in ops.windows(2) {
                match w[0].responded {
                    Some(r) if r <= w[1].invoked => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut h = History::new(0u32);
        let w = h.begin(0, OpKind::Write(5), 1);
        assert!(!h.op(w).is_complete());
        h.complete(w, 4, None);
        let r = h.begin(1, OpKind::Read, 5);
        h.complete(r, 8, Some(5));
        assert_eq!(h.len(), 2);
        assert!(h.op(w).precedes(h.op(r)));
        assert!(!h.op(r).precedes(h.op(w)));
        assert_eq!(h.writes().collect::<Vec<_>>(), vec![w]);
        assert_eq!(h.reads().collect::<Vec<_>>(), vec![r]);
        assert_eq!(h.op(w).written(), Some(&5));
        assert!(h.is_well_formed());
    }

    #[test]
    fn incomplete_ops_never_precede() {
        let mut h = History::new(0u32);
        let a = h.begin(0, OpKind::Write(1), 1);
        let b = h.begin(1, OpKind::Write(2), 100);
        assert!(!h.op(a).precedes(h.op(b)));
    }

    #[test]
    fn unique_write_values_detects_duplicates() {
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 1);
        assert!(h.has_unique_write_values());
        h.begin(0, OpKind::Write(0), 10); // collides with initial
        assert!(!h.has_unique_write_values());
    }

    #[test]
    fn active_writes_measured() {
        let mut h = History::new(0u32);
        let w1 = h.begin(0, OpKind::Write(1), 0); // [0, 10]
        let w2 = h.begin(1, OpKind::Write(2), 5); // [5, 20]
        let w3 = h.begin(2, OpKind::Write(3), 6); // [6, 7]
        h.complete(w1, 10, None);
        h.complete(w2, 20, None);
        h.complete(w3, 7, None);
        h.begin(3, OpKind::Read, 6); // reads don't count
        assert_eq!(h.active_writes_at(0), 1);
        assert_eq!(h.active_writes_at(6), 3);
        assert_eq!(h.active_writes_at(15), 1);
        assert_eq!(h.active_writes_at(25), 0);
        assert_eq!(h.max_active_writes(), 3);
    }

    #[test]
    fn never_terminating_write_stays_active() {
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 0); // never completes
        assert_eq!(h.active_writes_at(1_000_000), 1);
        assert_eq!(h.max_active_writes(), 1);
    }

    #[test]
    fn empty_history_has_zero_active_writes() {
        let h = History::new(0u32);
        assert_eq!(h.max_active_writes(), 0);
    }

    #[test]
    fn well_formedness_rejects_overlapping_client_ops() {
        let mut h = History::new(0u32);
        h.begin(0, OpKind::Write(1), 1);
        h.begin(0, OpKind::Write(2), 2); // same client, previous op still open
        assert!(!h.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut h = History::new(0u32);
        let w = h.begin(0, OpKind::Write(1), 1);
        h.complete(w, 2, None);
        h.complete(w, 3, None);
    }

    #[test]
    #[should_panic(expected = "must not precede")]
    fn response_before_invocation_panics() {
        let mut h = History::new(0u32);
        let w = h.begin(0, OpKind::Write(1), 10);
        h.complete(w, 3, None);
    }
}
