//! One emulation server over TCP.
//!
//! ```text
//! shmem-server --algo abd --index 0 --addr 127.0.0.1:7000 --n 5 --f 1
//! ```
//!
//! Prints `listening on <addr>` once bound (with the real port when
//! `--addr` ends in `:0`), then serves until killed. Server state is
//! in-memory; restarting a killed server starts fresh, so production
//! use pairs this with `f`-bounded concurrent failures, exactly like
//! the paper's model.

use shmem_net::{serve_forever, NetAlgorithm, NetBackend, NetScenario};
use shmem_util::cli::Cli;

fn main() {
    let cli = Cli::new(
        "shmem-server",
        "one shared-memory emulation server over TCP",
    )
    .opt("algo", "abd", "algorithm: abd | cas | coded-cas | hashed")
    .opt("index", "0", "this server's index in 0..n")
    .opt("addr", "127.0.0.1:0", "listen address (port 0 = ephemeral)")
    .opt("n", "5", "total servers")
    .opt("f", "1", "failure tolerance")
    .opt("shards", "1", "shards (1 = every server covers every key)")
    .opt(
        "replicas",
        "5",
        "replicas per shard (ignored when shards=1)",
    )
    .opt("initial", "0", "register initial value");
    let args = cli.parse_or_exit();

    let Some(algorithm) = NetAlgorithm::parse(args.get("algo")) else {
        eprintln!("error: unknown --algo `{}`", args.get("algo"));
        std::process::exit(2);
    };
    let addr = match args.get("addr").parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: bad --addr `{}`: {e}", args.get("addr"));
            std::process::exit(2);
        }
    };

    let mut scenario = NetScenario::new(algorithm, NetBackend::Tcp);
    scenario.n = args.get_u32("n");
    scenario.f = args.get_u32("f");
    scenario.shards = args.get_u32("shards");
    scenario.replicas = args.get_u32("replicas");
    scenario.initial = args.get_u64("initial");

    let index = args.get_u32("index");
    if index >= scenario.n {
        eprintln!("error: --index {index} out of range 0..{}", scenario.n);
        std::process::exit(2);
    }

    if let Err(e) = serve_forever(&scenario, index, addr, |bound| {
        println!("listening on {bound}");
    }) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
