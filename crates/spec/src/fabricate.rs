//! The corruption-detection oracle: no completed read may return a value
//! that was never written.
//!
//! This is deliberately the *weakest* condition in the repo's hierarchy —
//! strictly below safe. A corruption adversary (see
//! `shmem-algorithms::corrupt`) legitimately destroys freshness: a
//! resurrected stale share makes reads return old-but-real values, which
//! safe/regular/atomic all reject. What a detecting protocol still owes
//! its callers is *integrity*: every read either fails visibly or returns
//! the initial value or some writer's actual value. A read returning a
//! fabricated value — decoded garbage from a tampered codeword, a
//! bit-flipped replica — is a *silent* corruption, and that is the one
//! verdict this checker issues.
//!
//! Incomplete writes still justify reads (their value may have reached a
//! quorum before the writer stalled), and reads that never completed or
//! failed visibly constrain nothing — the nemesis driver records failed
//! reads as incomplete, so detection shows up here as absence, not as a
//! violation.

use crate::history::{History, OpId};
use crate::verdict::{Verdict, Violation, Witness};

/// Checks that every completed read returns the initial value or the value
/// of some write (complete or not) in the history.
///
/// The witness lists, in read order, one justifying write per read that
/// did not return the initial value.
///
/// # Errors
///
/// [`Violation::UnjustifiedRead`] for the first read whose returned value
/// no write (and not the initial value) justifies;
/// [`Violation::Malformed`] on an ill-formed history.
pub fn check_no_fabrication<V: Clone + Eq>(history: &History<V>) -> Verdict {
    if !history.is_well_formed() {
        return Err(Violation::Malformed);
    }
    let ops = history.ops();
    let mut witness = Vec::new();
    for (ri, read) in ops.iter().enumerate() {
        if read.is_write() || read.responded.is_none() {
            continue;
        }
        let returned = read
            .returned
            .as_ref()
            .expect("completed read must carry a value");
        if returned == history.initial() {
            continue;
        }
        match (0..ops.len()).find(|&i| ops[i].written() == Some(returned)) {
            Some(wi) => witness.push(OpId(wi)),
            None => return Err(Violation::UnjustifiedRead { read: OpId(ri) }),
        }
    }
    Ok(Witness { order: witness })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpKind;

    fn w(h: &mut History<u64>, c: u32, v: u64, t0: u64, t1: u64) {
        let id = h.begin(c, OpKind::Write(v), t0);
        h.complete(id, t1, None);
    }

    fn r(h: &mut History<u64>, c: u32, got: u64, t0: u64, t1: u64) {
        let id = h.begin(c, OpKind::Read, t0);
        h.complete(id, t1, Some(got));
    }

    #[test]
    fn written_and_initial_values_are_justified() {
        let mut h = History::new(7u64);
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, 1, 2, 3);
        r(&mut h, 1, 7, 4, 5); // stale initial — fine here, not a fabrication
        assert!(check_no_fabrication(&h).is_ok());
    }

    #[test]
    fn stale_reads_are_not_fabrications() {
        // This is the separation from safe: value 1 was superseded, the
        // safe checker rejects, but nobody fabricated anything.
        let mut h = History::new(0u64);
        w(&mut h, 0, 1, 0, 1);
        w(&mut h, 0, 2, 2, 3);
        r(&mut h, 1, 1, 4, 5);
        assert!(crate::check_safe(&h).is_err());
        assert!(check_no_fabrication(&h).is_ok());
    }

    #[test]
    fn incomplete_write_justifies_a_read() {
        let mut h = History::new(0u64);
        h.begin(0, OpKind::Write(5), 0); // writer stalled mid-flight
        r(&mut h, 1, 5, 10, 11);
        assert!(check_no_fabrication(&h).is_ok());
    }

    #[test]
    fn reading_from_the_future_is_still_justified() {
        // Pure integrity: real-time order is not this checker's business.
        let mut h = History::new(0u64);
        r(&mut h, 1, 9, 0, 1);
        w(&mut h, 0, 9, 2, 3);
        assert!(check_no_fabrication(&h).is_ok());
    }

    #[test]
    fn fabricated_value_is_rejected() {
        let mut h = History::new(0u64);
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, 0xBAD, 2, 3);
        assert_eq!(
            check_no_fabrication(&h),
            Err(Violation::UnjustifiedRead { read: OpId(1) })
        );
    }

    #[test]
    fn incomplete_reads_constrain_nothing() {
        let mut h = History::new(0u64);
        h.begin(1, OpKind::Read, 0); // a detected (failed) read stays open
        assert!(check_no_fabrication(&h).is_ok());
    }

    #[test]
    fn malformed_is_rejected() {
        let mut h = History::new(0u64);
        h.begin(0, OpKind::Write(1), 0);
        w(&mut h, 0, 2, 1, 2);
        assert_eq!(check_no_fabrication(&h), Err(Violation::Malformed));
    }
}
