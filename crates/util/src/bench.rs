//! A miniature benchmarking harness with a criterion-compatible surface.
//!
//! The bench targets in `crates/bench/benches/` were written against
//! `criterion`; this module re-implements the slice of its API they use
//! (`criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`]) so `cargo bench` works
//! in a fully offline build.
//!
//! Methodology: each benchmark is warmed up, then timed over adaptive
//! batches until the measurement window is filled; the mean and minimum
//! per-iteration times are printed. No statistical regression analysis —
//! the numbers are for tracking relative cost across PRs, not for
//! micro-optimisation papers.

use std::time::{Duration, Instant};

/// An opaque value barrier; prevents the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // With `harness = false`, cargo forwards user CLI args (plus
        // `--bench`); the first non-flag argument is a name filter, as in
        // criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F>(&mut self, name: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(&name) {
            return;
        }
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up + calibration: find an iteration count that takes long
        // enough to time reliably.
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(2) || bencher.iters >= (1 << 20) {
                break;
            }
            bencher.iters *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<55} mean {:>12}  min {:>12}  ({} iters x {} samples)",
            fmt_time(mean),
            fmt_time(min),
            bencher.iters,
            sample_size,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times the closure under test; see [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated iteration count, timing the whole batch.
    pub fn iter<F, R>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Runs `routine` over fresh values from `setup`, timing only the
    /// routine — criterion's `iter_batched`. The `size` hint is accepted
    /// for compatibility; this shim always sets up one input per
    /// iteration outside the timed section, which matches every
    /// [`BatchSize`] semantically (only criterion's amortisation of
    /// timer overhead differs, and the store benches iterate
    /// millisecond-scale routines where that overhead is noise).
    pub fn iter_batched<S, F, I, R>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let _ = size;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// How setup outputs are batched relative to timing (accepted for
/// criterion-compatibility; see [`Bencher::iter_batched`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are small; criterion would batch many per timing slice.
    SmallInput,
    /// Inputs are large; criterion would batch few per timing slice.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// A named group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the volume processed per iteration (accepted for
    /// criterion-compatibility; the summary line does not derive rates).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for criterion-compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark's identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. a size.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Per-iteration data volume (accepted for criterion-compatibility).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Declares a group of benchmark functions:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_time() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(16).0, "16");
        assert_eq!(BenchmarkId::new("decode", 4).0, "decode/4");
    }
}
