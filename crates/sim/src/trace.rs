//! Execution traces: step records and operation (invoke/response) records.

use crate::ids::{ClientId, NodeId};
use std::fmt;

/// What one simulator step did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepInfo {
    /// A message was delivered from `from` to `to`.
    Delivered {
        /// Sender of the delivered message.
        from: NodeId,
        /// Receiver whose `on_message` ran.
        to: NodeId,
    },
    /// An operation was invoked at a client.
    Invoked {
        /// The invoked client.
        client: ClientId,
    },
    /// The head message of `from → to` was discarded (message loss).
    Dropped {
        /// Sender of the dropped message.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// The head message of `from → to` was re-enqueued at the tail
    /// (message duplication).
    Duplicated {
        /// Sender of the duplicated message.
        from: NodeId,
        /// Receiver of both copies.
        to: NodeId,
    },
    /// The head message of `from → to` was rotated to the tail (bounded
    /// delay past the rest of the queue).
    Delayed {
        /// Sender of the delayed message.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The directed link `from → to` was cut.
    LinkCut {
        /// Source endpoint of the cut link.
        from: NodeId,
        /// Destination endpoint.
        to: NodeId,
    },
    /// The directed link `from → to` was restored.
    LinkHealed {
        /// Source endpoint of the healed link.
        from: NodeId,
        /// Destination endpoint.
        to: NodeId,
    },
    /// A node crashed.
    Crashed {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node recovered.
    Recovered {
        /// The recovered node.
        node: NodeId,
    },
    /// A node was frozen (all its traffic delayed indefinitely).
    Frozen {
        /// The frozen node.
        node: NodeId,
    },
    /// A frozen node was unfrozen.
    Unfrozen {
        /// The unfrozen node.
        node: NodeId,
    },
    /// A node's freeze and every cut link touching it were lifted at once.
    Healed {
        /// The healed node.
        node: NodeId,
    },
    /// A corruption adversary tampered with a server's stored state
    /// (bit-flipped share, resurrected stale version, forged tag).
    CorruptedStore {
        /// The tampered server.
        node: NodeId,
        /// Protocol-defined corruption mode that was applied.
        mode: u8,
    },
    /// A corruption adversary tampered with the payload of the head
    /// message of `from → to` without touching routing.
    CorruptedMsg {
        /// Sender of the tampered message.
        from: NodeId,
        /// Receiver that will see the tampered payload.
        to: NodeId,
    },
}

impl fmt::Display for StepInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepInfo::Delivered { from, to } => write!(f, "deliver {from}->{to}"),
            StepInfo::Invoked { client } => write!(f, "invoke @{client}"),
            StepInfo::Dropped { from, to } => write!(f, "drop {from}->{to}"),
            StepInfo::Duplicated { from, to } => write!(f, "dup {from}->{to}"),
            StepInfo::Delayed { from, to } => write!(f, "delay {from}->{to}"),
            StepInfo::LinkCut { from, to } => write!(f, "cut {from}->{to}"),
            StepInfo::LinkHealed { from, to } => write!(f, "heal-link {from}->{to}"),
            StepInfo::Crashed { node } => write!(f, "crash {node}"),
            StepInfo::Recovered { node } => write!(f, "recover {node}"),
            StepInfo::Frozen { node } => write!(f, "freeze {node}"),
            StepInfo::Unfrozen { node } => write!(f, "unfreeze {node}"),
            StepInfo::Healed { node } => write!(f, "heal {node}"),
            StepInfo::CorruptedStore { node, mode } => {
                write!(f, "corrupt-store {node} mode={mode}")
            }
            StepInfo::CorruptedMsg { from, to } => write!(f, "corrupt-msg {from}->{to}"),
        }
    }
}

/// Running totals of delivered messages by channel category — the
/// communication-cost counterpart of the storage meter (the paper's
/// comparison algorithms differ in communication cost as well as
/// storage; see Section 2.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Client-to-server deliveries.
    pub client_to_server: u64,
    /// Server-to-client deliveries.
    pub server_to_client: u64,
    /// Server-to-server (gossip) deliveries.
    pub server_to_server: u64,
}

impl TrafficCounters {
    /// Total deliveries across all categories.
    pub fn total(&self) -> u64 {
        self.client_to_server + self.server_to_client + self.server_to_server
    }
}

/// One operation's lifetime in the execution, as recorded by the simulator:
/// invocation step, response step, and the typed payloads.
///
/// The consistency checkers in `shmem-spec` consume these (converted to
/// their own history type by the algorithm crates).
#[derive(Clone, Debug)]
pub struct OpRecord<I, R> {
    /// Client the operation ran at.
    pub client: ClientId,
    /// Step index at which the operation was invoked.
    pub invoked_at: u64,
    /// Step index at which the response was produced, if it completed.
    pub responded_at: Option<u64>,
    /// The invocation payload.
    pub invocation: I,
    /// The response payload, if the operation completed.
    pub response: Option<R>,
}

impl<I, R> OpRecord<I, R> {
    /// Whether the operation completed within the recorded execution.
    pub fn is_complete(&self) -> bool {
        self.responded_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completeness() {
        let open: OpRecord<&str, &str> = OpRecord {
            client: ClientId(0),
            invoked_at: 3,
            responded_at: None,
            invocation: "write",
            response: None,
        };
        assert!(!open.is_complete());
        let done = OpRecord {
            responded_at: Some(9),
            response: Some("ack"),
            ..open
        };
        assert!(done.is_complete());
    }

    #[test]
    fn step_info_display() {
        let s = StepInfo::Delivered {
            from: NodeId::client(1),
            to: NodeId::server(2),
        };
        assert_eq!(s.to_string(), "deliver c1->s2");
        assert_eq!(
            StepInfo::Invoked {
                client: ClientId(4)
            }
            .to_string(),
            "invoke @c4"
        );
    }

    #[test]
    fn traffic_totals() {
        let t = TrafficCounters {
            client_to_server: 3,
            server_to_client: 4,
            server_to_server: 5,
        };
        assert_eq!(t.total(), 12);
        assert_eq!(TrafficCounters::default().total(), 0);
    }
}
