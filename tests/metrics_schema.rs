//! Golden-file test for the metrics JSON export schema
//! (`shmem-metrics/v1`).
//!
//! The fixture under `tests/fixtures/` is written by
//! `cargo run --release --example gen_metrics_fixture`; this test re-runs
//! the identical scenario and demands byte equality, so any schema drift
//! (key order, renamed counter, bucket encoding) is caught and must be
//! accompanied by a deliberate fixture regeneration.

use shmem_algorithms::{AbdCluster, RegInv, ValueSpec};
use shmem_sim::{ClientId, NodeId};
use shmem_util::json::Json;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/metrics_schema.json")
}

/// The fixture scenario. Keep in sync with the copy in
/// `examples/gen_metrics_fixture.rs`.
fn fixture_export() -> String {
    let mut c = AbdCluster::new(3, 1, 2, ValueSpec::from_bits(64.0)).metered();
    c.begin(0, RegInv::Write(7)).expect("begin write");
    c.sim
        .duplicate_head(NodeId::client(0), NodeId::server(1))
        .expect("duplicate");
    c.sim
        .drop_head(NodeId::client(0), NodeId::server(1))
        .expect("drop");
    c.sim.fail(NodeId::server(2)); // purges the queued message to s2
    c.sim
        .run_until_op_completes(ClientId(0))
        .expect("write completes on the surviving quorum");
    c.sim.run_to_quiescence().expect("drains and audits");
    c.read(1).expect("read");
    c.metrics_json().to_pretty()
}

#[test]
fn export_matches_golden_fixture() {
    let path = fixture_path();
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\nregenerate with `cargo run --release --example gen_metrics_fixture`",
            path.display()
        )
    });
    assert_eq!(
        fixture_export(),
        golden,
        "metrics export schema drifted; if intentional, regenerate the \
         fixture with `cargo run --release --example gen_metrics_fixture`"
    );
}

/// Structural checks on the stored fixture itself, so the golden file
/// stays a valid, complete `shmem-metrics/v1` document.
#[test]
fn golden_fixture_has_the_v1_shape() {
    let doc = Json::parse(&fs::read_to_string(fixture_path()).expect("read fixture"))
        .expect("fixture parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("shmem-metrics/v1")
    );
    assert_eq!(doc.get("level").and_then(Json::as_str), Some("full"));
    let counters = doc.get("counters").expect("counters object");
    for key in [
        "baseline",
        "sent",
        "delivered",
        "dropped",
        "duplicated",
        "purged",
        "wire_bytes",
        "ops_started",
        "ops_completed",
    ] {
        assert!(counters.get(key).is_some(), "missing counters.{key}");
    }
    // The scenario exercised every ledger movement.
    assert_eq!(counters.get("dropped").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("duplicated").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("purged").and_then(Json::as_u64), Some(1));
    for key in [
        "per_server",
        "per_channel",
        "histograms",
        "gauges",
        "codecs",
    ] {
        assert!(doc.get(key).is_some(), "missing {key}");
    }
    let hist = doc.get("histograms").expect("histograms");
    for key in ["op_latency_steps", "queue_depth"] {
        let h = hist
            .get(key)
            .unwrap_or_else(|| panic!("missing histograms.{key}"));
        for field in ["count", "sum", "min", "max", "buckets"] {
            assert!(h.get(field).is_some(), "missing histograms.{key}.{field}");
        }
    }
    // Quiescent fixture: nothing deliverable remains, but the messages
    // addressed to the crashed server after its purge are still held.
    let gauges = doc.get("gauges").expect("gauges");
    assert_eq!(gauges.get("in_flight").and_then(Json::as_u64), Some(0));
    assert_eq!(gauges.get("held").and_then(Json::as_u64), Some(3));
}

/// The `codecs` section lists the shared-registry decode-plan stats for
/// each erasure geometry the cluster uses. The register-only ABD fixture
/// pins an empty list; a coded cluster exports its `(n, k)` entry with
/// hit/miss counters.
#[test]
fn codecs_section_lists_cluster_geometries() {
    use shmem_algorithms::harness::CasCluster;

    let doc = Json::parse(&fs::read_to_string(fixture_path()).expect("read fixture"))
        .expect("fixture parses");
    let arr = doc
        .get("codecs")
        .and_then(Json::as_arr)
        .expect("codecs array");
    assert!(arr.is_empty(), "ABD fixture uses no codec");

    let mut c = CasCluster::new(5, 1, 2, ValueSpec::from_bits(64.0)).metered();
    c.write(0, 7).expect("write");
    let doc = c.metrics_json();
    let arr = doc
        .get("codecs")
        .and_then(Json::as_arr)
        .expect("codecs array");
    assert_eq!(arr.len(), 1);
    let entry = &arr[0];
    assert_eq!(entry.get("n").and_then(Json::as_u64), Some(5));
    assert_eq!(entry.get("k").and_then(Json::as_u64), Some(3));
    for field in ["decode_plan_hits", "decode_plan_misses"] {
        assert!(entry.get(field).is_some(), "missing codecs[0].{field}");
    }
}
