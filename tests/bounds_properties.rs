//! Property-based tests on the bound formulas: ordering relations,
//! monotonicity, convergence and crossover laws over randomized
//! parameters.

use shmem_emulation::bounds::{lower, upper, Ratio, SystemParams, ValueDomain};
use shmem_util::prop::prelude::*;

fn arb_params() -> impl Strategy<Value = SystemParams> {
    (2u32..200).prop_flat_map(|n| {
        (Just(n), 1u32..n).prop_map(|(n, f)| SystemParams::new(n, f).expect("valid by range"))
    })
}

proptest! {
    #[test]
    fn hierarchy_of_lower_bounds(p in arb_params()) {
        // 5.1 <= 4.1 always: restricting to no-gossip strengthens the
        // bound.
        if p.supports_no_gossip_bound() {
            prop_assert!(lower::universal_total(p) <= lower::no_gossip_total(p));
        }
        // B.1 <= 5.1 exactly when N - f >= 2 (2N/(N-f+2) >= N/(N-f) iff
        // N-f >= 2); at N - f = 1 the old bound is the stronger one.
        if p.quorum() >= 2 {
            prop_assert!(lower::singleton_total(p) <= lower::universal_total(p));
        } else {
            prop_assert!(lower::singleton_total(p) >= lower::universal_total(p));
        }
    }

    #[test]
    fn theorem65_between_b1_and_replication(p in arb_params(), nu in 1u32..300) {
        let b = lower::multi_version_total(p, nu);
        prop_assert!(b >= lower::singleton_total(p));
        prop_assert!(b <= upper::replication_total(p));
    }

    #[test]
    fn theorem65_monotone_and_saturating(p in arb_params(), nu in 0u32..300) {
        let here = lower::multi_version_total(p, nu);
        let next = lower::multi_version_total(p, nu + 1);
        prop_assert!(next >= here);
        // Saturation at nu >= f+1.
        if nu > p.f() {
            prop_assert_eq!(here, Ratio::from(p.f() + 1));
        }
    }

    #[test]
    fn theorem65_below_coded_upper(p in arb_params(), nu in 1u32..300) {
        prop_assert!(lower::multi_version_total(p, nu) <= upper::coded_total(p, nu));
    }

    #[test]
    fn crossover_is_exact(p in arb_params()) {
        let x = upper::coding_replication_crossover(p);
        prop_assert!(x >= 1);
        prop_assert!(!upper::coding_beats_replication(p, x));
        if x > 1 {
            prop_assert!(upper::coding_beats_replication(p, x - 1));
        }
    }

    #[test]
    fn finite_v_below_asymptote(p in arb_params(), bits in 2u32..512, nu in 1u32..40) {
        let d = ValueDomain::from_bits(bits);
        let l = d.log2_card();
        prop_assert!(
            lower::singleton_total_bits(p, d) <= lower::singleton_total(p).to_f64() * l + 1e-6
        );
        prop_assert!(
            lower::universal_total_bits(p, d) <= lower::universal_total(p).to_f64() * l + 1e-6
        );
        prop_assert!(
            lower::multi_version_total_bits(p, nu, d)
                <= lower::multi_version_total(p, nu).to_f64() * l + 1e-6
        );
        // And all are nonnegative (clamped).
        prop_assert!(lower::universal_total_bits(p, d) >= 0.0);
        prop_assert!(lower::multi_version_total_bits(p, nu, d) >= 0.0);
    }

    #[test]
    fn max_bounds_are_total_over_n(p in arb_params(), nu in 1u32..100) {
        let n = Ratio::from(p.n());
        prop_assert_eq!(lower::singleton_max(p) * n, lower::singleton_total(p));
        prop_assert_eq!(lower::universal_max(p) * n, lower::universal_total(p));
        prop_assert_eq!(
            lower::multi_version_max(p, nu) * n,
            lower::multi_version_total(p, nu)
        );
    }

    #[test]
    fn best_total_dominates_components(p in arb_params(), nu in 1u32..60, gossip: bool) {
        let best = lower::best_total(p, gossip, Some(nu));
        prop_assert!(best >= lower::singleton_total(p));
        prop_assert!(best >= lower::universal_total(p));
        prop_assert!(best >= lower::multi_version_total(p, nu));
    }

    #[test]
    fn ratio_arithmetic_laws(
        a in -1000i128..1000, b in 1i128..1000,
        c in -1000i128..1000, d in 1i128..1000,
    ) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x + y) - y, x);
        if y != Ratio::ZERO {
            prop_assert_eq!((x / y) * y, x);
        }
        prop_assert_eq!(x * (y + y), x * y + x * y);
    }

    #[test]
    fn universal_vs_singleton_ratio_approaches_two(f in 1u32..20) {
        let big = SystemParams::new(100_000 + f, f).unwrap();
        let r = (lower::universal_total(big) / lower::singleton_total(big)).to_f64();
        prop_assert!((r - 2.0).abs() < 0.001, "ratio={r}");
    }
}

#[test]
fn domain_binomial_matches_exact_for_small_cards() {
    for card in 3u128..=30 {
        let d = ValueDomain::from_cardinality(card).unwrap();
        for k in 0..=4u32 {
            let exact = shmem_emulation::bounds::util::log2_binomial(card - 1, k);
            let got = d.log2_binomial_card_minus_one(k);
            if exact.is_finite() {
                assert!((exact - got).abs() < 1e-9, "card={card} k={k}");
            } else {
                assert_eq!(got, f64::NEG_INFINITY);
            }
        }
    }
}
