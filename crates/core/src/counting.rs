//! The counting arguments — the injective mappings at the heart of
//! Theorems B.1, 4.1 and 5.1, verified by enumeration over small domains.
//!
//! * **Theorem B.1** (Appendix B): the map `v ↦ ~S^{(v)}` from written
//!   values to surviving-server state vectors (after a solo write of `v`
//!   and full message delivery) must be injective — hence
//!   `Π|S_i| ≥ |V|` over every surviving subset.
//! * **Theorems 4.1 / 5.1** (Sections 4.3.3 / 5.3.2): the map
//!   `(v1, v2) ↦ ~S^{(v1,v2)}` from ordered pairs of distinct values to
//!   critical-pair state vectors must be injective — hence
//!   `Π|S_i| · (N−f) · max|S_i| ≥ |V|(|V|−1)`.
//!
//! Running these maps against a real algorithm over an enumerable domain
//! both *validates the proof mechanics* (the maps really are injective for
//! correct algorithms) and *measures* the per-server state-space footprint
//! the theorems bound.

use crate::critical::{find_critical_pair_with, CriticalError, CriticalPair};
use crate::execution::AlphaExecution;
use crate::probe::ProbeEngine;
use shmem_algorithms::reg::{RegInv, RegResp};
use shmem_algorithms::value::Value;
use shmem_sim::{ClientId, Protocol, Sim};
use std::collections::{BTreeMap, BTreeSet};

/// Result of the Appendix B (Theorem B.1) enumeration.
#[derive(Clone, Debug, PartialEq)]
pub struct SingletonReport {
    /// The enumerated domain.
    pub domain: Vec<Value>,
    /// Whether `v ↦ ~S^{(v)}` was injective.
    pub injective: bool,
    /// Colliding value pairs, if any.
    pub collisions: Vec<(Value, Value)>,
    /// Distinct observed states per surviving-server position.
    pub distinct_states: Vec<usize>,
}

impl SingletonReport {
    /// `Σ log2(observed |S_i|)` — a lower estimate of the subset's total
    /// storage, which Theorem B.1 says must reach `log2 |V|`.
    pub fn observed_bits(&self) -> f64 {
        self.distinct_states
            .iter()
            .map(|&c| (c as f64).log2())
            .sum()
    }

    /// The Theorem B.1 right-hand side for the enumerated domain.
    pub fn required_bits(&self) -> f64 {
        (self.domain.len() as f64).log2()
    }

    /// Whether the observed profile satisfies the theorem's inequality
    /// (guaranteed by injectivity; exposed for reporting).
    pub fn inequality_holds(&self) -> bool {
        self.observed_bits() >= self.required_bits() - 1e-9
    }
}

/// Runs the Appendix B construction for every value of `domain`: fresh
/// world from `make_sim`, fail the last `f` servers, complete `write(v)`,
/// deliver all remaining messages, record the surviving servers' states.
///
/// # Panics
///
/// Panics if a write fails to terminate (the algorithm must tolerate `f`
/// failures) or if `domain` has fewer than two values.
pub fn singleton_counting<P, F>(
    make_sim: F,
    writer: ClientId,
    f: u32,
    domain: &[Value],
) -> SingletonReport
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P> + Sync,
{
    singleton_counting_with(&ProbeEngine::sequential(), make_sim, writer, f, domain)
}

/// [`singleton_counting`] through a [`ProbeEngine`]: the per-value solo
/// executions are independent, so they fan out over the engine's workers;
/// the injectivity fold then walks the collected state vectors in domain
/// order, making the report identical to the sequential one for any worker
/// count.
pub fn singleton_counting_with<P, F>(
    engine: &ProbeEngine,
    make_sim: F,
    writer: ClientId,
    f: u32,
    domain: &[Value],
) -> SingletonReport
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P> + Sync,
{
    assert!(domain.len() >= 2, "need at least two values to count");
    let states: Vec<Vec<u64>> = engine.map(domain.len(), |i| {
        let v = domain[i];
        let mut sim = make_sim();
        sim.fail_last_servers(f);
        sim.invoke(writer, RegInv::Write(v))
            .expect("writer is available");
        sim.run_until_op_completes(writer)
            .expect("write must terminate with <= f failures");
        // "At P̃(v), all the channels in the system act, delivering all
        // their messages" (Appendix B).
        sim.run_to_quiescence().expect("delivery terminates");

        let all = sim.server_digests();
        (0..sim.server_count())
            .filter(|&s| !sim.is_failed(shmem_sim::NodeId::server(s as u32)))
            .map(|s| all[s])
            .collect()
    });

    let mut vectors: BTreeMap<Vec<u64>, Value> = BTreeMap::new();
    let mut collisions = Vec::new();
    let mut per_position: Vec<BTreeSet<u64>> = Vec::new();
    for (&v, surviving) in domain.iter().zip(&states) {
        if per_position.is_empty() {
            per_position = vec![BTreeSet::new(); surviving.len()];
        }
        for (slot, &d) in per_position.iter_mut().zip(surviving) {
            slot.insert(d);
        }
        if let Some(&prev) = vectors.get(surviving) {
            collisions.push((prev, v));
        } else {
            vectors.insert(surviving.clone(), v);
        }
    }

    SingletonReport {
        domain: domain.to_vec(),
        injective: collisions.is_empty(),
        collisions,
        distinct_states: per_position.iter().map(BTreeSet::len).collect(),
    }
}

/// Result of the Theorem 4.1 / 5.1 pairwise enumeration.
#[derive(Clone, Debug, PartialEq)]
pub struct CountingReport {
    /// Number of ordered pairs enumerated: `|V|·(|V|−1)`.
    pub pairs: usize,
    /// Whether `(v1,v2) ↦ ~S^{(v1,v2)}` was injective.
    pub injective: bool,
    /// Colliding pair-of-pairs, if any.
    pub collisions: Vec<((Value, Value), (Value, Value))>,
    /// Distinct observed `Q₁` states per surviving-server position.
    pub distinct_states_q1: Vec<usize>,
    /// Distinct observed `(changed index, Q₂ state)` combinations.
    pub distinct_change_records: usize,
    /// Pairs whose critical-pair search failed (empty for a regular
    /// algorithm; non-empty output is a *refutation* of the algorithm's
    /// regularity).
    pub failures: Vec<((Value, Value), CriticalError)>,
}

impl CountingReport {
    /// Left-hand side of the cardinality inequality, in bits:
    /// `Σ log2|S_i^obs| + log2(#change records)`.
    pub fn observed_bits(&self) -> f64 {
        let sum: f64 = self
            .distinct_states_q1
            .iter()
            .map(|&c| (c as f64).log2())
            .sum();
        sum + (self.distinct_change_records.max(1) as f64).log2()
    }

    /// Right-hand side: `log2(|V|·(|V|−1))`.
    pub fn required_bits(&self) -> f64 {
        (self.pairs as f64).log2()
    }

    /// Whether the observed profile satisfies the theorem's inequality.
    pub fn inequality_holds(&self) -> bool {
        self.observed_bits() >= self.required_bits() - 1e-9
    }
}

/// Runs the Section 4.3.3 (or, with `flush_gossip`, Section 5.3.2)
/// enumeration: for every ordered pair of distinct values in `domain`,
/// build `α^{(v1,v2)}`, locate its critical pair, and collect the
/// `~S^{(v1,v2)}` vector. Verifies injectivity of the map.
///
/// # Panics
///
/// Panics if `domain` has fewer than two values or an `α` execution cannot
/// be built (liveness failure under `f` crashes).
pub fn pairwise_counting<P, F>(
    make_sim: F,
    writer: ClientId,
    reader: ClientId,
    f: u32,
    domain: &[Value],
    flush_gossip: bool,
    seeds: u64,
) -> CountingReport
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P> + Sync,
    Sim<P>: Send + Sync,
{
    pairwise_counting_with(
        &ProbeEngine::sequential(),
        make_sim,
        writer,
        reader,
        f,
        domain,
        flush_gossip,
        seeds,
    )
}

/// [`pairwise_counting`] through a [`ProbeEngine`]: the `|V|·(|V|−1)`
/// ordered pairs fan out over the engine's workers — each worker builds
/// its pair's `α^{(v1,v2)}` and runs the critical-pair search inline
/// through a cache-sharing sequential view — and the injectivity fold then
/// walks the results in pair-enumeration order. The report is identical
/// to the sequential one for any worker count (asserted by the
/// `engine_parity` integration tests); this fan-out is where the small-|V|
/// counting verifiers get their multi-core speedup.
#[allow(clippy::too_many_arguments)]
pub fn pairwise_counting_with<P, F>(
    engine: &ProbeEngine,
    make_sim: F,
    writer: ClientId,
    reader: ClientId,
    f: u32,
    domain: &[Value],
    flush_gossip: bool,
    seeds: u64,
) -> CountingReport
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    F: Fn() -> Sim<P> + Sync,
    Sim<P>: Send + Sync,
{
    assert!(domain.len() >= 2, "need at least two values to count");
    let ordered: Vec<(Value, Value)> = domain
        .iter()
        .flat_map(|&v1| domain.iter().map(move |&v2| (v1, v2)))
        .filter(|&(v1, v2)| v1 != v2)
        .collect();
    let results: Vec<Result<CriticalPair, CriticalError>> = engine.map(ordered.len(), |i| {
        let (v1, v2) = ordered[i];
        let alpha = AlphaExecution::build(make_sim(), writer, f, v1, v2)
            .expect("alpha execution must complete under <= f failures");
        find_critical_pair_with(
            &engine.sequential_view(),
            &alpha,
            reader,
            flush_gossip,
            seeds,
        )
    });

    let mut vectors: BTreeMap<(Vec<u64>, usize, u64), (Value, Value)> = BTreeMap::new();
    let mut collisions = Vec::new();
    let mut failures = Vec::new();
    let mut per_position: Vec<BTreeSet<u64>> = Vec::new();
    let mut change_records: BTreeSet<(usize, u64)> = BTreeSet::new();
    let pairs = ordered.len();

    for (&(v1, v2), result) in ordered.iter().zip(results) {
        match result {
            Ok(pair) => {
                if per_position.is_empty() {
                    per_position = vec![BTreeSet::new(); pair.states_q1.len()];
                }
                for (slot, &d) in per_position.iter_mut().zip(&pair.states_q1) {
                    slot.insert(d);
                }
                change_records.insert((pair.changed_server.unwrap_or(0), pair.state_q2));
                let key = pair.state_vector();
                if let Some(&prev) = vectors.get(&key) {
                    collisions.push((prev, (v1, v2)));
                } else {
                    vectors.insert(key, (v1, v2));
                }
            }
            Err(e) => failures.push(((v1, v2), e)),
        }
    }

    CountingReport {
        pairs,
        injective: collisions.is_empty() && failures.is_empty(),
        collisions,
        distinct_states_q1: per_position.iter().map(BTreeSet::len).collect(),
        distinct_change_records: change_records.len(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_algorithms::abd::{Abd, AbdClient, AbdServer};
    use shmem_algorithms::cas::{Cas, CasClient, CasConfig, CasServer};
    use shmem_algorithms::lossy::{Lossy, LossyServer};
    use shmem_algorithms::value::ValueSpec;
    use shmem_sim::{ServerId, SimConfig};

    fn abd_world() -> Sim<Abd> {
        let spec = ValueSpec::from_cardinality(8);
        Sim::new(
            SimConfig::without_gossip(),
            (0..5).map(|_| AbdServer::new(0, spec)).collect(),
            (0..2).map(|c| AbdClient::new(5, c)).collect(),
        )
    }

    fn cas_world() -> Sim<Cas> {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_cardinality(8));
        Sim::new(
            SimConfig::without_gossip(),
            (0..5)
                .map(|i| CasServer::new(cfg, ServerId(i), 0))
                .collect(),
            (0..2).map(|c| CasClient::new(cfg, c)).collect(),
        )
    }

    fn lossy_world(kept_bits: u32) -> Sim<Lossy> {
        let spec = ValueSpec::from_cardinality(8);
        Sim::new(
            SimConfig::without_gossip(),
            (0..5)
                .map(|_| LossyServer::new(0, kept_bits, spec))
                .collect(),
            (0..2).map(|c| AbdClient::new(5, c)).collect(),
        )
    }

    #[test]
    fn abd_singleton_map_is_injective() {
        let report = singleton_counting(abd_world, ClientId(0), 2, &[1, 2, 3, 4, 5, 6, 7]);
        assert!(report.injective, "collisions: {:?}", report.collisions);
        assert!(report.inequality_holds());
        // ABD: every surviving server ends with the written value, so each
        // position saw all 7 states.
        assert_eq!(report.distinct_states, vec![7, 7, 7]);
    }

    #[test]
    fn cas_singleton_map_is_injective() {
        let report = singleton_counting(cas_world, ClientId(0), 1, &[1, 2, 3, 4]);
        assert!(report.injective);
        assert!(report.inequality_holds());
        assert_eq!(report.distinct_states.len(), 4); // 5 servers, 1 failed
    }

    #[test]
    fn lossy_singleton_map_collides() {
        // Servers keep 1 bit: at most 2 states per position, so over a
        // domain of 4 values the map must collide — the Theorem B.1
        // counting argument detects the cheat through non-injectivity.
        let report = singleton_counting(|| lossy_world(1), ClientId(0), 2, &[0, 1, 2, 3]);
        assert!(!report.injective);
        assert!(!report.collisions.is_empty());
        // Note the *marginal* inequality 3 servers x 1 bit >= log2(4) still
        // holds here — the violation is in the joint state space, which is
        // exactly why the theorem's proof argues via injectivity.
        assert!(report.observed_bits() >= report.required_bits());
    }

    #[test]
    fn lossy_singleton_marginals_fail_for_wide_domain() {
        // Over 16 values, 3 surviving 1-bit servers cannot even satisfy the
        // marginal form: 3 bits < log2(16) = 4.
        let domain: Vec<u64> = (0..16).collect();
        let report = singleton_counting(|| lossy_world(1), ClientId(0), 2, &domain);
        assert!(!report.injective);
        assert!(report.observed_bits() < report.required_bits());
        assert!(!report.inequality_holds());
    }

    #[test]
    fn abd_pairwise_map_is_injective() {
        let domain = [1, 2, 3];
        let report = pairwise_counting(abd_world, ClientId(0), ClientId(1), 2, &domain, false, 2);
        assert_eq!(report.pairs, 6);
        assert!(
            report.injective,
            "collisions={:?} failures={:?}",
            report.collisions, report.failures
        );
        assert!(report.inequality_holds());
    }

    #[test]
    fn cas_pairwise_map_is_injective() {
        let domain = [1, 2, 3];
        let report = pairwise_counting(cas_world, ClientId(0), ClientId(1), 1, &domain, false, 2);
        assert_eq!(report.pairs, 6);
        assert!(
            report.injective,
            "collisions={:?} failures={:?}",
            report.collisions, report.failures
        );
    }

    #[test]
    fn lossy_pairwise_enumeration_refutes_regularity() {
        // With 1-bit servers, a write of 2 or 3 is truncated, so probes
        // return values outside {v1, v2}: the critical-pair search fails,
        // refuting regularity exactly as the theorems predict for an
        // algorithm below the bound.
        let domain = [1, 2, 3];
        let report = pairwise_counting(
            || lossy_world(1),
            ClientId(0),
            ClientId(1),
            2,
            &domain,
            false,
            0,
        );
        assert!(!report.injective);
        assert!(!report.failures.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn tiny_domain_rejected() {
        let _ = singleton_counting(abd_world, ClientId(0), 2, &[1]);
    }
}
