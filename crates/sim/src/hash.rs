//! State digesting.

use std::hash::{Hash, Hasher};

/// A 64-bit digest of any hashable state, used by the proof machinery to
/// compare server/world states across forked executions.
///
/// Uses a fixed-key SipHash-like construction via `DefaultHasher` seeded
/// identically on every call, so digests are stable within a process run
/// (which is all the counting arguments need).
///
/// ```
/// use shmem_sim::hash_of;
///
/// assert_eq!(hash_of(&(1u32, "x")), hash_of(&(1u32, "x")));
/// assert_ne!(hash_of(&1u32), hash_of(&2u32));
/// ```
pub fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Combines a sequence of digests order-sensitively into one.
pub fn combine(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for d in digests {
        d.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_within_process() {
        let a = hash_of(&vec![1u8, 2, 3]);
        let b = hash_of(&vec![1u8, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine([1, 2, 3]), combine([3, 2, 1]));
        assert_eq!(combine([1, 2, 3]), combine([1, 2, 3]));
    }

    #[test]
    fn combine_distinguishes_length() {
        assert_ne!(combine([]), combine([0]));
        assert_ne!(combine([1]), combine([1, 1]));
    }
}
