//! Sweep audits: measured storage of every algorithm, across geometries
//! and concurrency levels, must respect every applicable lower bound.

use shmem_emulation::algorithms::harness::{run_concurrent_workload, AbdCluster, CasCluster};
use shmem_emulation::algorithms::value::ValueSpec;
use shmem_emulation::bounds::{Bound, SystemParams, ValueDomain};
use shmem_emulation::core::audit::StorageAudit;

#[test]
fn abd_audit_sweep() {
    for (n, f) in [(3u32, 1u32), (5, 2), (7, 3), (9, 4)] {
        for nu in 1..=3u32 {
            let p = SystemParams::new(n, f).unwrap();
            let mut c = AbdCluster::new(n, f, nu + 1, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, nu, 1, 2, 17).expect("workload");
            let r =
                StorageAudit::new("abd", p, ValueDomain::from_bits(64), nu).assess(&c.storage());
            assert!(r.lower_bounds_respected(), "N={n} f={f} nu={nu}: {r}");
            // ABD's total is exactly N values.
            assert!((r.measured_total_normalized - n as f64).abs() < 1e-9);
            // All raw constraints hold.
            assert!(r.constraints.iter().all(|k| k.holds()), "{r}");
        }
    }
}

#[test]
fn cas_audit_sweep() {
    for (n, f) in [(5u32, 1u32), (7, 2), (9, 3), (9, 2)] {
        for nu in 1..=3u32 {
            let p = SystemParams::new(n, f).unwrap();
            let mut c = CasCluster::new(n, f, nu + 1, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, nu, 1, 2, 23).expect("workload");
            let r = StorageAudit::new("cas", p, ValueDomain::from_bits(64), nu)
                .unconditional_liveness(false)
                .assess(&c.storage());
            assert!(r.lower_bounds_respected(), "N={n} f={f} nu={nu}: {r}");
            // Theorem 6.5 is the binding applicable bound for CAS.
            let row = r.row(Bound::MultiVersion65);
            assert_eq!(row.consistent, Some(true), "N={n} f={f} nu={nu}");
        }
    }
}

#[test]
fn casgc_storage_bounded_but_above_theorem65() {
    // CASGC caps storage via GC; even so, Theorem 6.5's bound (which
    // applies thanks to its single value-dependent phase) must hold.
    for delta in 0..=2u32 {
        let p = SystemParams::new(7, 2).unwrap();
        let mut c = CasCluster::with_gc(7, 2, delta, 3, ValueSpec::from_bits(64.0));
        run_concurrent_workload(&mut c, 2, 1, 3, 31).expect("workload");
        let r = StorageAudit::new("casgc", p, ValueDomain::from_bits(64), 2)
            .unconditional_liveness(false)
            .assess(&c.storage());
        assert!(r.lower_bounds_respected(), "delta={delta}: {r}");
    }
}

#[test]
fn measured_shape_matches_figure1_story() {
    // The qualitative Figure 1 shape on a real system: the coded cost
    // grows with nu while the replication cost does not, and the measured
    // coded line eventually crosses the measured ABD line.
    let spec = ValueSpec::from_bits(64.0);
    let mut abd_totals = Vec::new();
    let mut cas_totals = Vec::new();
    for nu in 1..=5u32 {
        let mut abd = AbdCluster::new(21, 5, nu + 1, spec);
        run_concurrent_workload(&mut abd, nu, 1, 1, 3).expect("abd");
        abd_totals.push(abd.storage().peak_total_bits / 64.0);

        let mut cas = CasCluster::new(21, 5, nu + 1, spec);
        run_concurrent_workload(&mut cas, nu, 1, 1, 3).expect("cas");
        cas_totals.push(cas.storage().peak_total_bits / 64.0);
    }
    // ABD flat.
    assert!(abd_totals.iter().all(|&t| (t - abd_totals[0]).abs() < 1e-9));
    // CAS nondecreasing, strictly increasing overall.
    assert!(cas_totals.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    assert!(cas_totals[4] > cas_totals[0]);
    // Coding wins at nu = 1, replication wins by nu = 5 on this geometry
    // (k = 11, so ~6 versions x 21/11 ~ 11.5 > ... ABD flat at 21).
    assert!(cas_totals[0] < abd_totals[0]);
}
