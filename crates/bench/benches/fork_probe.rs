//! Benchmarks for the fork-efficient snapshot engine and the parallel
//! probe engine (ISSUE: fork throughput, probe cache hit rate, and the
//! sequential-vs-parallel valency/counting search).
//!
//! The headline comparison is `counting/pairwise_abd/{workers}`: the same
//! small-|V| pairwise counting verification run on 1, 2, and 4 probe
//! workers. Verdicts are bit-identical across the grid (asserted by
//! `crates/core/tests/engine_parity.rs`); only the wall-clock changes.

use shmem_algorithms::abd::{Abd, AbdClient, AbdServer};
use shmem_algorithms::value::ValueSpec;
use shmem_core::counting::pairwise_counting_with;
use shmem_core::critical::find_critical_pair_with;
use shmem_core::execution::AlphaExecution;
use shmem_core::probe::ProbeEngine;
use shmem_core::valency::observed_values_at;
use shmem_sim::{ClientId, Sim, SimConfig};
use shmem_util::bench::{black_box, BenchmarkId, Criterion};
use shmem_util::{criterion_group, criterion_main};

const WORKER_GRID: [usize; 3] = [1, 2, 4];

fn abd_world() -> Sim<Abd> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| AbdServer::new(0, spec)).collect(),
        (0..3).map(|c| AbdClient::new(5, c)).collect(),
    )
}

/// Fork throughput: an Arc-backed copy-on-write fork is a handful of
/// refcount bumps, independent of world size, versus the old deep clone
/// which copied every server, channel queue, and the op log.
fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork");
    group.sample_size(30);

    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    let point = alpha.snapshot(alpha.len() / 2).clone();

    group.bench_function("cow_fork", |b| b.iter(|| black_box(point.fork())));

    group.bench_function("fork_then_first_write", |b| {
        // Forces one copy-on-write promotion: deliver a step on the fork.
        b.iter(|| {
            let mut fork = point.fork();
            fork.step_fair();
            black_box(fork)
        })
    });

    group.bench_function("cached_digest", |b| {
        // The snapshot digest is computed once and reread from the cache.
        b.iter(|| black_box(point.digest()))
    });

    group.bench_function("fresh_digest", |b| {
        // Digesting a freshly forked (uncached) world pays the full walk.
        b.iter(|| black_box(point.fork().into_snapshot().digest()))
    });

    group.finish();
}

/// Probe cache effectiveness: the same valency question asked of the same
/// point is answered from the verdict cache; a cold engine pays the full
/// probe every time.
fn bench_probe_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_cache");
    group.sample_size(20);

    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    let mid = alpha.len() / 2;

    group.bench_function("cold_engine", |b| {
        b.iter(|| {
            let engine = ProbeEngine::sequential();
            black_box(observed_values_at(
                &engine,
                alpha.snapshot(mid),
                ClientId(0),
                ClientId(1),
                false,
                4,
            ))
        })
    });

    let warm = ProbeEngine::sequential();
    // Populate the cache once; the timed loop then hits on every probe.
    observed_values_at(
        &warm,
        alpha.snapshot(mid),
        ClientId(0),
        ClientId(1),
        false,
        4,
    );
    group.bench_function("warm_engine", |b| {
        b.iter(|| {
            black_box(observed_values_at(
                &warm,
                alpha.snapshot(mid),
                ClientId(0),
                ClientId(1),
                false,
                4,
            ))
        })
    });

    group.finish();
}

/// Sequential vs parallel search over the worker grid: the critical-pair
/// scan and the full small-|V| pairwise counting verification.
fn bench_parallel_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting");
    group.sample_size(10);

    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    for workers in WORKER_GRID {
        group.bench_with_input(
            BenchmarkId::new("critical_pair_abd", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let engine = ProbeEngine::with_workers(workers);
                    black_box(
                        find_critical_pair_with(&engine, &alpha, ClientId(1), false, 4).unwrap(),
                    )
                })
            },
        );
    }

    let domain = [1, 2, 3, 4];
    for workers in WORKER_GRID {
        group.bench_with_input(
            BenchmarkId::new("pairwise_abd", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let engine = ProbeEngine::with_workers(workers);
                    black_box(pairwise_counting_with(
                        &engine,
                        abd_world,
                        ClientId(0),
                        ClientId(1),
                        2,
                        &domain,
                        false,
                        2,
                    ))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(
    benches,
    bench_fork,
    bench_probe_cache,
    bench_parallel_search
);
criterion_main!(benches);
