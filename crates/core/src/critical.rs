//! Critical-pair search — Definition 4.7 and Lemmas 4.6 / 4.8, executable.
//!
//! A *critical pair* `(Q₁, Q₂)` is a pair of adjacent points of
//! `α^{(v1,v2)}` such that `Q₁` is 1-valent and `Q₂` is not. Lemma 4.6
//! guarantees one exists (P₀ is 1-valent, P_M is not); Lemma 4.8 shows at
//! most one non-failing server changes state across the pair. The proofs'
//! `~S^{(v1,v2)}` vector is assembled from the pair: the surviving servers'
//! states at `Q₁`, the index of the server that changed, and its state at
//! `Q₂`.

use crate::execution::AlphaExecution;
use crate::probe::ProbeEngine;
use crate::valency::observed_values_at;
use shmem_algorithms::reg::{RegInv, RegResp};
use shmem_sim::{ClientId, Protocol, Sim};
use std::collections::BTreeSet;

/// A located critical pair with the data the counting argument needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPair {
    /// `Q₁ = P_i`: the last 1-valent point's index.
    pub index: usize,
    /// Digests of the surviving servers' states at `Q₁` (failed servers
    /// excluded), in server order.
    pub states_q1: Vec<u64>,
    /// Index (into the surviving-server order) of the single server whose
    /// state differs between `Q₁` and `Q₂`; `None` if no server changed
    /// (the step touched a client or channel only).
    pub changed_server: Option<usize>,
    /// The changed server's state digest at `Q₂` (equal to its `Q₁` digest
    /// if no server changed).
    pub state_q2: u64,
}

impl CriticalPair {
    /// The `~S^{(v1,v2)}` vector of Section 4.3.3: surviving-server states
    /// at `Q₁`, the changed-server index, and its state at `Q₂`, flattened
    /// into a hashable tuple.
    pub fn state_vector(&self) -> (Vec<u64>, usize, u64) {
        (
            self.states_q1.clone(),
            self.changed_server.unwrap_or(0),
            self.state_q2,
        )
    }
}

/// Errors from the critical-pair search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CriticalError {
    /// `P₀` was not 1-valent — the probed algorithm violates regularity
    /// (a read after `write(v1)` completed did not return `v1`).
    P0NotOneValent {
        /// What the probe observed instead.
        observed: Vec<u64>,
    },
    /// Every point was 1-valent, including `P_M` — the probed algorithm
    /// violates regularity (a read after `write(v2)` completed returned
    /// `v1`).
    NoTransition,
}

impl std::fmt::Display for CriticalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CriticalError::P0NotOneValent { observed } => {
                write!(f, "P0 is not 1-valent; probe observed {observed:?}")
            }
            CriticalError::NoTransition => {
                write!(f, "no 1-valent to non-1-valent transition exists")
            }
        }
    }
}

impl std::error::Error for CriticalError {}

/// Locates a critical pair in `alpha`.
///
/// 1-valency of a point is established existentially by sampling
/// `seeds + 1` extension schedules ([`observed_values`]); a point counts as
/// 1-valent if *any* sampled extension's read returns `v1`. The search
/// finds the largest 1-valent index `i` (Lemma 4.6's construction) and
/// returns `(P_i, P_{i+1})` with the Lemma 4.8 state data.
///
/// `seeds = 0` uses only the deterministic fair probe.
///
/// # Errors
///
/// [`CriticalError`] if the execution has no transition — which means the
/// probed algorithm is not regular.
pub fn find_critical_pair<P>(
    alpha: &AlphaExecution<P>,
    reader: ClientId,
    flush_gossip: bool,
    seeds: u64,
) -> Result<CriticalPair, CriticalError>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    find_critical_pair_with(
        &ProbeEngine::sequential(),
        alpha,
        reader,
        flush_gossip,
        seeds,
    )
}

/// [`find_critical_pair`] through a [`ProbeEngine`]: the reverse scan for
/// the largest 1-valent point proceeds in chunks whose valency probes fan
/// out over the engine's workers, and every probe verdict is memoized.
///
/// The verdict is *bit-identical* to the sequential scan for any worker
/// count: a chunk may probe a few more points than the early-exiting
/// sequential loop, but the chosen index — the largest 1-valent one — and
/// everything derived from it are the same (asserted by the
/// `engine_parity` integration tests).
pub fn find_critical_pair_with<P>(
    engine: &ProbeEngine,
    alpha: &AlphaExecution<P>,
    reader: ClientId,
    flush_gossip: bool,
    seeds: u64,
) -> Result<CriticalPair, CriticalError>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    // Chunk jobs run one point's whole schedule sample inline on their
    // worker (through a cache-sharing sequential view), so fan-out happens
    // across points, never nested within one.
    let seq = engine.sequential_view();
    let observed = |i: usize| {
        observed_values_at(
            &seq,
            alpha.snapshot(i),
            alpha.writer,
            reader,
            flush_gossip,
            seeds,
        )
    };
    let one_valent = |i: usize| observed(i).contains(&alpha.v1);

    if !one_valent(0) {
        return Err(CriticalError::P0NotOneValent {
            observed: observed(0).into_iter().collect(),
        });
    }

    // Largest 1-valent index. Scan from the end — P_M must not be 1-valent
    // for a regular algorithm — in chunks of points whose probes run
    // concurrently; within a chunk the verdicts are merged in point order,
    // so the chosen index is schedule-independent.
    let m = alpha.len() - 1;
    let chunk = (engine.workers() * 2).max(1);
    let mut i = None;
    let mut hi = m + 1;
    while hi > 0 && i.is_none() {
        let lo = hi.saturating_sub(chunk);
        let flags = engine.map(hi - lo, |off| one_valent(lo + off));
        i = flags.iter().rposition(|&b| b).map(|off| lo + off);
        hi = lo;
    }
    let i = i.expect("P0 is 1-valent, so a largest 1-valent index exists");
    if i == m {
        return Err(CriticalError::NoTransition);
    }

    // Lemma 4.8 data: surviving servers' digests at Q1 and Q2.
    let q1 = alpha.point(i);
    let q2 = alpha.point(i + 1);
    let surviving: Vec<usize> = (0..q1.server_count())
        .filter(|&s| !q1.is_failed(shmem_sim::NodeId::server(s as u32)))
        .collect();
    let d1: Vec<u64> = {
        let all = q1.server_digests();
        surviving.iter().map(|&s| all[s]).collect()
    };
    let d2: Vec<u64> = {
        let all = q2.server_digests();
        surviving.iter().map(|&s| all[s]).collect()
    };
    let changed: Vec<usize> = (0..d1.len()).filter(|&j| d1[j] != d2[j]).collect();
    assert!(
        changed.len() <= 1,
        "Lemma 4.8 violated: {} servers changed between adjacent points",
        changed.len()
    );
    let changed_server = changed.first().copied();
    let state_q2 = changed_server.map_or_else(|| d1[0], |j| d2[j]);

    Ok(CriticalPair {
        index: i,
        states_q1: d1,
        changed_server,
        state_q2,
    })
}

/// Convenience: the set of values observable at each point of `alpha` —
/// useful for visualizing the 1-valent → 2-valent transition.
pub fn valency_profile<P>(
    alpha: &AlphaExecution<P>,
    reader: ClientId,
    flush_gossip: bool,
    seeds: u64,
) -> Vec<BTreeSet<u64>>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    valency_profile_with(
        &ProbeEngine::sequential(),
        alpha,
        reader,
        flush_gossip,
        seeds,
    )
}

/// [`valency_profile`] through a [`ProbeEngine`]: points fan out over the
/// engine's workers; each point's schedules are sampled inline on its
/// worker with memoized verdicts. A profile computed after a critical-pair
/// search on the same engine is answered almost entirely from the cache.
pub fn valency_profile_with<P>(
    engine: &ProbeEngine,
    alpha: &AlphaExecution<P>,
    reader: ClientId,
    flush_gossip: bool,
    seeds: u64,
) -> Vec<BTreeSet<u64>>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    let seq = engine.sequential_view();
    engine.map(alpha.len(), |i| {
        observed_values_at(
            &seq,
            alpha.snapshot(i),
            alpha.writer,
            reader,
            flush_gossip,
            seeds,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::AlphaExecution;
    use crate::valency::probe_read;
    use shmem_algorithms::abd::{Abd, AbdClient, AbdServer};
    use shmem_algorithms::cas::{Cas, CasClient, CasConfig, CasServer};
    use shmem_algorithms::value::ValueSpec;
    use shmem_sim::{ServerId, Sim, SimConfig};

    fn abd_alpha(v1: u64, v2: u64) -> AlphaExecution<Abd> {
        let spec = ValueSpec::from_cardinality(8);
        let sim: Sim<Abd> = Sim::new(
            SimConfig::without_gossip(),
            (0..5).map(|_| AbdServer::new(0, spec)).collect(),
            (0..2).map(|c| AbdClient::new(5, c)).collect(),
        );
        AlphaExecution::build(sim, ClientId(0), 2, v1, v2).unwrap()
    }

    fn cas_alpha(v1: u64, v2: u64) -> AlphaExecution<Cas> {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_cardinality(8));
        let sim: Sim<Cas> = Sim::new(
            SimConfig::without_gossip(),
            (0..5)
                .map(|i| CasServer::new(cfg, ServerId(i), 0))
                .collect(),
            (0..2).map(|c| CasClient::new(cfg, c)).collect(),
        );
        AlphaExecution::build(sim, ClientId(0), 1, v1, v2).unwrap()
    }

    #[test]
    fn abd_has_a_critical_pair() {
        let alpha = abd_alpha(1, 2);
        let pair = find_critical_pair(&alpha, ClientId(1), false, 4).unwrap();
        assert!(pair.index < alpha.len() - 1);
        assert_eq!(pair.states_q1.len(), 3); // 5 servers, 2 failed
                                             // After the critical step the fair probe flips to v2.
        assert_eq!(
            probe_read(alpha.point(pair.index + 1), ClientId(0), ClientId(1), false),
            crate::valency::ReadOutcome::Returns(2)
        );
    }

    #[test]
    fn cas_has_a_critical_pair() {
        let alpha = cas_alpha(3, 5);
        let pair = find_critical_pair(&alpha, ClientId(1), false, 4).unwrap();
        assert_eq!(pair.states_q1.len(), 4); // 5 servers, 1 failed
    }

    #[test]
    fn critical_step_changes_at_most_one_server() {
        for (v1, v2) in [(1, 2), (2, 1), (3, 7)] {
            let alpha = abd_alpha(v1, v2);
            let pair = find_critical_pair(&alpha, ClientId(1), false, 2).unwrap();
            // By Lemma 4.8 the assert inside find_critical_pair already
            // verified <= 1 change; additionally, for ABD the critical step
            // must actually change a server (a Store delivery).
            assert!(pair.changed_server.is_some());
        }
    }

    #[test]
    fn valency_profile_is_monotone_for_fair_probe() {
        // With the deterministic fair probe, the profile starts at {v1} and
        // ends at {v2}.
        let alpha = abd_alpha(1, 2);
        let profile = valency_profile(&alpha, ClientId(1), false, 0);
        assert!(profile[0].contains(&1));
        assert!(profile[alpha.len() - 1].contains(&2));
        assert!(!profile[alpha.len() - 1].contains(&1));
    }

    #[test]
    fn state_vector_is_deterministic() {
        let a1 = abd_alpha(1, 2);
        let a2 = abd_alpha(1, 2);
        let p1 = find_critical_pair(&a1, ClientId(1), false, 2).unwrap();
        let p2 = find_critical_pair(&a2, ClientId(1), false, 2).unwrap();
        assert_eq!(p1.state_vector(), p2.state_vector());
    }

    #[test]
    fn different_value_pairs_give_different_vectors() {
        // A two-pair spot check of the Section 4.3.3 injectivity (the full
        // enumeration lives in counting.rs).
        let pa = find_critical_pair(&abd_alpha(1, 2), ClientId(1), false, 2).unwrap();
        let pb = find_critical_pair(&abd_alpha(2, 1), ClientId(1), false, 2).unwrap();
        assert_ne!(pa.state_vector(), pb.state_vector());
    }
}
