//! The uniform register interface all algorithms expose to the environment.

use crate::value::Value;
use shmem_erasure::CodeError;

/// An operation invocation at a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegInv {
    /// `write(v)`.
    Write(Value),
    /// `read()`.
    Read,
}

/// An operation response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegResp {
    /// A write acknowledged.
    WriteAck,
    /// A read returning the register's value.
    ReadValue(Value),
    /// A read that terminated without a value because the collected
    /// codeword symbols did not decode (corrupted or inconsistent server
    /// state). Surfaced instead of panicking so harnesses can report it.
    ReadFailed(CodeError),
}

impl RegResp {
    /// The value carried by a read response.
    pub fn read_value(self) -> Option<Value> {
        match self {
            RegResp::ReadValue(v) => Some(v),
            RegResp::WriteAck | RegResp::ReadFailed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_value_projection() {
        assert_eq!(RegResp::ReadValue(7).read_value(), Some(7));
        assert_eq!(RegResp::WriteAck.read_value(), None);
    }
}
