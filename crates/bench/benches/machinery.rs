//! Benchmarks for the proof machinery (E7/E8 regeneration cost): α
//! construction, valency probes, critical-pair search, and the staged
//! Section 6 search.

use shmem_algorithms::abd::{self, Abd, AbdClient, AbdServer};
use shmem_algorithms::value::ValueSpec;
use shmem_core::critical::find_critical_pair;
use shmem_core::execution::AlphaExecution;
use shmem_core::multiwrite::{staged_search, MultiWriteSetup};
use shmem_core::valency::probe_read;
use shmem_sim::{ClientId, Sim, SimConfig};
use shmem_util::bench::{black_box, Criterion};
use shmem_util::{criterion_group, criterion_main};

fn abd_world(clients: u32) -> Sim<Abd> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| AbdServer::new(0, spec)).collect(),
        (0..clients).map(|c| AbdClient::new(5, c)).collect(),
    )
}

fn bench_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("machinery");
    group.sample_size(20);

    group.bench_function("alpha_build_abd_n5", |b| {
        b.iter(|| black_box(AlphaExecution::build(abd_world(2), ClientId(0), 2, 1, 2).unwrap()))
    });

    let alpha = AlphaExecution::build(abd_world(2), ClientId(0), 2, 1, 2).unwrap();
    group.bench_function("valency_probe_single_point", |b| {
        b.iter(|| black_box(probe_read(alpha.point(3), ClientId(0), ClientId(1), false)))
    });

    group.bench_function("critical_pair_search", |b| {
        b.iter(|| black_box(find_critical_pair(&alpha, ClientId(1), false, 2).unwrap()))
    });

    let setup = MultiWriteSetup::<Abd> {
        nu: 2,
        f: 2,
        is_value_dependent: abd::is_value_dependent_upstream,
    };
    group.bench_function("staged_search_nu2", |b| {
        b.iter(|| black_box(staged_search(|| abd_world(3), &setup, &[1, 2], 4).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_machinery);
criterion_main!(benches);
