//! Metrics access, runtime enablement, the conservation audit, and the
//! world-level JSON export.
//!
//! The registry itself lives in [`crate::metrics`]; this file is the glue
//! between it and the world: the copy-on-write accessor the step relation
//! and fault primitives use, the mid-run enablement that baselines
//! in-flight messages so the conservation law holds from the switch-on
//! point, and the audit that compares the ledgers against the queues the
//! world actually holds.

use super::Sim;
use crate::ids::NodeId;
use crate::metrics::{ConservationError, MetricsLevel, MetricsRegistry};
use crate::node::Protocol;
use shmem_util::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// The registry [`Sim::metrics`] returns while metering is off: one
/// process-wide empty instance, so the accessor's type stays simple
/// without unmetered worlds allocating anything.
fn empty_registry() -> &'static MetricsRegistry {
    static EMPTY: OnceLock<MetricsRegistry> = OnceLock::new();
    EMPTY.get_or_init(|| MetricsRegistry::new(MetricsLevel::Off, 0))
}

impl<P: Protocol> Sim<P> {
    /// The metrics registry (a shared empty one at [`MetricsLevel::Off`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        match &self.metrics {
            Some(m) => m,
            None => empty_registry(),
        }
    }

    /// The current metering level.
    pub fn metrics_level(&self) -> MetricsLevel {
        self.metrics_level
    }

    /// The metered-or-nothing accessor every hook site goes through: at
    /// [`MetricsLevel::Off`] this is a single branch on an inline field —
    /// no `Arc` exists, let alone gets dereferenced — which is the "off
    /// reduces to branch-on-enum" guarantee.
    #[inline]
    pub(super) fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        if self.metrics_level == MetricsLevel::Off {
            None
        } else {
            self.metrics.as_mut().map(Arc::make_mut)
        }
    }

    /// Replaces the registry with a fresh one at `level`, usable at any
    /// point of an execution. Messages already in flight are credited to
    /// the new ledgers' `baseline` so the conservation law holds from here
    /// on; counters and histograms measure the execution *since* this
    /// call. Per-server counters restart at zero.
    pub fn set_metrics(&mut self, level: MetricsLevel) {
        self.metrics = (level != MetricsLevel::Off).then(|| {
            let mut reg = MetricsRegistry::new(level, self.servers.len());
            let t = &*self.channels;
            for row in t.nonempty.iter() {
                let r = row as usize;
                let (from, to) = t.keys[r];
                reg.baseline_in_flight(from, to, u64::from(t.len[r]));
            }
            Arc::new(reg)
        });
        self.metrics_level = level;
    }

    /// Queued messages currently *held* — undeliverable because their link
    /// is cut or an endpoint is crashed or frozen. A gauge computed from
    /// the world, not a counter: a heal or unfreeze releases held messages
    /// without any ledger movement.
    pub fn held_messages(&self) -> u64 {
        let t = &*self.channels;
        t.nonempty
            .iter()
            .map(|row| row as usize)
            .filter(|&r| {
                t.cut[r]
                    || self.blocked[t.src_slot[r] as usize]
                    || self.blocked[t.dst_slot[r] as usize]
            })
            .map(|r| u64::from(t.len[r]))
            .sum()
    }

    /// Queued messages a scheduler could deliver right now (total in
    /// flight minus [`Sim::held_messages`]).
    pub fn deliverable_in_flight(&self) -> u64 {
        self.total_in_flight() as u64 - self.held_messages()
    }

    /// Checks the conservation law — per channel and globally,
    /// `baseline + sent + duplicated = delivered + dropped + purged +
    /// queued` — against the queues the world holds at this point. Exact
    /// at *every* point of an execution, not only at quiescence. A no-op
    /// `Ok` at [`MetricsLevel::Off`].
    ///
    /// # Errors
    ///
    /// The first imbalanced channel (or the global imbalance) as a
    /// [`ConservationError`] — always a metrics-wiring bug, never a
    /// legitimate execution.
    pub fn audit_conservation(&self) -> Result<(), ConservationError> {
        if self.metrics_level == MetricsLevel::Off {
            return Ok(());
        }
        let t = &*self.channels;
        let queued: BTreeMap<(NodeId, NodeId), u64> = t
            .nonempty
            .iter()
            .map(|row| {
                let r = row as usize;
                (t.keys[r], u64::from(t.len[r]))
            })
            .collect();
        self.metrics().check_conservation(&queued)
    }

    /// The registry's byte-stable JSON export plus a `gauges` object with
    /// the world's point-in-time queue state (`in_flight` deliverable,
    /// `held` behind cuts/blocks).
    pub fn metrics_json(&self) -> Json {
        let mut doc = self.metrics().to_json();
        let gauges = Json::Obj(vec![
            (
                "in_flight".to_string(),
                Json::Num(self.deliverable_in_flight() as f64),
            ),
            ("held".to_string(), Json::Num(self.held_messages() as f64)),
        ]);
        match &mut doc {
            Json::Obj(fields) => fields.push(("gauges".to_string(), gauges)),
            _ => unreachable!("registry export is an object"),
        }
        doc
    }
}
