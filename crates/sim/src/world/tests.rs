use super::{RunError, Sim, Snapshot};
use crate::config::SimConfig;
use crate::hash::hash_of;
use crate::ids::{ClientId, NodeId, ServerId};
use crate::node::{Ctx, Node, Protocol};
use crate::trace::StepInfo;
use std::sync::Arc;

/// A toy majority-ack register: the client broadcasts `Store(v)` and
/// responds once a majority acks; servers remember the last value.
struct Toy;

#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Store(u32),
    Ack(u32),
    Gossip,
}

impl Protocol for Toy {
    type Msg = Msg;
    type Inv = u32;
    type Resp = u32;
    type Server = ToyServer;
    type Client = ToyClient;
}

#[derive(Clone, Default)]
struct ToyServer {
    value: u32,
    gossip_on_store: bool,
    peers: u32,
}

impl Node<Toy> for ToyServer {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<Toy>) {
        match msg {
            Msg::Store(v) => {
                self.value = v;
                if self.gossip_on_store {
                    for i in 0..self.peers {
                        if NodeId::server(i) != ctx.me() {
                            ctx.send(NodeId::server(i), Msg::Gossip);
                        }
                    }
                }
                ctx.send(from, Msg::Ack(v));
            }
            Msg::Ack(_) | Msg::Gossip => {}
        }
    }
    fn state_bits(&self) -> f64 {
        32.0
    }
    fn metadata_bits(&self) -> f64 {
        1.0
    }
    fn digest(&self) -> u64 {
        hash_of(&self.value)
    }
}

#[derive(Clone, Default)]
struct ToyClient {
    n: u32,
    acks: u32,
    need: u32,
    pending: Option<u32>,
}

impl Node<Toy> for ToyClient {
    fn on_invoke(&mut self, v: u32, ctx: &mut Ctx<Toy>) {
        self.acks = 0;
        self.pending = Some(v);
        ctx.broadcast_to_servers(self.n, Msg::Store(v));
    }
    fn on_message(&mut self, _from: NodeId, msg: Msg, ctx: &mut Ctx<Toy>) {
        if let (Msg::Ack(v), Some(p)) = (&msg, self.pending) {
            if *v == p {
                self.acks += 1;
                if self.acks == self.need {
                    self.pending = None;
                    ctx.respond(p);
                }
            }
        }
    }
    fn digest(&self) -> u64 {
        hash_of(&(self.acks, self.need, self.pending))
    }
}

fn world(n: u32, need: u32) -> Sim<Toy> {
    Sim::new(
        SimConfig::default(),
        (0..n)
            .map(|_| ToyServer {
                peers: n,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n,
            need,
            ..ToyClient::default()
        }],
    )
}

#[test]
fn op_completes_with_majority() {
    let mut sim = world(5, 3);
    sim.invoke(ClientId(0), 42).unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    let resp = sim.run_until_op_completes(ClientId(0)).unwrap();
    assert_eq!(resp, 42);
    assert!(!sim.has_open_op(ClientId(0)));
    let ops = sim.ops();
    assert_eq!(ops.len(), 1);
    assert!(ops[0].is_complete());
    assert!(ops[0].invoked_at < ops[0].responded_at.unwrap());
}

#[test]
fn op_survives_f_failures() {
    let mut sim = world(5, 3);
    sim.fail_last_servers(2);
    sim.invoke(ClientId(0), 7).unwrap();
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 7);
}

#[test]
fn op_stuck_when_too_many_failures() {
    let mut sim = world(5, 3);
    sim.fail_last_servers(3);
    sim.invoke(ClientId(0), 7).unwrap();
    assert_eq!(
        sim.run_until_op_completes(ClientId(0)),
        Err(RunError::Stuck {
            client: ClientId(0)
        })
    );
}

#[test]
fn frozen_client_messages_are_delayed_but_kept() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 9).unwrap();
    sim.freeze(NodeId::client(0));
    // Client messages can't be delivered: quiescence without response.
    sim.run_to_quiescence().unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    assert_eq!(sim.in_flight(NodeId::client(0), NodeId::server(0)), 1);
    // Unfreeze: the delayed messages flow and the op completes.
    sim.unfreeze(NodeId::client(0));
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 9);
}

#[test]
fn double_invocation_rejected() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 1).unwrap();
    assert_eq!(
        sim.invoke(ClientId(0), 2),
        Err(RunError::OperationPending {
            client: ClientId(0)
        })
    );
}

#[test]
fn invoke_at_failed_client_rejected() {
    let mut sim = world(3, 2);
    sim.fail(NodeId::client(0));
    assert_eq!(
        sim.invoke(ClientId(0), 1),
        Err(RunError::NodeUnavailable {
            node: NodeId::client(0)
        })
    );
}

#[test]
fn fork_and_diverge() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 5).unwrap();
    let fork = sim.fork();
    assert_eq!(sim.digest(), fork.digest());
    // Advance only the original.
    sim.step_fair().unwrap();
    assert_ne!(sim.digest(), fork.digest());
    // Both copies independently complete the operation.
    let mut fork = fork;
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 5);
    assert_eq!(fork.run_until_op_completes(ClientId(0)).unwrap(), 5);
}

#[test]
fn fork_shares_state_until_first_write() {
    let mut sim = world(4, 3);
    sim.invoke(ClientId(0), 5).unwrap();
    let fork = sim.fork();
    // Structural sharing: the fork points at the same server automata.
    for (a, b) in sim.servers.iter().zip(&fork.servers) {
        assert!(Arc::ptr_eq(a, b), "fork must share server state");
    }
    for (key, q) in &sim.channels {
        assert!(
            Arc::ptr_eq(q, &fork.channels[key]),
            "fork must share channel queues"
        );
    }
    assert!(Arc::ptr_eq(&sim.ops, &fork.ops));
    // One delivery promotes the touched receiver and queue only.
    sim.deliver_one(NodeId::client(0), NodeId::server(1))
        .unwrap();
    assert!(Arc::ptr_eq(&sim.servers[0], &fork.servers[0]));
    assert!(
        !Arc::ptr_eq(&sim.servers[1], &fork.servers[1]),
        "mutated server must be promoted to an owned copy"
    );
    assert!(Arc::ptr_eq(&sim.servers[2], &fork.servers[2]));
}

#[test]
fn promoted_state_never_aliases() {
    let mut a = world(3, 2);
    a.invoke(ClientId(0), 1).unwrap();
    let mut b = a.fork();
    // Diverge: deliver different messages in each fork.
    a.deliver_one(NodeId::client(0), NodeId::server(0)).unwrap();
    b.deliver_one(NodeId::client(0), NodeId::server(1)).unwrap();
    assert_eq!(a.server(ServerId(0)).value, 1);
    assert_eq!(a.server(ServerId(1)).value, 0);
    assert_eq!(b.server(ServerId(0)).value, 0);
    assert_eq!(b.server(ServerId(1)).value, 1);
}

#[test]
fn snapshot_digest_is_cached_and_stable() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 5).unwrap();
    let snap = sim.snapshot();
    assert_eq!(snap.digest(), sim.digest());
    assert_eq!(snap.digest(), snap.clone().digest());
    // The snapshot is unaffected by the original advancing.
    sim.step_fair().unwrap();
    assert_ne!(snap.digest(), sim.digest());
    // Forking off the snapshot replays to the same end state.
    let mut replay = snap.fork();
    replay.step_fair().unwrap();
    assert_eq!(replay.digest(), sim.digest());
}

#[test]
fn snapshot_derefs_to_sim() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 4).unwrap();
    let snap: Snapshot<Toy> = sim.into_snapshot();
    // &Snapshot works where &Sim observations are needed.
    assert_eq!(snap.server_count(), 3);
    assert_eq!(snap.total_in_flight(), 3);
    assert!(snap.has_open_op(ClientId(0)));
}

#[test]
fn deterministic_execution() {
    let run = || {
        let mut sim = world(5, 3);
        sim.invoke(ClientId(0), 11).unwrap();
        sim.run_to_quiescence().unwrap();
        (sim.digest(), sim.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn scripted_delivery() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 6).unwrap();
    // Deliver only to server 2 first, by hand.
    sim.deliver_one(NodeId::client(0), NodeId::server(2))
        .unwrap();
    assert_eq!(sim.server(ServerId(2)).value, 6);
    assert_eq!(sim.server(ServerId(0)).value, 0);
    // Nonexistent message errors.
    assert_eq!(
        sim.deliver_one(NodeId::server(0), NodeId::server(1)),
        Err(RunError::NoSuchMessage {
            from: NodeId::server(0),
            to: NodeId::server(1)
        })
    );
}

#[test]
fn step_options_exclude_blocked_endpoints() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 1).unwrap();
    assert_eq!(sim.step_options().len(), 3);
    sim.fail(NodeId::server(1));
    assert_eq!(sim.step_options().len(), 2);
    sim.freeze(NodeId::server(0));
    assert_eq!(sim.step_options().len(), 1);
}

#[test]
fn gossip_flush() {
    let mut sim = Sim::<Toy>::new(
        SimConfig::with_gossip(),
        (0..3)
            .map(|_| ToyServer {
                peers: 3,
                gossip_on_store: true,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 3,
            need: 3,
            ..ToyClient::default()
        }],
    );
    sim.invoke(ClientId(0), 2).unwrap();
    sim.deliver_one(NodeId::client(0), NodeId::server(0))
        .unwrap();
    // Server 0 gossiped to servers 1 and 2.
    assert_eq!(sim.in_flight(NodeId::server(0), NodeId::server(1)), 1);
    let flushed = sim.flush_server_channels().unwrap();
    assert_eq!(flushed, 2);
    assert_eq!(sim.in_flight(NodeId::server(0), NodeId::server(1)), 0);
    // Client->server messages are untouched by the flush.
    assert_eq!(sim.in_flight(NodeId::client(0), NodeId::server(1)), 1);
}

#[test]
#[should_panic(expected = "no-gossip model")]
fn gossip_panics_when_disabled() {
    let mut sim = Sim::<Toy>::new(
        SimConfig::without_gossip(),
        (0..3)
            .map(|_| ToyServer {
                peers: 3,
                gossip_on_store: true,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 3,
            need: 3,
            ..ToyClient::default()
        }],
    );
    sim.invoke(ClientId(0), 2).unwrap();
    let _ = sim.deliver_one(NodeId::client(0), NodeId::server(0));
}

#[test]
fn meter_tracks_server_bits() {
    let mut sim = world(4, 2);
    sim.invoke(ClientId(0), 3).unwrap();
    sim.run_to_quiescence().unwrap();
    let snap = sim.storage();
    assert_eq!(snap.per_server_peak_bits, vec![32.0; 4]);
    assert_eq!(snap.peak_total_bits, 4.0 * 32.0);
    assert_eq!(snap.peak_max_bits, 32.0);
    assert_eq!(snap.per_server_peak_metadata_bits, vec![1.0; 4]);
    assert!(snap.points_observed > 1);
}

#[test]
fn step_limit_reported() {
    // A need that can never be met keeps no messages flowing after
    // quiescence, so force the limit with a tiny budget instead.
    let mut sim = Sim::<Toy>::new(
        SimConfig::default().step_limit(2),
        (0..5)
            .map(|_| ToyServer {
                peers: 5,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 5,
            need: 5,
            ..ToyClient::default()
        }],
    );
    sim.invoke(ClientId(0), 1).unwrap();
    assert_eq!(
        sim.run_until_op_completes(ClientId(0)),
        Err(RunError::StepLimit { steps: 2 })
    );
}

#[test]
fn run_until_requires_open_op() {
    let mut sim = world(3, 2);
    assert_eq!(
        sim.run_until_op_completes(ClientId(0)),
        Err(RunError::NoOpenOperation {
            client: ClientId(0)
        })
    );
}

#[test]
fn step_with_caller_choice() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 8).unwrap();
    // Always pick the last option: server 2 gets the first delivery.
    let info = sim.step_with(|opts| opts.len() - 1).unwrap();
    assert_eq!(
        info,
        StepInfo::Delivered {
            from: NodeId::client(0),
            to: NodeId::server(2)
        }
    );
    assert_eq!(sim.server(ServerId(2)).value, 8);
}

mod fork_properties {
    use super::*;
    use shmem_util::prop::prelude::*;
    use shmem_util::DetRng;

    /// Deterministic world construction with one invoked write and
    /// `pre_steps` fair steps taken.
    fn advanced_world(n: u32, v: u32, pre_steps: usize) -> Sim<Toy> {
        let mut sim = world(n, n.min(3));
        sim.invoke(ClientId(0), v).unwrap();
        for _ in 0..pre_steps {
            if sim.step_fair().is_none() {
                break;
            }
        }
        sim
    }

    /// Runs `steps` seeded-random steps and returns the final digest.
    fn run_schedule(mut sim: Sim<Toy>, seed: u64, steps: usize) -> u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..steps {
            if sim.step_with(|opts| rng.gen_range(0..opts.len())).is_none() {
                break;
            }
        }
        sim.digest()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A fork digests identically to its source until one of them
        /// takes a step, and the untouched side's digest never moves.
        #[test]
        fn prop_fork_digest_identical_until_divergence(
            n in 3u32..6,
            v in 1u32..1000,
            pre_steps in 0usize..6,
            post_steps in 1usize..6,
        ) {
            let mut sim = advanced_world(n, v, pre_steps);
            let fork = sim.fork();
            prop_assert_eq!(sim.digest(), fork.digest());
            let frozen = fork.digest();
            let mut advanced = 0usize;
            for _ in 0..post_steps {
                if sim.step_fair().is_some() {
                    advanced += 1;
                }
            }
            // The untouched fork is bit-for-bit where it was...
            prop_assert_eq!(fork.digest(), frozen);
            // ...and any delivered step moves the stepping side's digest
            // (a delivery always drains a channel slot).
            if advanced > 0 {
                prop_assert_ne!(sim.digest(), fork.digest());
            }
        }

        /// Copy-on-write promotion never aliases: two forks driven down
        /// different schedules end up exactly where fresh worlds driven
        /// down those schedules end up — neither fork sees the other's
        /// (or the source's) mutations.
        #[test]
        fn prop_promoted_forks_replay_like_fresh_worlds(
            n in 3u32..6,
            v in 1u32..1000,
            pre_steps in 0usize..4,
            seed in 0u64..1_000_000,
            steps in 1usize..10,
        ) {
            let base = advanced_world(n, v, pre_steps);
            let base_digest = base.digest();
            let da = run_schedule(base.fork(), seed, steps);
            let db = run_schedule(base.fork(), seed.wrapping_add(1), steps);
            // Divergent forks did not corrupt each other or the base:
            // each matches a from-scratch replay of its schedule.
            prop_assert_eq!(da, run_schedule(advanced_world(n, v, pre_steps), seed, steps));
            prop_assert_eq!(
                db,
                run_schedule(advanced_world(n, v, pre_steps), seed.wrapping_add(1), steps)
            );
            prop_assert_eq!(base.digest(), base_digest);
        }
    }
}
