//! The sharded multi-register keyspace: keys, shard placement, and the
//! batched multi-key operation interface.
//!
//! The paper states its storage bounds per register; a production-shaped
//! emulation serves many registers at once. This module supplies the
//! pieces that generalization shares across protocols:
//!
//! * [`Key`] — the register namespace (`u64`).
//! * [`ShardMap`] — a deterministic assignment of keys to *shards* and of
//!   shards to server subsets. Every per-key quorum is taken within the
//!   key's shard, so each shard is an independent `(replicas, f)` instance
//!   of the single-register emulation and the per-key bound accounting
//!   (`ν·N/(N−f)` with `N = replicas`) carries over unchanged.
//! * [`MultiInv`] / [`MultiResp`] — batched invocations: one operation
//!   carries reads/writes for any number of distinct keys, and the sharded
//!   clients coalesce each quorum round into **one message per
//!   (client, server) pair**, so a round touching `B` keys costs the same
//!   message count as a round touching one.
//! * [`project_histories`] — splits a batched execution into one
//!   single-register [`History`] per key, so the unmodified `shmem-spec`
//!   atomicity checkers apply key-by-key.

use crate::reg::{RegInv, RegResp};
use crate::value::Value;
use shmem_sim::OpRecord;
use shmem_spec::history::{History, OpKind};
use std::collections::BTreeMap;

/// A register name in the sharded keyspace.
pub type Key = u64;

/// Wire bytes of one serialized [`Key`] (`u64`).
pub const KEY_WIRE_BYTES: u64 = 8;

/// Wire bytes of one serialized phase nonce (`u64`).
pub const RID_WIRE_BYTES: u64 = 8;

/// SplitMix64-style finalizer: decorrelates adjacent keys before the shard
/// modulus so dense keyspaces spread evenly across shards.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic key → shard → server-subset placement.
///
/// Shard `s` lives on `replicas` consecutive servers starting at
/// `(s · spread) mod n` with `spread = max(1, n / shards)`, so shards
/// stripe around the ring and overlap only when `shards · replicas > n`.
/// [`ShardMap::full`] (one shard on all servers) makes the batch-size-1
/// sharded protocols step-isomorphic to their legacy single-register
/// counterparts — the differential tests pin that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n: u32,
    shards: u32,
    replicas: u32,
}

impl ShardMap {
    /// A map of `shards` shards over `n` servers, `replicas` servers each.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ shards` and `1 ≤ replicas ≤ n`.
    pub fn new(n: u32, shards: u32, replicas: u32) -> ShardMap {
        assert!(n >= 1 && shards >= 1, "need at least one server and shard");
        assert!(
            (1..=n).contains(&replicas),
            "replicas must satisfy 1 <= replicas <= n"
        );
        ShardMap {
            n,
            shards,
            replicas,
        }
    }

    /// The degenerate map: one shard covering every server — the legacy
    /// single-register placement.
    pub fn full(n: u32) -> ShardMap {
        ShardMap::new(n, 1, n)
    }

    /// Total servers.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Servers per shard.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Majority within one shard (`replicas/2 + 1`) — the ABD quorum.
    pub fn majority(&self) -> u32 {
        self.replicas / 2 + 1
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: Key) -> u32 {
        if self.shards == 1 {
            0
        } else {
            (mix64(key) % u64::from(self.shards)) as u32
        }
    }

    /// First server of `shard`.
    fn base_of(&self, shard: u32) -> u32 {
        let spread = (self.n / self.shards).max(1);
        ((u64::from(shard) * u64::from(spread)) % u64::from(self.n)) as u32
    }

    /// The servers holding `shard`, in canonical (send) order.
    pub fn servers_of_shard(&self, shard: u32) -> impl Iterator<Item = u32> + '_ {
        let base = self.base_of(shard);
        let n = self.n;
        (0..self.replicas).map(move |j| (base + j) % n)
    }

    /// The servers holding `key`.
    pub fn servers_of_key(&self, key: Key) -> impl Iterator<Item = u32> + '_ {
        self.servers_of_shard(self.shard_of(key))
    }

    /// `server`'s position within `shard` (its erasure-share index), or
    /// `None` if the server does not hold the shard.
    pub fn position_in_shard(&self, server: u32, shard: u32) -> Option<u32> {
        let pos = (server + self.n - self.base_of(shard)) % self.n;
        (pos < self.replicas).then_some(pos)
    }

    /// `server`'s share index for `key`, or `None` if it does not hold it.
    pub fn position_for_key(&self, server: u32, key: Key) -> Option<u32> {
        self.position_in_shard(server, self.shard_of(key))
    }

    /// Whether `server` stores `key`.
    pub fn covers(&self, server: u32, key: Key) -> bool {
        self.position_for_key(server, key).is_some()
    }
}

/// A batched invocation: per-key register operations executed as one
/// client operation. Keys must be distinct within a batch (the sharded
/// clients assert this — one batch is one round, and a round carries at
/// most one version per key).
#[derive(Clone, Debug, PartialEq)]
pub struct MultiInv {
    /// The batch, in response order: `(key, read-or-write)`.
    pub ops: Vec<(Key, RegInv)>,
}

impl MultiInv {
    /// A write batch: store `value` under each `key`.
    pub fn writes(pairs: &[(Key, Value)]) -> MultiInv {
        MultiInv {
            ops: pairs.iter().map(|&(k, v)| (k, RegInv::Write(v))).collect(),
        }
    }

    /// A read batch.
    pub fn reads(keys: &[Key]) -> MultiInv {
        MultiInv {
            ops: keys.iter().map(|&k| (k, RegInv::Read)).collect(),
        }
    }

    /// The batch's keys, in batch order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.ops.iter().map(|&(k, _)| k)
    }

    /// Panics unless the batch is well-formed: nonempty with distinct keys.
    pub fn assert_well_formed(&self) {
        assert!(!self.ops.is_empty(), "empty batch");
        let mut keys: Vec<Key> = self.keys().collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            self.ops.len(),
            "batch keys must be distinct: {:?}",
            self.ops
        );
    }
}

/// A batched response: one [`RegResp`] per key of the invoking batch, in
/// batch order.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiResp {
    /// Per-key outcomes.
    pub ops: Vec<(Key, RegResp)>,
}

impl MultiResp {
    /// The outcome for `key`, if the batch contained it.
    pub fn get(&self, key: Key) -> Option<&RegResp> {
        self.ops.iter().find(|&&(k, _)| k == key).map(|(_, r)| r)
    }
}

/// Splits a batched execution into one single-register history per key.
///
/// Every `(key, op)` of a batch becomes an operation in `key`'s history
/// with the *batch's* invocation/response interval — the per-key operation
/// was live for at least that interval, so atomicity of every projection
/// is exactly the multi-register correctness condition.
///
/// A key whose read came back as [`RegResp::ReadFailed`] is *omitted*: a
/// failed read returned nothing, so it constrains no checker — and the
/// client went on to its next operation, so recording the failure as an
/// open interval would break per-client well-formedness. A key missing
/// from the response (operation timed out; the client retired without
/// invoking again) stays recorded as incomplete, since a half-delivered
/// write may still have taken effect.
///
/// Only touched keys appear; each history starts from `initial`.
pub fn project_histories(
    initial: Value,
    ops: &[OpRecord<MultiInv, MultiResp>],
) -> BTreeMap<Key, History<Value>> {
    let mut histories: BTreeMap<Key, History<Value>> = BTreeMap::new();
    for record in ops {
        for (key, inv) in &record.invocation.ops {
            let kind = match *inv {
                RegInv::Write(v) => OpKind::Write(v),
                RegInv::Read => OpKind::Read,
            };
            let outcome = record
                .responded_at
                .zip(record.response.as_ref().and_then(|r| r.get(*key)));
            if let Some((_, RegResp::ReadFailed(_))) = outcome {
                continue;
            }
            let h = histories
                .entry(*key)
                .or_insert_with(|| History::new(initial));
            let id = h.begin(record.client.0, kind, record.invoked_at);
            if let Some((t, resp)) = outcome {
                h.complete(id, t, resp.read_value());
            }
        }
    }
    histories
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_map_is_the_legacy_placement() {
        let m = ShardMap::full(5);
        assert_eq!(m.shards(), 1);
        assert_eq!(m.replicas(), 5);
        assert_eq!(m.majority(), 3);
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(m.shard_of(key), 0);
            let servers: Vec<u32> = m.servers_of_key(key).collect();
            assert_eq!(servers, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn shards_partition_servers_when_disjoint() {
        let m = ShardMap::new(6, 2, 3);
        let s0: Vec<u32> = m.servers_of_shard(0).collect();
        let s1: Vec<u32> = m.servers_of_shard(1).collect();
        assert_eq!(s0, vec![0, 1, 2]);
        assert_eq!(s1, vec![3, 4, 5]);
        for s in 0..6 {
            let covering = (0..2).filter(|&sh| m.position_in_shard(s, sh).is_some());
            assert_eq!(covering.count(), 1, "server {s}");
        }
    }

    #[test]
    fn positions_index_the_shard_consecutively() {
        let m = ShardMap::new(6, 2, 3);
        assert_eq!(m.position_in_shard(3, 1), Some(0));
        assert_eq!(m.position_in_shard(5, 1), Some(2));
        assert_eq!(m.position_in_shard(0, 1), None);
        // Wrap-around shard: base 4, replicas 3 on n=6 covers {4, 5, 0}.
        let w = ShardMap::new(6, 3, 3);
        assert_eq!(w.base_of(2), 4);
        let servers: Vec<u32> = w.servers_of_shard(2).collect();
        assert_eq!(servers, vec![4, 5, 0]);
        assert_eq!(w.position_in_shard(0, 2), Some(2));
    }

    #[test]
    fn shard_of_is_deterministic_and_spread() {
        let m = ShardMap::new(8, 4, 2);
        let mut counts = [0u32; 4];
        for key in 0..1000u64 {
            let s = m.shard_of(key);
            assert_eq!(s, m.shard_of(key));
            counts[s as usize] += 1;
        }
        // mix64 spreads a dense keyspace roughly evenly.
        assert!(counts.iter().all(|&c| c > 150), "skewed: {counts:?}");
    }

    #[test]
    fn batch_well_formedness() {
        MultiInv::writes(&[(1, 10), (2, 20)]).assert_well_formed();
        MultiInv::reads(&[7]).assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_keys_rejected() {
        MultiInv::reads(&[3, 3]).assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_batch_rejected() {
        MultiInv { ops: Vec::new() }.assert_well_formed();
    }

    #[test]
    fn projection_splits_batches_per_key() {
        use shmem_sim::ClientId;
        let ops = vec![
            OpRecord {
                client: ClientId(0),
                invoked_at: 1,
                responded_at: Some(5),
                invocation: MultiInv::writes(&[(1, 11), (2, 22)]),
                response: Some(MultiResp {
                    ops: vec![(1, RegResp::WriteAck), (2, RegResp::WriteAck)],
                }),
            },
            OpRecord {
                client: ClientId(1),
                invoked_at: 6,
                responded_at: Some(9),
                invocation: MultiInv::reads(&[2, 3]),
                response: Some(MultiResp {
                    ops: vec![(2, RegResp::ReadValue(22)), (3, RegResp::ReadValue(0))],
                }),
            },
        ];
        let hs = project_histories(0, &ops);
        assert_eq!(hs.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(hs[&1].len(), 1);
        assert_eq!(hs[&2].len(), 2);
        let read = &hs[&2].ops()[1];
        assert_eq!(read.returned, Some(22));
        for h in hs.values() {
            assert!(shmem_spec::check_atomic(h).is_ok());
        }
    }

    #[test]
    fn projection_omits_failed_reads() {
        use shmem_erasure::CodeError;
        use shmem_sim::ClientId;
        let failed = OpRecord {
            client: ClientId(0),
            invoked_at: 1,
            responded_at: Some(4),
            invocation: MultiInv::reads(&[5]),
            response: Some(MultiResp {
                ops: vec![(5, RegResp::ReadFailed(CodeError::LengthMismatch))],
            }),
        };
        // The same client moves on after the failure; its later read of
        // the key must leave the projection well-formed and atomic.
        let later = OpRecord {
            client: ClientId(0),
            invoked_at: 6,
            responded_at: Some(9),
            invocation: MultiInv::reads(&[5]),
            response: Some(MultiResp {
                ops: vec![(5, RegResp::ReadValue(0))],
            }),
        };
        let hs = project_histories(0, &[failed, later]);
        assert_eq!(hs[&5].len(), 1, "failed read must not be recorded");
        assert!(hs[&5].is_well_formed());
        assert!(shmem_spec::check_atomic(&hs[&5]).is_ok());
    }

    #[test]
    fn projection_keeps_timed_out_ops_incomplete() {
        use shmem_sim::ClientId;
        let ops = vec![OpRecord {
            client: ClientId(0),
            invoked_at: 1,
            responded_at: None,
            invocation: MultiInv::writes(&[(5, 50)]),
            response: None,
        }];
        let hs = project_histories(0, &ops);
        assert!(!hs[&5].ops()[0].is_complete());
    }
}
