//! Register values and their information content.

/// A register value. The emulated register stores elements of a finite set
/// `V`; we represent them as integers `0 .. |V|` (the proofs only need
/// distinctness, and workloads pick values below the domain cardinality).
pub type Value = u64;

/// Describes the value domain `V` for storage accounting: how many bits of
/// information one value carries.
///
/// The simulator carries [`Value`]s as `u64` regardless of the domain; the
/// *accounting* (`state_bits`) uses `bits`, so a tiny proof-machinery domain
/// (`|V| = 4` ⇒ 2 bits) and a realistic one (`|V| = 2^64`) are both exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueSpec {
    /// `log2 |V|`.
    pub bits: f64,
}

impl ValueSpec {
    /// Bytes in the canonical wire representation of a [`Value`] — the
    /// length [`ValueSpec::to_bytes`] produces, and therefore the length
    /// erasure decoders must reconstruct.
    pub const VALUE_BYTES: usize = 8;

    /// A domain of `2^bits` values.
    ///
    /// # Panics
    ///
    /// Panics if `bits <= 0`.
    pub fn from_bits(bits: f64) -> ValueSpec {
        assert!(bits > 0.0, "value domain must carry information");
        ValueSpec { bits }
    }

    /// A domain of exactly `card` values.
    ///
    /// # Panics
    ///
    /// Panics if `card < 2`.
    pub fn from_cardinality(card: u64) -> ValueSpec {
        assert!(card >= 2, "value domain needs at least two values");
        ValueSpec {
            bits: (card as f64).log2(),
        }
    }

    /// Serializes a value to its canonical
    /// [`VALUE_BYTES`](ValueSpec::VALUE_BYTES)-byte representation (what
    /// the erasure coder stripes).
    pub fn to_bytes(value: Value) -> [u8; Self::VALUE_BYTES] {
        value.to_be_bytes()
    }

    /// Deserializes the canonical representation.
    pub fn from_bytes(bytes: &[u8]) -> Value {
        let mut b = [0u8; Self::VALUE_BYTES];
        b.copy_from_slice(&bytes[..Self::VALUE_BYTES]);
        Value::from_be_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_constructors() {
        assert_eq!(ValueSpec::from_bits(64.0).bits, 64.0);
        assert_eq!(ValueSpec::from_cardinality(4).bits, 2.0);
        assert!((ValueSpec::from_cardinality(1000).bits - 1000f64.log2()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_domain_rejected() {
        let _ = ValueSpec::from_cardinality(1);
    }

    #[test]
    fn byte_round_trip() {
        for v in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(ValueSpec::from_bytes(&ValueSpec::to_bytes(v)), v);
        }
    }
}
