//! Simulation configuration.

use crate::metrics::MetricsLevel;

/// Static configuration of a simulated world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Whether server-to-server channels exist. Theorem 4.1's model
    /// restriction ("every message is sent from a server to a client, or
    /// from a client to a server") corresponds to `false`; sends between
    /// servers then panic, surfacing model violations immediately.
    pub server_gossip: bool,
    /// Per-channel delivery order. The paper's channels are asynchronous
    /// and need not be FIFO; [`ChannelOrder::Any`] lets schedulers deliver
    /// any in-flight message of a channel (via
    /// [`crate::world::Sim::deliver_nth`]), while [`ChannelOrder::Fifo`]
    /// restricts delivery to queue heads.
    pub channel_order: ChannelOrder,
    /// Upper bound on steps for the `run_*` convenience loops, after which
    /// they report [`crate::world::RunError::StepLimit`] instead of spinning
    /// forever on a livelocked protocol.
    pub step_limit: u64,
    /// How much the world meters (messages, latencies, queue depths). The
    /// default is [`MetricsLevel::Off`]: every metrics hook reduces to one
    /// branch on this enum, so unmetered worlds pay nothing. Also
    /// switchable at runtime via [`crate::world::Sim::set_metrics`].
    pub metrics: MetricsLevel,
    /// Whether the world records execution coverage
    /// ([`crate::coverage::CoverageMap`]) — the feedback signal for the
    /// coverage-guided nemesis fuzzer. Off by default: every coverage hook
    /// reduces to one branch on this bool, exactly like `metrics`. Also
    /// switchable at runtime via [`crate::world::Sim::set_coverage`].
    pub coverage: bool,
}

impl SimConfig {
    /// Configuration with gossip enabled (the general model of Theorem 5.1).
    pub fn with_gossip() -> SimConfig {
        SimConfig {
            server_gossip: true,
            ..SimConfig::default()
        }
    }

    /// Configuration without server gossip (the Theorem 4.1 model).
    pub fn without_gossip() -> SimConfig {
        SimConfig {
            server_gossip: false,
            ..SimConfig::default()
        }
    }

    /// Overrides the run-loop step limit.
    pub fn step_limit(mut self, limit: u64) -> SimConfig {
        self.step_limit = limit;
        self
    }

    /// Overrides the metering level.
    pub fn metrics(mut self, level: MetricsLevel) -> SimConfig {
        self.metrics = level;
        self
    }

    /// Enables or disables coverage recording.
    pub fn coverage(mut self, on: bool) -> SimConfig {
        self.coverage = on;
        self
    }
}

/// Per-channel delivery discipline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChannelOrder {
    /// Deliver in send order (the default; what most deployments provide).
    #[default]
    Fifo,
    /// Any in-flight message may be delivered next — the weakest (and the
    /// paper's) channel model.
    Any,
}

impl SimConfig {
    /// Switches the channel model to arbitrary-order delivery.
    pub fn reordering(mut self) -> SimConfig {
        self.channel_order = ChannelOrder::Any;
        self
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            server_gossip: true,
            channel_order: ChannelOrder::Fifo,
            step_limit: 1_000_000,
            metrics: MetricsLevel::Off,
            coverage: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(SimConfig::with_gossip().server_gossip);
        assert!(!SimConfig::without_gossip().server_gossip);
        assert_eq!(SimConfig::default().step_limit, 1_000_000);
        assert_eq!(SimConfig::default().step_limit(42).step_limit, 42);
        assert_eq!(SimConfig::default().channel_order, ChannelOrder::Fifo);
        assert_eq!(
            SimConfig::default().reordering().channel_order,
            ChannelOrder::Any
        );
        assert_eq!(SimConfig::default().metrics, MetricsLevel::Off);
        assert_eq!(
            SimConfig::default().metrics(MetricsLevel::Full).metrics,
            MetricsLevel::Full
        );
        assert!(!SimConfig::default().coverage);
        assert!(SimConfig::default().coverage(true).coverage);
    }
}
