//! Shared-memory emulation algorithms over the [`shmem_sim`] substrate,
//! instrumented for storage cost.
//!
//! These are the algorithms the paper's bounds are confronted with:
//!
//! * [`abd`] — the Attiya–Bar-Noy–Dolev replication algorithm \[3\]
//!   (multi-writer multi-reader atomic register; every server stores one
//!   `(tag, value)` pair). Its total storage is `Θ(N)·log2|V|`
//!   (`(f+1)·log2|V|` on a minimal replica set), independent of write
//!   concurrency.
//! * [`cas`] — Coded Atomic Storage \[5, 6\]: servers store Reed–Solomon
//!   codeword symbols of `log2|V|/k` bits per version, `k ≤ N − 2f`; with
//!   garbage collection ([`cas::CasConfig::gc_depth`], i.e. CASGC) at most
//!   `δ + 1` finalized versions are retained.
//! * [`lossy`] — a deliberately *incorrect* cheap algorithm (servers store
//!   only `b < log2|V|` bits of the value). It under-runs the paper's
//!   bounds and correspondingly violates regularity — the falsification
//!   target for the proof machinery in `shmem-core`.
//!
//! The register interface is uniform: [`reg::RegInv`] / [`reg::RegResp`]
//! invocations carrying [`value::Value`]s, and [`harness`] builds clusters,
//! drives workloads, and extracts [`shmem_spec`] histories.

pub mod abd;
pub mod abd_gossip;
pub mod backend;
pub mod cas;
pub mod corrupt;
pub mod harness;
pub mod hashed;
pub mod lossy;
pub mod multikey;
pub mod nemesis;
pub mod nowriteback;
pub mod reg;
pub mod swmr;
pub mod tag;
pub mod value;
pub mod workloads;

pub use backend::{AbdBackend, CasBackend, HashedBackend, LocalAbd, LocalCas, LocalHashed};
pub use harness::{AbdCluster, CasCluster, GossipCluster, HashedCluster, LossyCluster, NwbCluster};
pub use harness::{ShardedAbdCluster, ShardedCasCluster, ShardedHashedCluster};
pub use multikey::{project_histories, Key, MultiInv, MultiResp, ShardMap};
pub use reg::{RegInv, RegResp};
pub use tag::Tag;
pub use value::{Value, ValueSpec};
