//! The protocols' side of the corruption adversary: shared tampering
//! helpers and the mode vocabulary behind the [`Protocol::corrupt_server`]
//! / [`Protocol::corrupt_msg`] hooks.
//!
//! The simulator's `corrupt_server_state` / `corrupt_head` primitives
//! (and the nemesis `CorruptStore` fault events built on them) are
//! protocol-agnostic; what a corruption *does* is defined here, per
//! protocol, so the same `(mode, salt)` draw tampers equivalently across
//! ABD's replicated values and CAS's coded shares:
//!
//! * **Stored state** — every value-bearing entry the server holds is
//!   tampered (deterministically per key), never the announced hashes:
//!   the adversary corrupts data, it does not get to forge the checksums
//!   guarding that data. See [`modes`] for the three flavors.
//! * **In-flight payload** — only the value-bearing bytes of a message
//!   (coded shares in `PreWrite`/`ReadResp`, carried values in ABD's
//!   `Store`/`QueryResp`) are tampered; routing fields, nonces, tags and
//!   hash announcements stay intact, so a corrupted message still parses
//!   and still reaches its destination.
//!
//! All tampering bottoms out in `shmem-util`'s `tamper_*` primitives, so
//! the sim-level adversary, the store decorator (`shmem-store`), and the
//! corrupting transport (`shmem-net`) flip byte-identical bits for the
//! same `(salt, key)` — the differential tests gate on that.
//!
//! [`Protocol::corrupt_server`]: shmem_sim::Protocol::corrupt_server
//! [`Protocol::corrupt_msg`]: shmem_sim::Protocol::corrupt_msg

use crate::multikey::MultiResp;
use crate::reg::RegResp;
use crate::tag::Tag;
use shmem_erasure::CodeError;
use shmem_util::tamper_bytes;
use std::collections::{BTreeMap, BTreeSet};

/// The stored-state corruption modes. A nemesis draw is reduced
/// `mode % COUNT`, so plans stay valid as modes are added.
pub mod modes {
    /// Flip one byte of the newest finalized coded share (or tamper the
    /// stored value, for replication protocols) — the classic silent
    /// media fault.
    pub const BITFLIP: u8 = 0;
    /// Resurrect a stale version: overwrite the newest finalized share's
    /// bytes with the oldest held version's bytes. Degrades to
    /// [`BITFLIP`] when only one version is held.
    pub const RESURRECT: u8 = 1;
    /// Forge a tag: duplicate the newest share under a higher tag that no
    /// writer ever produced (writer [`super::FORGED_WRITER`]), tampered,
    /// and mark it finalized, so readers chase a fabricated version.
    pub const FORGE_TAG: u8 = 2;
    /// Number of modes, for reducing unconstrained draws.
    pub const COUNT: u8 = 3;
}

/// The writer id stamped into forged tags. Real writers are small dense
/// client indices, so a forged tag is recognizable in traces (and can
/// never collide with a tag a legitimate writer will later mint: writers
/// pick successors of the *sequence* number, with their own id).
pub const FORGED_WRITER: u32 = u32::MAX;

/// Tampers with one `(shares, finalized)` coded slot — the state shape
/// shared by the legacy `CasServer` and the per-key `LocalCas` slots —
/// in `mode`, deterministically in `(salt, key)`.
///
/// Returns whether anything was mutated; refusals (nothing finalized is
/// held, or the tamper is a no-op) leave the slot byte-identical so the
/// caller can skip recording the corruption.
pub(crate) fn corrupt_coded_slot(
    shares: &mut BTreeMap<Tag, Vec<u8>>,
    finalized: &mut BTreeSet<Tag>,
    mode: u8,
    salt: u64,
    key: u64,
) -> bool {
    // Target the newest finalized version that still has its symbol —
    // the one a quorum read will fetch.
    let Some(newest) = finalized
        .iter()
        .rev()
        .find(|t| shares.contains_key(t))
        .copied()
    else {
        return false;
    };
    match mode % modes::COUNT {
        modes::RESURRECT => {
            let oldest = *shares.keys().next().expect("newest implies nonempty");
            if oldest < newest {
                let stale = shares[&oldest].clone();
                let cur = shares.get_mut(&newest).expect("newest is held");
                if *cur == stale {
                    return false;
                }
                *cur = stale;
                true
            } else {
                tamper_bytes(shares.get_mut(&newest).expect("newest is held"), salt, key)
            }
        }
        modes::FORGE_TAG => {
            let top = finalized
                .iter()
                .next_back()
                .copied()
                .expect("newest implies nonempty");
            let forged = top.successor(FORGED_WRITER);
            let mut bytes = shares[&newest].clone();
            tamper_bytes(&mut bytes, salt, key);
            shares.insert(forged, bytes);
            finalized.insert(forged);
            true
        }
        _ => tamper_bytes(shares.get_mut(&newest).expect("newest is held"), salt, key),
    }
}

/// Detections carried by a single-register response: a read that failed
/// its integrity check (hashed CAS caught tampered shares).
pub fn detections_in_reg(resp: &RegResp) -> u64 {
    u64::from(matches!(
        resp,
        RegResp::ReadFailed(CodeError::IntegrityMismatch)
    ))
}

/// Detections carried by a batched response, counted per key.
pub fn detections_in_multi(resp: &MultiResp) -> u64 {
    resp.ops.iter().map(|(_, r)| detections_in_reg(r)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_with(versions: &[(Tag, &[u8])]) -> (BTreeMap<Tag, Vec<u8>>, BTreeSet<Tag>) {
        let shares = versions.iter().map(|&(t, s)| (t, s.to_vec())).collect();
        let finalized = versions.iter().map(|&(t, _)| t).collect();
        (shares, finalized)
    }

    #[test]
    fn bitflip_mutates_only_the_newest_share() {
        let t1 = Tag::new(1, 0);
        let (mut shares, mut fin) = slot_with(&[(Tag::ZERO, &[7, 7]), (t1, &[9, 9])]);
        assert!(corrupt_coded_slot(
            &mut shares,
            &mut fin,
            modes::BITFLIP,
            1,
            2
        ));
        assert_eq!(shares[&Tag::ZERO], vec![7, 7], "old version untouched");
        assert_ne!(shares[&t1], vec![9, 9], "newest version flipped");
        assert_eq!(fin.len(), 2, "no tags forged");
    }

    #[test]
    fn resurrect_replays_the_oldest_bytes() {
        let t1 = Tag::new(1, 0);
        let (mut shares, mut fin) = slot_with(&[(Tag::ZERO, &[7, 7]), (t1, &[9, 9])]);
        assert!(corrupt_coded_slot(
            &mut shares,
            &mut fin,
            modes::RESURRECT,
            1,
            2
        ));
        assert_eq!(shares[&t1], vec![7, 7], "newest now carries stale bytes");
    }

    #[test]
    fn forge_adds_a_higher_finalized_tag() {
        let t1 = Tag::new(1, 0);
        let (mut shares, mut fin) = slot_with(&[(Tag::ZERO, &[7, 7]), (t1, &[9, 9])]);
        assert!(corrupt_coded_slot(
            &mut shares,
            &mut fin,
            modes::FORGE_TAG,
            1,
            2
        ));
        let top = *fin.iter().next_back().unwrap();
        assert!(top > t1);
        assert_eq!(top.writer, FORGED_WRITER);
        assert!(shares.contains_key(&top));
        assert_ne!(shares[&top], vec![9, 9], "forged share is also tampered");
    }

    #[test]
    fn empty_slot_refuses() {
        let mut shares = BTreeMap::new();
        let mut fin = BTreeSet::new();
        assert!(!corrupt_coded_slot(
            &mut shares,
            &mut fin,
            modes::BITFLIP,
            1,
            2
        ));
    }

    #[test]
    fn tampering_is_deterministic_in_salt_and_key() {
        let t1 = Tag::new(1, 0);
        let mk = || slot_with(&[(Tag::ZERO, &[7, 7, 7, 7]), (t1, &[9, 9, 9, 9])]);
        let (mut a, mut af) = mk();
        let (mut b, mut bf) = mk();
        corrupt_coded_slot(&mut a, &mut af, modes::BITFLIP, 5, 6);
        corrupt_coded_slot(&mut b, &mut bf, modes::BITFLIP, 5, 6);
        assert_eq!(a, b);
        let (mut c, mut cf) = mk();
        corrupt_coded_slot(&mut c, &mut cf, modes::BITFLIP, 5, 7);
        assert_ne!(a, c, "different keys flip different bits");
    }
}
