//! Coded Atomic Storage (CAS) \[5, 6\] and its garbage-collected variant
//! CASGC.
//!
//! CAS replaces ABD's full-value replication with Reed–Solomon codeword
//! symbols: for an `[N, k]` code with `k ≤ N − 2f`, every quorum of
//! `q = ⌈(N+k)/2⌉` servers intersects every other in at least `k` servers,
//! so a reader that locates a finalized tag is guaranteed to find `k`
//! symbols of it.
//!
//! * **Write**: query `q` servers for the highest finalized tag; pick the
//!   successor; send each server its codeword symbol (*pre-write*); after
//!   `q` pre-acks, send a *finalize* label; after `q` fin-acks, return.
//! * **Read**: query `q` servers for the highest finalized tag `t*`;
//!   request symbols of `t*` (servers record the fin label as they answer —
//!   the read's write-back); decode once `k` symbols arrive and `q` servers
//!   have answered.
//!
//! Servers accumulate one symbol of `log2|V|/k` bits per concurrent
//! version — the `ν·N/k` storage the paper's Section 2.3 discusses. With
//! [`CasConfig::gc_depth`] `= δ` (CASGC), only the `δ + 1` newest finalized
//! versions are retained, capping storage at the price of conditional
//! liveness (reads are guaranteed only while write concurrency is `≤ δ`).

use crate::backend::{CasBackend, LocalCas};
use crate::multikey::{Key, MultiInv, MultiResp, ShardMap, KEY_WIRE_BYTES, RID_WIRE_BYTES};
use crate::reg::{RegInv, RegResp};
use crate::tag::Tag;
use crate::value::{Value, ValueSpec};
use shmem_erasure::{Codec, Gf256};
use shmem_sim::{hash_of, Ctx, Node, NodeId, Protocol, ServerId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Protocol marker for CAS/CASGC.
pub struct Cas;

impl Protocol for Cas {
    type Msg = CasMsg;
    type Inv = RegInv;
    type Resp = RegResp;
    type Server = CasServer;
    type Client = CasClient;

    fn corrupt_server(server: &mut CasServer, mode: u8, salt: u64) -> bool {
        server.corrupt(mode, salt)
    }

    fn corrupt_msg(msg: &mut CasMsg, salt: u64) -> bool {
        corrupt_cas_msg(msg, salt)
    }
}

/// In-flight corruption for the CAS repertoire: tamper the coded-share
/// payload of the value-bearing messages (`PreWrite` upstream, `ReadResp`
/// downstream), leave routing, nonces and tags intact. The other kinds
/// carry no corruptible payload.
pub(crate) fn corrupt_cas_msg(msg: &mut CasMsg, salt: u64) -> bool {
    match msg {
        CasMsg::PreWrite { share, .. } => shmem_util::tamper_bytes(share, salt, 0),
        CasMsg::ReadResp {
            share: Some(share), ..
        } => shmem_util::tamper_bytes(share, salt, 0),
        _ => false,
    }
}

/// Static CAS parameters shared by servers and clients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CasConfig {
    /// Number of servers.
    pub n: u32,
    /// Failure tolerance.
    pub f: u32,
    /// Code dimension `k` (symbols needed to decode), `1 ≤ k ≤ N − 2f`.
    pub k: u32,
    /// CASGC garbage-collection depth `δ`: keep the `δ + 1` newest
    /// finalized versions. `None` = plain CAS (no GC).
    pub gc_depth: Option<u32>,
    /// The value domain, for storage accounting.
    pub spec: ValueSpec,
}

impl CasConfig {
    /// Validated constructor with the native dimension `k = N − 2f`.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < N` (CAS requires a failure minority).
    pub fn native(n: u32, f: u32, spec: ValueSpec) -> CasConfig {
        assert!(2 * f < n, "CAS requires 2f < N, got N={n}, f={f}");
        CasConfig {
            n,
            f,
            k: n - 2 * f,
            gc_depth: None,
            spec,
        }
    }

    /// Overrides the code dimension.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ N − 2f`.
    pub fn with_k(mut self, k: u32) -> CasConfig {
        assert!(
            k >= 1 && k + 2 * self.f <= self.n,
            "CAS needs 1 <= k <= N - 2f"
        );
        self.k = k;
        self
    }

    /// Enables CASGC with depth `delta`.
    pub fn with_gc(mut self, delta: u32) -> CasConfig {
        self.gc_depth = Some(delta);
        self
    }

    /// The quorum size `q = ⌈(N + k)/2⌉`.
    pub fn quorum(&self) -> u32 {
        (self.n + self.k).div_ceil(2)
    }

    /// The `[N, k]` slab codec this configuration uses. The handle is
    /// memoized process-wide by `(N, k)`: the generator, encode plan and
    /// decode-plan cache are built once and shared across every server,
    /// client and operation of the geometry.
    ///
    /// # Panics
    ///
    /// Never panics for a validated configuration.
    pub fn code(&self) -> Arc<Codec<Gf256>> {
        Codec::shared(self.n as usize, self.k as usize)
            .expect("validated CAS parameters form a legal code")
    }

    /// Bits one codeword symbol carries: `log2|V| / k`.
    pub fn symbol_bits(&self) -> f64 {
        self.spec.bits / self.k as f64
    }
}

/// CAS wire messages. `rid` is a per-client phase nonce.
#[derive(Clone, Debug, PartialEq)]
pub enum CasMsg {
    /// Ask for the server's highest *finalized* tag.
    QueryTag {
        /// Phase nonce.
        rid: u64,
    },
    /// Reply to [`CasMsg::QueryTag`].
    QueryTagResp {
        /// Echoed nonce.
        rid: u64,
        /// Highest finalized tag at the server.
        tag: Tag,
    },
    /// Store one codeword symbol for `tag` (value-dependent message).
    PreWrite {
        /// Phase nonce.
        rid: u64,
        /// The version being written.
        tag: Tag,
        /// This server's codeword symbol.
        share: Vec<u8>,
    },
    /// Acknowledge a pre-write.
    PreAck {
        /// Echoed nonce.
        rid: u64,
    },
    /// Mark `tag` finalized (metadata-only message).
    Finalize {
        /// Phase nonce.
        rid: u64,
        /// The version to finalize.
        tag: Tag,
    },
    /// Acknowledge a finalize.
    FinAck {
        /// Echoed nonce.
        rid: u64,
    },
    /// Read request: finalize `tag` and return its symbol if held.
    ReadGet {
        /// Phase nonce.
        rid: u64,
        /// The version the reader is assembling.
        tag: Tag,
    },
    /// Reply to [`CasMsg::ReadGet`].
    ReadResp {
        /// Echoed nonce.
        rid: u64,
        /// This server's symbol for the tag, if it holds one.
        share: Option<Vec<u8>>,
    },
}

/// Whether a CAS message is *value-dependent* (Definition 6.4). Only the
/// pre-write carries codeword symbols upstream; queries, finalize labels
/// and acks are metadata. CAS writes send value-dependent messages in
/// exactly one phase (the pre-write), so CAS satisfies Assumption 3 — this
/// is why Theorem 6.5's bound applies to it.
pub fn is_value_dependent(msg: &CasMsg) -> bool {
    matches!(msg, CasMsg::PreWrite { .. } | CasMsg::ReadResp { .. })
}

/// Value-dependence restricted to client-to-server traffic (what the
/// Section 6 construction withholds): only `PreWrite`.
pub fn is_value_dependent_upstream(msg: &CasMsg) -> bool {
    matches!(msg, CasMsg::PreWrite { .. })
}

/// A CAS server: a store of `(tag → symbol)` plus finalize labels.
#[derive(Clone, Debug)]
pub struct CasServer {
    cfg: CasConfig,
    shares: BTreeMap<Tag, Vec<u8>>,
    finalized: BTreeSet<Tag>,
}

impl CasServer {
    /// Server `index` of a cluster, initialized with its symbol of the
    /// register's initial value under tag [`Tag::ZERO`] (finalized).
    pub fn new(cfg: CasConfig, index: ServerId, initial: Value) -> CasServer {
        let shares = cfg.code().encode_bytes(&ValueSpec::to_bytes(initial));
        let mut map = BTreeMap::new();
        map.insert(Tag::ZERO, shares[index.0 as usize].clone());
        CasServer {
            cfg,
            shares: map,
            finalized: [Tag::ZERO].into(),
        }
    }

    /// Number of coded versions currently held.
    pub fn versions_held(&self) -> usize {
        self.shares.len()
    }

    /// Highest finalized tag.
    pub fn max_finalized(&self) -> Tag {
        self.finalized
            .iter()
            .next_back()
            .copied()
            .unwrap_or(Tag::ZERO)
    }

    fn garbage_collect(&mut self) {
        let Some(delta) = self.cfg.gc_depth else {
            return;
        };
        // Keep symbols for the δ+1 newest finalized tags and anything newer
        // (still-unfinalized in-flight versions).
        let keep_from = self.finalized.iter().rev().nth(delta as usize).copied();
        if let Some(cutoff) = keep_from {
            self.shares.retain(|&t, _| t >= cutoff);
        }
    }

    /// Corruption-adversary entry point: tamper the coded slot in `mode`
    /// (see [`crate::corrupt::modes`]). `FORGE_TAG` is degraded to
    /// `BITFLIP` here: the legacy single-register reader retries a read
    /// whose tag yields too few symbols, so a forged tag starves it into
    /// its GC-starvation panic instead of producing a verdict — the
    /// forgery attack is meaningful for the batched readers, which fail
    /// the key and move on.
    pub fn corrupt(&mut self, mode: u8, salt: u64) -> bool {
        let mode = match mode % crate::corrupt::modes::COUNT {
            crate::corrupt::modes::FORGE_TAG => crate::corrupt::modes::BITFLIP,
            m => m,
        };
        crate::corrupt::corrupt_coded_slot(&mut self.shares, &mut self.finalized, mode, salt, 0)
    }
}

impl Node<Cas> for CasServer {
    fn on_message(&mut self, from: NodeId, msg: CasMsg, ctx: &mut Ctx<Cas>) {
        match msg {
            CasMsg::QueryTag { rid } => ctx.send(
                from,
                CasMsg::QueryTagResp {
                    rid,
                    tag: self.max_finalized(),
                },
            ),
            CasMsg::PreWrite { rid, tag, share } => {
                self.shares.entry(tag).or_insert(share);
                self.garbage_collect();
                ctx.send(from, CasMsg::PreAck { rid });
            }
            CasMsg::Finalize { rid, tag } => {
                self.finalized.insert(tag);
                self.garbage_collect();
                ctx.send(from, CasMsg::FinAck { rid });
            }
            CasMsg::ReadGet { rid, tag } => {
                // The read's write-back: answering the request finalizes
                // the tag at this server.
                self.finalized.insert(tag);
                self.garbage_collect();
                ctx.send(
                    from,
                    CasMsg::ReadResp {
                        rid,
                        share: self.shares.get(&tag).cloned(),
                    },
                );
            }
            CasMsg::QueryTagResp { .. }
            | CasMsg::PreAck { .. }
            | CasMsg::FinAck { .. }
            | CasMsg::ReadResp { .. } => {}
        }
    }

    fn state_bits(&self) -> f64 {
        // Each retained version costs one codeword symbol: log2|V| / k.
        self.shares.len() as f64 * self.cfg.symbol_bits()
    }

    fn metadata_bits(&self) -> f64 {
        (self.shares.len() + self.finalized.len()) as f64 * Tag::BITS
    }

    fn digest(&self) -> u64 {
        hash_of(&(&self.shares, &self.finalized))
    }
}

/// Which phase a CAS client is in.
#[derive(Clone, Debug)]
enum Phase {
    Idle,
    /// Writer querying for the highest finalized tag.
    WriteQuery {
        value: Value,
        tags: BTreeMap<u32, Tag>,
    },
    /// Writer waiting for pre-write acks.
    PreWrite {
        tag: Tag,
        acks: BTreeSet<u32>,
    },
    /// Writer waiting for finalize acks.
    Finalize {
        acks: BTreeSet<u32>,
    },
    /// Reader querying for the highest finalized tag.
    ReadQuery {
        tags: BTreeMap<u32, Tag>,
        retries: u32,
    },
    /// Reader assembling symbols of `tag`.
    ReadGet {
        tag: Tag,
        responses: BTreeSet<u32>,
        shares: BTreeMap<u32, Vec<u8>>,
        retries: u32,
    },
}

/// A CAS client; acts as writer or reader depending on the invocation.
#[derive(Clone, Debug)]
pub struct CasClient {
    cfg: CasConfig,
    me: u32,
    rid: u64,
    phase: Phase,
}

impl CasClient {
    /// Maximum read restarts before the client gives up (a read can race
    /// CASGC garbage collection; CASGC liveness is conditional).
    pub const MAX_READ_RETRIES: u32 = 64;

    /// A client for the given cluster configuration; `me` is the client id
    /// used for tag tie-breaks.
    pub fn new(cfg: CasConfig, me: u32) -> CasClient {
        CasClient {
            cfg,
            me,
            rid: 0,
            phase: Phase::Idle,
        }
    }

    fn begin_read_query(&mut self, retries: u32, ctx: &mut Ctx<Cas>) {
        self.rid += 1;
        self.phase = Phase::ReadQuery {
            tags: BTreeMap::new(),
            retries,
        };
        ctx.broadcast_to_servers(self.cfg.n, CasMsg::QueryTag { rid: self.rid });
    }
}

impl Node<Cas> for CasClient {
    fn on_invoke(&mut self, inv: RegInv, ctx: &mut Ctx<Cas>) {
        assert!(
            matches!(self.phase, Phase::Idle),
            "client invoked while an operation is in flight"
        );
        match inv {
            RegInv::Write(value) => {
                self.rid += 1;
                self.phase = Phase::WriteQuery {
                    value,
                    tags: BTreeMap::new(),
                };
                ctx.broadcast_to_servers(self.cfg.n, CasMsg::QueryTag { rid: self.rid });
            }
            RegInv::Read => self.begin_read_query(0, ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: CasMsg, ctx: &mut Ctx<Cas>) {
        let server = match from.as_server() {
            Some(s) => s.0,
            None => return,
        };
        let q = self.cfg.quorum();
        match (&mut self.phase, msg) {
            (Phase::WriteQuery { value, tags }, CasMsg::QueryTagResp { rid, tag })
                if rid == self.rid =>
            {
                tags.insert(server, tag);
                if tags.len() as u32 == q {
                    let max = tags.values().max().copied().unwrap_or(Tag::ZERO);
                    let tag = max.successor(self.me);
                    let value = *value;
                    let shares = self.cfg.code().encode_bytes(&ValueSpec::to_bytes(value));
                    self.rid += 1;
                    for (i, share) in shares.into_iter().enumerate() {
                        ctx.send(
                            NodeId::server(i as u32),
                            CasMsg::PreWrite {
                                rid: self.rid,
                                tag,
                                share,
                            },
                        );
                    }
                    self.phase = Phase::PreWrite {
                        tag,
                        acks: BTreeSet::new(),
                    };
                }
            }
            (Phase::PreWrite { tag, acks }, CasMsg::PreAck { rid }) if rid == self.rid => {
                acks.insert(server);
                if acks.len() as u32 == q {
                    let tag = *tag;
                    self.rid += 1;
                    ctx.broadcast_to_servers(self.cfg.n, CasMsg::Finalize { rid: self.rid, tag });
                    self.phase = Phase::Finalize {
                        acks: BTreeSet::new(),
                    };
                }
            }
            (Phase::Finalize { acks }, CasMsg::FinAck { rid }) if rid == self.rid => {
                acks.insert(server);
                if acks.len() as u32 == q {
                    self.phase = Phase::Idle;
                    self.rid += 1;
                    ctx.respond(RegResp::WriteAck);
                }
            }
            (Phase::ReadQuery { tags, retries }, CasMsg::QueryTagResp { rid, tag })
                if rid == self.rid =>
            {
                tags.insert(server, tag);
                if tags.len() as u32 == q {
                    let t = tags.values().max().copied().unwrap_or(Tag::ZERO);
                    let retries = *retries;
                    self.rid += 1;
                    ctx.broadcast_to_servers(
                        self.cfg.n,
                        CasMsg::ReadGet {
                            rid: self.rid,
                            tag: t,
                        },
                    );
                    self.phase = Phase::ReadGet {
                        tag: t,
                        responses: BTreeSet::new(),
                        shares: BTreeMap::new(),
                        retries,
                    };
                }
            }
            (
                Phase::ReadGet {
                    tag,
                    responses,
                    shares,
                    retries,
                },
                CasMsg::ReadResp { rid, share },
            ) if rid == self.rid => {
                responses.insert(server);
                if let Some(s) = share {
                    shares.insert(server, s);
                }
                let enough_responses = responses.len() as u32 >= q;
                let decodable = shares.len() as u32 >= self.cfg.k;
                if enough_responses && decodable {
                    let picked: Vec<(usize, Vec<u8>)> = shares
                        .iter()
                        .take(self.cfg.k as usize)
                        .map(|(&i, s)| (i as usize, s.clone()))
                        .collect();
                    let decoded = self
                        .cfg
                        .code()
                        .decode_bytes(&picked, ValueSpec::VALUE_BYTES);
                    let _ = tag;
                    self.phase = Phase::Idle;
                    self.rid += 1;
                    match decoded {
                        Ok(bytes) => ctx.respond(RegResp::ReadValue(ValueSpec::from_bytes(&bytes))),
                        // Corrupted or inconsistent symbols: fail the read
                        // rather than panic the client automaton.
                        Err(e) => ctx.respond(RegResp::ReadFailed(e)),
                    }
                } else if responses.len() as u32 == self.cfg.n && !decodable {
                    // Every server answered but the symbols were garbage
                    // collected under us: restart the read (CASGC's
                    // conditional liveness).
                    let r = *retries + 1;
                    assert!(
                        r <= Self::MAX_READ_RETRIES,
                        "read starved by garbage collection {r} times"
                    );
                    self.begin_read_query(r, ctx);
                }
            }
            _ => {}
        }
    }

    fn digest(&self) -> u64 {
        let phase_tag = match &self.phase {
            Phase::Idle => 0u8,
            Phase::WriteQuery { .. } => 1,
            Phase::PreWrite { .. } => 2,
            Phase::Finalize { .. } => 3,
            Phase::ReadQuery { .. } => 4,
            Phase::ReadGet { .. } => 5,
        };
        hash_of(&(self.me, self.rid, phase_tag, format!("{:?}", self.phase)))
    }
}

/// Protocol marker for sharded multi-register CAS.
///
/// Each shard is an independent `(replicas, f)` CAS instance: servers keep
/// a per-key `(tag → symbol)` store plus finalize labels, and clients run
/// the write (query → pre-write → finalize) and read (query → get) rounds
/// for a whole batch of keys at once, one message per (client, server)
/// pair per round. Batches must be *homogeneous* (all writes or all
/// reads) — the two CAS flows have different round structures.
///
/// Unlike legacy CASGC clients, sharded reads do not restart when garbage
/// collection races them; an undecodable key surfaces as
/// [`RegResp::ReadFailed`] for that key alone.
pub struct ShardedCas;

impl Protocol for ShardedCas {
    type Msg = ShardedCasMsg;
    type Inv = MultiInv;
    type Resp = MultiResp;
    type Server = ShardedCasServer;
    type Client = ShardedCasClient;

    fn msg_wire_bytes(msg: &ShardedCasMsg) -> u64 {
        msg.wire_bytes()
    }

    fn corrupt_server(server: &mut ShardedCasServer, mode: u8, salt: u64) -> bool {
        server.backend_mut().corrupt(mode, salt)
    }

    fn corrupt_msg(msg: &mut ShardedCasMsg, salt: u64) -> bool {
        corrupt_sharded_cas_msg(msg, salt)
    }
}

/// In-flight corruption for the batched CAS repertoire: tamper every
/// key's coded-share payload (deterministically per key), leave routing,
/// nonces and tags intact.
pub(crate) fn corrupt_sharded_cas_msg(msg: &mut ShardedCasMsg, salt: u64) -> bool {
    match msg {
        ShardedCasMsg::PreWrite { items, .. } => {
            let mut tampered = false;
            for (key, _, share) in items.iter_mut() {
                tampered |= shmem_util::tamper_bytes(share, salt, *key);
            }
            tampered
        }
        ShardedCasMsg::ReadResp { items, .. } => {
            let mut tampered = false;
            for (key, share) in items.iter_mut() {
                if let Some(share) = share {
                    tampered |= shmem_util::tamper_bytes(share, salt, *key);
                }
            }
            tampered
        }
        _ => false,
    }
}

/// Static sharded-CAS parameters: a placement plus the per-shard code.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedCasConfig {
    /// Key → shard → server placement.
    pub map: ShardMap,
    /// Per-shard failure tolerance.
    pub f: u32,
    /// Per-shard code dimension (`replicas` total shares, `k` to decode).
    pub k: u32,
    /// CASGC depth, per key: keep the `δ + 1` newest finalized versions.
    pub gc_depth: Option<u32>,
    /// The value domain.
    pub spec: ValueSpec,
}

impl ShardedCasConfig {
    /// The fault-tolerant profile: `k = replicas − 2f`, the legacy CAS
    /// dimension applied within each shard.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < replicas`.
    pub fn native(map: ShardMap, f: u32, spec: ValueSpec) -> ShardedCasConfig {
        let r = map.replicas();
        assert!(2 * f < r, "CAS requires 2f < replicas, got {r}, f={f}");
        ShardedCasConfig {
            map,
            f,
            k: r - 2 * f,
            gc_depth: None,
            spec,
        }
    }

    /// The storage-optimal MDS profile: `k = replicas − f`, so one
    /// finalized version costs exactly `replicas/(replicas − f)` values —
    /// the `ν·N/(N−f)` point of the paper's bound catalogue. The price is
    /// conditional liveness: quorums of `⌈(2·replicas − f)/2⌉` servers
    /// leave no slack for crashes during a round, so this profile is for
    /// measuring the storage frontier, not for surviving faults mid-write.
    ///
    /// # Panics
    ///
    /// Panics unless `f < replicas`.
    pub fn coded(map: ShardMap, f: u32, spec: ValueSpec) -> ShardedCasConfig {
        let r = map.replicas();
        assert!(f < r, "code dimension needs f < replicas, got {r}, f={f}");
        ShardedCasConfig {
            map,
            f,
            k: r - f,
            gc_depth: None,
            spec,
        }
    }

    /// Enables per-key garbage collection with depth `delta`.
    pub fn with_gc(mut self, delta: u32) -> ShardedCasConfig {
        self.gc_depth = Some(delta);
        self
    }

    /// Per-shard quorum `q = ⌈(replicas + k)/2⌉`.
    pub fn quorum(&self) -> u32 {
        (self.map.replicas() + self.k).div_ceil(2)
    }

    /// The per-shard `[replicas, k]` codec, memoized process-wide — every
    /// shard of the geometry shares one generator and decode-plan cache.
    ///
    /// # Panics
    ///
    /// Never panics for a validated configuration.
    pub fn code(&self) -> Arc<Codec<Gf256>> {
        Codec::shared(self.map.replicas() as usize, self.k as usize)
            .expect("validated sharded-CAS parameters form a legal code")
    }

    /// Bits one codeword symbol carries: `log2|V| / k`.
    pub fn symbol_bits(&self) -> f64 {
        self.spec.bits / self.k as f64
    }
}

/// Batched CAS wire messages: the legacy repertoire with per-key payload
/// vectors.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardedCasMsg {
    /// Ask for the highest finalized tag of every listed key.
    QueryTag {
        /// Phase nonce.
        rid: u64,
        /// The keys this server covers for the batch.
        keys: Vec<Key>,
    },
    /// Reply to [`ShardedCasMsg::QueryTag`].
    QueryTagResp {
        /// Echoed nonce.
        rid: u64,
        /// Highest finalized tag per queried key.
        items: Vec<(Key, Tag)>,
    },
    /// Store one codeword symbol per key (the value-dependent round).
    PreWrite {
        /// Phase nonce.
        rid: u64,
        /// `(key, tag, this server's symbol)` per key.
        items: Vec<(Key, Tag, Vec<u8>)>,
    },
    /// Acknowledge a pre-write batch.
    PreAck {
        /// Echoed nonce.
        rid: u64,
    },
    /// Mark every listed `(key, tag)` finalized.
    Finalize {
        /// Phase nonce.
        rid: u64,
        /// Versions to finalize.
        items: Vec<(Key, Tag)>,
    },
    /// Acknowledge a finalize batch.
    FinAck {
        /// Echoed nonce.
        rid: u64,
    },
    /// Read request: finalize each `(key, tag)` and return held symbols.
    ReadGet {
        /// Phase nonce.
        rid: u64,
        /// The versions the reader is assembling.
        items: Vec<(Key, Tag)>,
    },
    /// Reply to [`ShardedCasMsg::ReadGet`].
    ReadResp {
        /// Echoed nonce.
        rid: u64,
        /// Per key: this server's symbol for the requested tag, if held.
        items: Vec<(Key, Option<Vec<u8>>)>,
    },
}

impl ShardedCasMsg {
    /// Exact serialized size: nonce plus per-entry payload (shares at
    /// their real byte length, options at one presence byte).
    pub fn wire_bytes(&self) -> u64 {
        const KT: u64 = KEY_WIRE_BYTES + Tag::WIRE_BYTES;
        match self {
            ShardedCasMsg::QueryTag { keys, .. } => {
                RID_WIRE_BYTES + KEY_WIRE_BYTES * keys.len() as u64
            }
            ShardedCasMsg::QueryTagResp { items, .. }
            | ShardedCasMsg::Finalize { items, .. }
            | ShardedCasMsg::ReadGet { items, .. } => RID_WIRE_BYTES + KT * items.len() as u64,
            ShardedCasMsg::PreWrite { items, .. } => {
                RID_WIRE_BYTES
                    + items
                        .iter()
                        .map(|(_, _, share)| KT + share.len() as u64)
                        .sum::<u64>()
            }
            ShardedCasMsg::ReadResp { items, .. } => {
                RID_WIRE_BYTES
                    + items
                        .iter()
                        .map(|(_, share)| {
                            KEY_WIRE_BYTES + 1 + share.as_ref().map_or(0, |s| s.len() as u64)
                        })
                        .sum::<u64>()
            }
            ShardedCasMsg::PreAck { .. } | ShardedCasMsg::FinAck { .. } => RID_WIRE_BYTES,
        }
    }
}

/// A sharded CAS server: a lazily materialized key slot per touched
/// key. An untouched key logically holds its initial-value symbol under
/// [`Tag::ZERO`] (finalized); the slot springs into existence — seeded
/// with exactly that symbol — the first time a message names the key.
///
/// Generic over the [`CasBackend`] holding the per-key slots, so the same
/// automaton runs against the sequential in-struct map ([`LocalCas`], the
/// default) or a shared lock-free store (`shmem-store`).
#[derive(Clone, Debug)]
pub struct ShardedCasServerOn<B> {
    cfg: ShardedCasConfig,
    me: u32,
    backend: B,
}

/// The sequential reference server — the default everywhere in the repo.
pub type ShardedCasServer = ShardedCasServerOn<LocalCas>;

impl ShardedCasServerOn<LocalCas> {
    /// Server `index`, initialized so every key of its shards reads as the
    /// register initial value.
    pub fn new(cfg: ShardedCasConfig, index: ServerId, initial: Value) -> ShardedCasServer {
        let backend = LocalCas::new(cfg.clone(), index.0, initial);
        ShardedCasServerOn::with_backend(cfg, index, backend)
    }
}

impl<B: CasBackend> ShardedCasServerOn<B> {
    /// A server over an explicit backend (possibly shared with others).
    /// The backend must be seeded for the same `cfg` and server index.
    pub fn with_backend(
        cfg: ShardedCasConfig,
        index: ServerId,
        backend: B,
    ) -> ShardedCasServerOn<B> {
        ShardedCasServerOn {
            cfg,
            me: index.0,
            backend,
        }
    }

    /// Coded versions currently held for `key` (0 for untouched keys).
    pub fn versions_held(&self, key: Key) -> usize {
        self.backend.versions_held(key)
    }

    /// Highest finalized tag for `key`.
    pub fn max_finalized(&self, key: Key) -> Tag {
        self.backend.max_finalized(key)
    }

    /// Number of keys with materialized state.
    pub fn keys_held(&self) -> usize {
        self.backend.keys_held()
    }

    /// This server's index in the placement.
    pub fn index(&self) -> u32 {
        self.me
    }

    /// The state backend (for store-level assertions in tests).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (the hashed layer stores announced hashes
    /// through this).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<P, B> Node<P> for ShardedCasServerOn<B>
where
    P: Protocol<Msg = ShardedCasMsg, Inv = MultiInv, Resp = MultiResp>,
    B: CasBackend + Clone + std::fmt::Debug,
{
    fn on_message(&mut self, from: NodeId, msg: ShardedCasMsg, ctx: &mut Ctx<P>) {
        match msg {
            ShardedCasMsg::QueryTag { rid, keys } => {
                let items = keys
                    .iter()
                    .map(|&k| (k, self.backend.max_finalized(k)))
                    .collect();
                ctx.send(from, ShardedCasMsg::QueryTagResp { rid, items });
            }
            ShardedCasMsg::PreWrite { rid, items } => {
                for (key, tag, share) in items {
                    // Out-of-shard keys are silently ignored by the backend.
                    self.backend.pre_write(key, tag, share);
                }
                ctx.send(from, ShardedCasMsg::PreAck { rid });
            }
            ShardedCasMsg::Finalize { rid, items } => {
                for (key, tag) in items {
                    self.backend.finalize(key, tag);
                }
                ctx.send(from, ShardedCasMsg::FinAck { rid });
            }
            ShardedCasMsg::ReadGet { rid, items } => {
                let mut replies = Vec::with_capacity(items.len());
                for (key, tag) in items {
                    // The read's write-back: answering finalizes the tag.
                    // Out-of-shard keys are omitted from the reply rather
                    // than answered with junk.
                    let Some(share) = self.backend.read_get(key, tag) else {
                        continue;
                    };
                    replies.push((key, share));
                }
                ctx.send(
                    from,
                    ShardedCasMsg::ReadResp {
                        rid,
                        items: replies,
                    },
                );
            }
            ShardedCasMsg::QueryTagResp { .. }
            | ShardedCasMsg::PreAck { .. }
            | ShardedCasMsg::FinAck { .. }
            | ShardedCasMsg::ReadResp { .. } => {}
        }
    }

    fn state_bits(&self) -> f64 {
        self.backend.total_versions() as f64 * self.cfg.symbol_bits()
    }

    fn metadata_bits(&self) -> f64 {
        let tags = self.backend.total_tags();
        tags as f64 * Tag::BITS + self.backend.keys_held() as f64 * 64.0 // + key names
    }

    fn digest(&self) -> u64 {
        self.backend.digest_with(self.me)
    }
}

/// Which phase a sharded CAS client is in. Every phase is a lockstep
/// barrier over all batch keys, mirroring the sharded ABD structure.
#[derive(Clone, Debug)]
enum ShardedCasPhase {
    Idle,
    /// Writer querying finalized tags. `acc`: per key, responses counted
    /// and the highest tag seen.
    WriteQuery {
        op: MultiInv,
        heard: BTreeSet<u32>,
        acc: BTreeMap<Key, (u32, Tag)>,
    },
    /// Writer waiting for pre-write acks on `decided` versions.
    PreWrite {
        decided: Vec<(Key, Tag)>,
        heard: BTreeSet<u32>,
        acks: BTreeMap<Key, u32>,
    },
    /// Writer waiting for finalize acks.
    Finalize {
        decided: Vec<(Key, Tag)>,
        heard: BTreeSet<u32>,
        acks: BTreeMap<Key, u32>,
    },
    /// Reader querying finalized tags.
    ReadQuery {
        op: MultiInv,
        heard: BTreeSet<u32>,
        acc: BTreeMap<Key, (u32, Tag)>,
    },
    /// Reader assembling symbols: per key, responses counted and symbols
    /// by responding server.
    ReadGet {
        targets: Vec<(Key, Tag)>,
        heard: BTreeSet<u32>,
        responses: BTreeMap<Key, u32>,
        shares: BTreeMap<Key, BTreeMap<u32, Vec<u8>>>,
    },
}

/// A sharded CAS client; batches must be homogeneous (all writes or all
/// reads).
#[derive(Clone, Debug)]
pub struct ShardedCasClient {
    cfg: ShardedCasConfig,
    me: u32,
    rid: u64,
    phase: ShardedCasPhase,
}

impl ShardedCasClient {
    /// A client for the given configuration; `me` breaks tag ties.
    pub fn new(cfg: ShardedCasConfig, me: u32) -> ShardedCasClient {
        ShardedCasClient {
            cfg,
            me,
            rid: 0,
            phase: ShardedCasPhase::Idle,
        }
    }

    /// The batch keys each server covers, in canonical server order.
    fn per_server_keys(map: &ShardMap, keys: &[Key]) -> Vec<(u32, Vec<Key>)> {
        let mut out: Vec<(u32, Vec<Key>)> = Vec::new();
        for server in 0..map.n() {
            let mine: Vec<Key> = keys
                .iter()
                .copied()
                .filter(|&k| map.covers(server, k))
                .collect();
            if !mine.is_empty() {
                out.push((server, mine));
            }
        }
        out
    }

    /// Sends one tagged-item round: each server gets the `(key, tag)`
    /// pairs it covers, wrapped by `build`.
    fn send_tagged_round(
        &self,
        ctx: &mut Ctx<impl Protocol<Msg = ShardedCasMsg, Inv = MultiInv, Resp = MultiResp>>,
        decided: &[(Key, Tag)],
        build: impl Fn(u64, Vec<(Key, Tag)>) -> ShardedCasMsg,
    ) {
        let keys: Vec<Key> = decided.iter().map(|&(k, _)| k).collect();
        for (server, mine) in Self::per_server_keys(&self.cfg.map, &keys) {
            let items = decided
                .iter()
                .filter(|&&(k, _)| mine.contains(&k))
                .copied()
                .collect();
            ctx.send(NodeId::server(server), build(self.rid, items));
        }
    }
}

impl<P> Node<P> for ShardedCasClient
where
    P: Protocol<Msg = ShardedCasMsg, Inv = MultiInv, Resp = MultiResp>,
{
    fn on_invoke(&mut self, inv: MultiInv, ctx: &mut Ctx<P>) {
        assert!(
            matches!(self.phase, ShardedCasPhase::Idle),
            "client invoked while an operation is in flight"
        );
        inv.assert_well_formed();
        let writes = inv
            .ops
            .iter()
            .filter(|(_, i)| matches!(i, RegInv::Write(_)))
            .count();
        assert!(
            writes == 0 || writes == inv.ops.len(),
            "sharded CAS batches must be homogeneous (all writes or all reads)"
        );
        self.rid += 1;
        let acc: BTreeMap<Key, (u32, Tag)> = inv.keys().map(|k| (k, (0, Tag::ZERO))).collect();
        let keys: Vec<Key> = inv.keys().collect();
        for (server, mine) in Self::per_server_keys(&self.cfg.map, &keys) {
            ctx.send(
                NodeId::server(server),
                ShardedCasMsg::QueryTag {
                    rid: self.rid,
                    keys: mine,
                },
            );
        }
        self.phase = if writes > 0 {
            ShardedCasPhase::WriteQuery {
                op: inv,
                heard: BTreeSet::new(),
                acc,
            }
        } else {
            ShardedCasPhase::ReadQuery {
                op: inv,
                heard: BTreeSet::new(),
                acc,
            }
        };
    }

    fn on_message(&mut self, from: NodeId, msg: ShardedCasMsg, ctx: &mut Ctx<P>) {
        let server = match from.as_server() {
            Some(s) => s.0,
            None => return,
        };
        let q = self.cfg.quorum();
        match (&mut self.phase, msg) {
            (
                ShardedCasPhase::WriteQuery { heard, acc, .. },
                ShardedCasMsg::QueryTagResp { rid, items },
            ) if rid == self.rid => {
                if !heard.insert(server) {
                    return;
                }
                for (key, tag) in items {
                    if let Some(e) = acc.get_mut(&key) {
                        e.0 += 1;
                        e.1 = e.1.max(tag);
                    }
                }
                if acc.values().all(|&(count, _)| count >= q) {
                    let ShardedCasPhase::WriteQuery { op, acc, .. } =
                        std::mem::replace(&mut self.phase, ShardedCasPhase::Idle)
                    else {
                        unreachable!("matched WriteQuery above");
                    };
                    let code = self.cfg.code();
                    let map = self.cfg.map;
                    let mut decided: Vec<(Key, Tag)> = Vec::with_capacity(op.ops.len());
                    let mut shares_by_key: BTreeMap<Key, Vec<Vec<u8>>> = BTreeMap::new();
                    for &(key, inv) in &op.ops {
                        let RegInv::Write(value) = inv else {
                            unreachable!("write batches are homogeneous");
                        };
                        let tag = acc[&key].1.successor(self.me);
                        decided.push((key, tag));
                        shares_by_key.insert(key, code.encode_bytes(&ValueSpec::to_bytes(value)));
                    }
                    self.rid += 1;
                    let keys: Vec<Key> = decided.iter().map(|&(k, _)| k).collect();
                    for (server, mine) in Self::per_server_keys(&map, &keys) {
                        let items = decided
                            .iter()
                            .filter(|&&(k, _)| mine.contains(&k))
                            .map(|&(k, t)| {
                                let pos = map
                                    .position_for_key(server, k)
                                    .expect("per_server_keys only lists covered keys");
                                (k, t, shares_by_key[&k][pos as usize].clone())
                            })
                            .collect();
                        ctx.send(
                            NodeId::server(server),
                            ShardedCasMsg::PreWrite {
                                rid: self.rid,
                                items,
                            },
                        );
                    }
                    let acks = decided.iter().map(|&(k, _)| (k, 0)).collect();
                    self.phase = ShardedCasPhase::PreWrite {
                        decided,
                        heard: BTreeSet::new(),
                        acks,
                    };
                }
            }
            (ShardedCasPhase::PreWrite { heard, acks, .. }, ShardedCasMsg::PreAck { rid })
                if rid == self.rid =>
            {
                if !heard.insert(server) {
                    return;
                }
                let map = self.cfg.map;
                for (&key, count) in acks.iter_mut() {
                    if map.covers(server, key) {
                        *count += 1;
                    }
                }
                if acks.values().all(|&count| count >= q) {
                    let ShardedCasPhase::PreWrite { decided, .. } =
                        std::mem::replace(&mut self.phase, ShardedCasPhase::Idle)
                    else {
                        unreachable!("matched PreWrite above");
                    };
                    self.rid += 1;
                    self.send_tagged_round(ctx, &decided, |rid, items| ShardedCasMsg::Finalize {
                        rid,
                        items,
                    });
                    let acks = decided.iter().map(|&(k, _)| (k, 0)).collect();
                    self.phase = ShardedCasPhase::Finalize {
                        decided,
                        heard: BTreeSet::new(),
                        acks,
                    };
                }
            }
            (ShardedCasPhase::Finalize { heard, acks, .. }, ShardedCasMsg::FinAck { rid })
                if rid == self.rid =>
            {
                if !heard.insert(server) {
                    return;
                }
                let map = self.cfg.map;
                for (&key, count) in acks.iter_mut() {
                    if map.covers(server, key) {
                        *count += 1;
                    }
                }
                if acks.values().all(|&count| count >= q) {
                    let ShardedCasPhase::Finalize { decided, .. } =
                        std::mem::replace(&mut self.phase, ShardedCasPhase::Idle)
                    else {
                        unreachable!("matched Finalize above");
                    };
                    self.rid += 1;
                    ctx.respond(MultiResp {
                        ops: decided
                            .iter()
                            .map(|&(k, _)| (k, RegResp::WriteAck))
                            .collect(),
                    });
                }
            }
            (
                ShardedCasPhase::ReadQuery { heard, acc, .. },
                ShardedCasMsg::QueryTagResp { rid, items },
            ) if rid == self.rid => {
                if !heard.insert(server) {
                    return;
                }
                for (key, tag) in items {
                    if let Some(e) = acc.get_mut(&key) {
                        e.0 += 1;
                        e.1 = e.1.max(tag);
                    }
                }
                if acc.values().all(|&(count, _)| count >= q) {
                    let ShardedCasPhase::ReadQuery { op, acc, .. } =
                        std::mem::replace(&mut self.phase, ShardedCasPhase::Idle)
                    else {
                        unreachable!("matched ReadQuery above");
                    };
                    let targets: Vec<(Key, Tag)> = op.keys().map(|k| (k, acc[&k].1)).collect();
                    self.rid += 1;
                    self.send_tagged_round(ctx, &targets, |rid, items| ShardedCasMsg::ReadGet {
                        rid,
                        items,
                    });
                    let responses = targets.iter().map(|&(k, _)| (k, 0)).collect();
                    let shares = targets.iter().map(|&(k, _)| (k, BTreeMap::new())).collect();
                    self.phase = ShardedCasPhase::ReadGet {
                        targets,
                        heard: BTreeSet::new(),
                        responses,
                        shares,
                    };
                }
            }
            (
                ShardedCasPhase::ReadGet {
                    heard,
                    responses,
                    shares,
                    ..
                },
                ShardedCasMsg::ReadResp { rid, items },
            ) if rid == self.rid => {
                if !heard.insert(server) {
                    return;
                }
                let map = self.cfg.map;
                for (key, share) in items {
                    // Only covering servers hold decodable positions for
                    // a key; an echo from any other server must count
                    // toward neither the quorum nor the share pool.
                    if !map.covers(server, key) {
                        continue;
                    }
                    if let Some(count) = responses.get_mut(&key) {
                        *count += 1;
                    }
                    if let (Some(by_server), Some(s)) = (shares.get_mut(&key), share) {
                        by_server.insert(server, s);
                    }
                }
                if responses.values().all(|&count| count >= q) {
                    let ShardedCasPhase::ReadGet {
                        targets, shares, ..
                    } = std::mem::replace(&mut self.phase, ShardedCasPhase::Idle)
                    else {
                        unreachable!("matched ReadGet above");
                    };
                    let code = self.cfg.code();
                    let map = self.cfg.map;
                    let k_dim = self.cfg.k as usize;
                    self.rid += 1;
                    let ops = targets
                        .iter()
                        .map(|&(key, _)| {
                            let picked: Vec<(usize, Vec<u8>)> = shares[&key]
                                .iter()
                                .filter_map(|(&s, share)| {
                                    // Coverage is enforced at insertion;
                                    // filter (rather than unwrap) keeps
                                    // hostile input panic-free even so.
                                    let pos = map.position_for_key(s, key)?;
                                    Some((pos as usize, share.clone()))
                                })
                                .take(k_dim)
                                .collect();
                            let resp = match code.decode_bytes(&picked, ValueSpec::VALUE_BYTES) {
                                Ok(bytes) => RegResp::ReadValue(ValueSpec::from_bytes(&bytes)),
                                // Symbols collected under us (GC race) or
                                // corrupted: fail this key's read alone.
                                Err(e) => RegResp::ReadFailed(e),
                            };
                            (key, resp)
                        })
                        .collect();
                    ctx.respond(MultiResp { ops });
                }
            }
            _ => {} // stale or out-of-phase message
        }
    }

    fn digest(&self) -> u64 {
        let phase_tag = match &self.phase {
            ShardedCasPhase::Idle => 0u8,
            ShardedCasPhase::WriteQuery { .. } => 1,
            ShardedCasPhase::PreWrite { .. } => 2,
            ShardedCasPhase::Finalize { .. } => 3,
            ShardedCasPhase::ReadQuery { .. } => 4,
            ShardedCasPhase::ReadGet { .. } => 5,
        };
        hash_of(&(self.me, self.rid, phase_tag, format!("{:?}", self.phase)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_sim::{ClientId, Sim, SimConfig};

    fn cluster(n: u32, f: u32, gc: Option<u32>, clients: u32) -> Sim<Cas> {
        let mut cfg = CasConfig::native(n, f, ValueSpec::from_bits(64.0));
        if let Some(d) = gc {
            cfg = cfg.with_gc(d);
        }
        Sim::new(
            SimConfig::without_gossip(),
            (0..n)
                .map(|i| CasServer::new(cfg, ServerId(i), 0))
                .collect(),
            (0..clients).map(|c| CasClient::new(cfg, c)).collect(),
        )
    }

    #[test]
    fn quorum_arithmetic() {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_bits(64.0));
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.quorum(), 4);
        // Two quorums of 4 out of 5 intersect in >= 3 = k servers.
        let cfg21 = CasConfig::native(21, 10, ValueSpec::from_bits(64.0));
        assert_eq!(cfg21.k, 1);
        assert_eq!(cfg21.quorum(), 11);
        let wide = CasConfig::native(9, 2, ValueSpec::from_bits(64.0));
        assert_eq!(wide.k, 5);
        assert_eq!(wide.quorum(), 7);
    }

    #[test]
    #[should_panic(expected = "2f < N")]
    fn rejects_majority_failures() {
        let _ = CasConfig::native(4, 2, ValueSpec::from_bits(64.0));
    }

    #[test]
    fn write_then_read() {
        let mut sim = cluster(5, 1, None, 2);
        sim.invoke(ClientId(0), RegInv::Write(123456789)).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::WriteAck
        );
        sim.invoke(ClientId(1), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(1)).unwrap(),
            RegResp::ReadValue(123456789)
        );
    }

    #[test]
    fn read_of_initial_value() {
        let mut sim = cluster(5, 1, None, 1);
        sim.invoke(ClientId(0), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::ReadValue(0)
        );
    }

    #[test]
    fn tolerates_f_failures() {
        let mut sim = cluster(7, 2, None, 2);
        sim.fail_last_servers(2);
        sim.invoke(ClientId(0), RegInv::Write(77)).unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        sim.invoke(ClientId(1), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(1)).unwrap(),
            RegResp::ReadValue(77)
        );
    }

    #[test]
    fn storage_grows_with_ungarbage_collected_versions() {
        let mut sim = cluster(5, 1, None, 1);
        for v in 1..=4 {
            sim.invoke(ClientId(0), RegInv::Write(v)).unwrap();
            sim.run_until_op_completes(ClientId(0)).unwrap();
            sim.run_to_quiescence().unwrap();
        }
        // Initial + 4 writes, never collected: 5 versions per server, each
        // 64/3 bits.
        let per_server = sim.server(ServerId(0)).versions_held();
        assert_eq!(per_server, 5);
        let bits = sim.storage().peak_total_bits;
        assert!((bits - 5.0 * 5.0 * 64.0 / 3.0).abs() < 1e-6, "bits={bits}");
    }

    #[test]
    fn gc_caps_retained_versions() {
        let mut sim = cluster(5, 1, Some(1), 1);
        for v in 1..=6 {
            sim.invoke(ClientId(0), RegInv::Write(v)).unwrap();
            sim.run_until_op_completes(ClientId(0)).unwrap();
            sim.run_to_quiescence().unwrap();
        }
        // δ = 1: at most 2 finalized versions retained.
        assert!(sim.server(ServerId(0)).versions_held() <= 2);
        // And the latest value is still readable.
        sim.invoke(ClientId(0), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::ReadValue(6)
        );
    }

    #[test]
    fn codec_handle_is_memoized_per_geometry() {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_bits(64.0));
        assert!(Arc::ptr_eq(&cfg.code(), &cfg.code()));
        // A different geometry gets its own codec.
        let other = CasConfig::native(7, 2, ValueSpec::from_bits(64.0));
        assert!(!Arc::ptr_eq(&cfg.code(), &other.code()));
    }

    #[test]
    fn corrupted_share_fails_read_without_panicking() {
        use shmem_erasure::CodeError;
        let mut sim = cluster(5, 1, None, 1);
        // Truncate one stored symbol of the initial value: the reader's
        // picked set becomes ragged and must fail to decode.
        sim.server_mut(ServerId(0))
            .shares
            .get_mut(&Tag::ZERO)
            .expect("initial share present")
            .pop();
        sim.invoke(ClientId(0), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::ReadFailed(CodeError::LengthMismatch)
        );
    }

    #[test]
    fn corrupted_share_surfaces_as_operation_failed_in_harness() {
        use crate::harness::CasCluster;
        use shmem_sim::RunError;
        let mut c = CasCluster::new(5, 1, 1, ValueSpec::from_bits(64.0));
        c.sim
            .server_mut(ServerId(0))
            .shares
            .get_mut(&Tag::ZERO)
            .expect("initial share present")
            .pop();
        match c.read(0) {
            Err(RunError::OperationFailed { client, detail }) => {
                assert_eq!(client, ClientId(0));
                assert!(detail.contains("length"), "unexpected detail: {detail}");
            }
            other => panic!("expected OperationFailed, got {other:?}"),
        }
    }

    #[test]
    fn coded_storage_cheaper_than_replication_at_low_concurrency() {
        // One version in flight: CAS total = N/k * |v| < N * |v| (ABD).
        let mut sim = cluster(9, 2, Some(0), 1);
        sim.invoke(ClientId(0), RegInv::Write(5)).unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        sim.run_to_quiescence().unwrap();
        let total = sim.storage().peak_total_bits;
        // k = 5: peak is at most 2 versions * 9 servers * 64/5 bits.
        assert!(total <= 2.0 * 9.0 * 64.0 / 5.0 + 1e-9, "total={total}");
        assert!(total < 9.0 * 64.0, "coded beats replication: {total}");
    }

    fn sharded(cfg: &ShardedCasConfig, clients: u32) -> Sim<ShardedCas> {
        Sim::new(
            SimConfig::without_gossip(),
            (0..cfg.map.n())
                .map(|i| ShardedCasServer::new(cfg.clone(), ServerId(i), 0))
                .collect(),
            (0..clients)
                .map(|c| ShardedCasClient::new(cfg.clone(), c))
                .collect(),
        )
    }

    #[test]
    fn sharded_config_arithmetic() {
        let map = ShardMap::new(6, 2, 3);
        let spec = ValueSpec::from_bits(64.0);
        let native = ShardedCasConfig::native(map, 1, spec);
        assert_eq!(native.k, 1);
        assert_eq!(native.quorum(), 2);
        let coded = ShardedCasConfig::coded(map, 1, spec);
        assert_eq!(coded.k, 2);
        assert_eq!(coded.quorum(), 3);
        assert!((coded.symbol_bits() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn sharded_batched_write_then_read() {
        let map = ShardMap::new(6, 2, 3);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
        let mut sim = sharded(&cfg, 2);
        let keys: Vec<Key> = (0..10).collect();
        let writes: Vec<(Key, Value)> = keys.iter().map(|&k| (k, 500 + k as Value)).collect();
        sim.invoke(ClientId(0), MultiInv::writes(&writes)).unwrap();
        let resp = sim.run_until_op_completes(ClientId(0)).unwrap();
        assert!(resp.ops.iter().all(|(_, r)| *r == RegResp::WriteAck));
        sim.invoke(ClientId(1), MultiInv::reads(&keys)).unwrap();
        let resp = sim.run_until_op_completes(ClientId(1)).unwrap();
        for &k in &keys {
            assert_eq!(resp.get(k), Some(&RegResp::ReadValue(500 + k as Value)));
        }
    }

    #[test]
    fn sharded_unwritten_keys_read_initial() {
        let map = ShardMap::full(5);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
        let mut sim = sharded(&cfg, 1);
        sim.invoke(ClientId(0), MultiInv::reads(&[3, 77, 12345]))
            .unwrap();
        let resp = sim.run_until_op_completes(ClientId(0)).unwrap();
        for &k in &[3u64, 77, 12345] {
            assert_eq!(resp.get(k), Some(&RegResp::ReadValue(0)), "key {k}");
        }
    }

    #[test]
    fn sharded_rounds_are_coalesced() {
        // A write batch of B keys on one shard costs exactly the
        // single-key message count: 6 messages per contacted server
        // (query/pre-write/finalize, each with a reply).
        for batch in [1u64, 4, 16] {
            let map = ShardMap::full(5);
            let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
            let mut sim = sharded(&cfg, 1);
            let writes: Vec<(Key, Value)> = (0..batch).map(|k| (k, k + 9)).collect();
            sim.invoke(ClientId(0), MultiInv::writes(&writes)).unwrap();
            sim.run_until_op_completes(ClientId(0)).unwrap();
            sim.run_to_quiescence().unwrap();
            let t = sim.traffic();
            assert_eq!(t.client_to_server, 15, "batch {batch}");
            assert_eq!(t.server_to_client, 15, "batch {batch}");
        }
    }

    #[test]
    fn sharded_gc_caps_versions_per_key() {
        let map = ShardMap::full(3);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0)).with_gc(0);
        let mut sim = sharded(&cfg, 1);
        for round in 0..5 {
            sim.invoke(ClientId(0), MultiInv::writes(&[(1, round), (2, round)]))
                .unwrap();
            sim.run_until_op_completes(ClientId(0)).unwrap();
        }
        sim.run_to_quiescence().unwrap();
        for s in 0..3 {
            let server = sim.server(ServerId(s));
            // δ = 0: only the newest finalized version survives per key.
            assert!(server.versions_held(1) <= 1, "server {s}");
            assert!(server.versions_held(2) <= 1, "server {s}");
            assert_eq!(server.max_finalized(1).seq, 5);
        }
    }

    #[test]
    fn sharded_coded_profile_storage_matches_mds_point() {
        // k = replicas − f with GC depth 0: steady-state total storage per
        // key is replicas · |v|/k = |v| · N/(N−f) — the ErasureCoded bound.
        let map = ShardMap::full(5);
        let cfg = ShardedCasConfig::coded(map, 1, ValueSpec::from_bits(64.0)).with_gc(0);
        assert_eq!(cfg.k, 4);
        let mut sim = sharded(&cfg, 1);
        sim.invoke(ClientId(0), MultiInv::writes(&[(1, 11), (2, 22)]))
            .unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        sim.run_to_quiescence().unwrap();
        let total: f64 = (0..5)
            .map(|s| Node::<ShardedCas>::state_bits(sim.server(ServerId(s))))
            .sum();
        let per_key = 64.0 * 5.0 / 4.0; // ν·N/(N−f) at ν = 1
        assert!((total - 2.0 * per_key).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn sharded_wire_bytes_count_payload() {
        let m = ShardedCasMsg::QueryTag {
            rid: 1,
            keys: vec![1, 2],
        };
        assert_eq!(m.wire_bytes(), 8 + 2 * 8);
        let m = ShardedCasMsg::PreWrite {
            rid: 1,
            items: vec![
                (1, Tag::new(1, 0), vec![0; 2]),
                (2, Tag::new(1, 0), vec![0; 2]),
            ],
        };
        assert_eq!(m.wire_bytes(), 8 + 2 * (8 + 12 + 2));
        let m = ShardedCasMsg::ReadResp {
            rid: 1,
            items: vec![(1, Some(vec![0; 2])), (2, None)],
        };
        assert_eq!(m.wire_bytes(), 8 + (8 + 1 + 2) + (8 + 1));
        assert_eq!(ShardedCasMsg::FinAck { rid: 1 }.wire_bytes(), 8);
    }

    #[test]
    fn sharded_tolerates_f_failures_per_shard_native() {
        let map = ShardMap::new(6, 2, 3);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
        let mut sim = sharded(&cfg, 2);
        // Crash one server in each shard: {0,1,2} loses 2, {3,4,5} loses 5.
        sim.fail(shmem_sim::NodeId::server(2));
        sim.fail(shmem_sim::NodeId::server(5));
        let keys: Vec<Key> = (0..8).collect();
        let writes: Vec<(Key, Value)> = keys.iter().map(|&k| (k, k as Value + 1)).collect();
        sim.invoke(ClientId(0), MultiInv::writes(&writes)).unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        sim.invoke(ClientId(1), MultiInv::reads(&keys)).unwrap();
        let resp = sim.run_until_op_completes(ClientId(1)).unwrap();
        for &k in &keys {
            assert_eq!(resp.get(k), Some(&RegResp::ReadValue(k as Value + 1)));
        }
    }

    #[test]
    fn sharded_projected_histories_atomic() {
        use shmem_util::DetRng;
        let map = ShardMap::new(6, 2, 3);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
        for seed in 0..4 {
            let mut sim = sharded(&cfg, 3);
            let mut rng = DetRng::seed_from_u64(seed);
            for round in 0..3u64 {
                sim.invoke(
                    ClientId(0),
                    MultiInv::writes(&[(1, round * 10), (2, round * 10 + 1)]),
                )
                .unwrap();
                sim.invoke(ClientId(1), MultiInv::writes(&[(1, round * 10 + 5)]))
                    .unwrap();
                sim.invoke(ClientId(2), MultiInv::reads(&[1, 2])).unwrap();
                while (0..3).any(|c| sim.has_open_op(ClientId(c))) {
                    sim.step_with(|opts| rng.gen_range(0..opts.len()))
                        .expect("progress");
                }
            }
            for (key, h) in crate::multikey::project_histories(0, sim.ops()) {
                assert!(
                    shmem_spec::check_atomic(&h).is_ok(),
                    "seed {seed}, key {key}: non-atomic projection"
                );
            }
        }
    }

    /// Regression: a server addressed for a key outside its shards (possible
    /// over a real network, where clients are not trusted to route
    /// correctly) must ignore the key, not panic.
    #[test]
    fn sharded_server_ignores_out_of_shard_keys() {
        let map = ShardMap::new(6, 2, 3);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
        let mut server = ShardedCasServer::new(cfg.clone(), ServerId(0), 0);
        let mine = (0..100).find(|&k| map.covers(0, k)).unwrap();
        let foreign = (0..100).find(|&k| !map.covers(0, k)).unwrap();
        let from = NodeId::client(9);
        let t = Tag::new(1, 9);

        let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::server(0), 0);
        server.on_message(
            from,
            ShardedCasMsg::PreWrite {
                rid: 1,
                items: vec![
                    (foreign, t, vec![0xAA]),
                    (mine, t, vec![0x11; cfg.symbol_bits() as usize / 8]),
                ],
            },
            &mut ctx,
        );
        let (out, _) = ctx.into_effects();
        assert!(matches!(out[0].1, ShardedCasMsg::PreAck { rid: 1 }));
        assert_eq!(server.versions_held(mine), 2); // initial + prewritten
        assert_eq!(server.versions_held(foreign), 0); // skipped, no slot

        let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::server(0), 1);
        server.on_message(
            from,
            ShardedCasMsg::Finalize {
                rid: 2,
                items: vec![(foreign, t), (mine, t)],
            },
            &mut ctx,
        );
        let (out, _) = ctx.into_effects();
        assert!(matches!(out[0].1, ShardedCasMsg::FinAck { rid: 2 }));
        assert_eq!(server.max_finalized(mine), t);
        assert_eq!(server.max_finalized(foreign), Tag::ZERO);

        let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::server(0), 2);
        server.on_message(
            from,
            ShardedCasMsg::ReadGet {
                rid: 3,
                items: vec![(foreign, t), (mine, t)],
            },
            &mut ctx,
        );
        let (out, _) = ctx.into_effects();
        let ShardedCasMsg::ReadResp { rid: 3, ref items } = out[0].1 else {
            panic!("expected ReadResp, got {:?}", out[0].1);
        };
        // The out-of-shard key is omitted, not answered with junk.
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, mine);
    }

    /// Regression: a `ReadResp` echo from a server that does not cover the
    /// key must count toward neither the read quorum nor the share pool —
    /// previously it counted toward the quorum and then panicked when its
    /// (nonexistent) codeword position was looked up.
    #[test]
    fn sharded_reader_ignores_noncovering_read_responses() {
        let map = ShardMap::new(6, 2, 3);
        let cfg = ShardedCasConfig::native(map, 1, ValueSpec::from_bits(64.0));
        let q = cfg.quorum(); // 2 of 3 replicas
        assert_eq!(q, 2);
        let key: Key = (0..100).find(|&k| map.covers(0, k)).unwrap();
        let covering: Vec<u32> = map.servers_of_key(key).collect();
        let outsider = (0..map.n()).find(|&s| !covering.contains(&s)).unwrap();

        let mut client = ShardedCasClient::new(cfg.clone(), 0);
        let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::client(0), 0);
        client.on_invoke(MultiInv::reads(&[key]), &mut ctx);
        let (out, _) = ctx.into_effects();
        assert_eq!(out.len(), covering.len());

        // Advance past the tag query: a quorum reports Tag::ZERO.
        for &s in covering.iter().take(q as usize) {
            let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::client(0), 1);
            client.on_message(
                NodeId::server(s),
                ShardedCasMsg::QueryTagResp {
                    rid: 1,
                    items: vec![(key, Tag::ZERO)],
                },
                &mut ctx,
            );
            let (out, resp) = ctx.into_effects();
            assert!(resp.is_empty());
            let _ = out;
        }

        // A non-covering server echoes a share it cannot legally hold.
        let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::client(0), 2);
        client.on_message(
            NodeId::server(outsider),
            ShardedCasMsg::ReadResp {
                rid: 2,
                items: vec![(key, Some(vec![0xEE, 0xEE]))],
            },
            &mut ctx,
        );
        let (out, resp) = ctx.into_effects();
        assert!(
            out.is_empty() && resp.is_empty(),
            "echo must not complete a quorum"
        );

        // Genuine covering replies with the initial-value shares complete
        // the read and decode to the initial value — untainted.
        let encoded = cfg.code().encode_bytes(&ValueSpec::to_bytes(0));
        let mut done = Vec::new();
        for &s in covering.iter().take(q as usize) {
            let pos = map.position_for_key(s, key).unwrap() as usize;
            let mut ctx: Ctx<ShardedCas> = Ctx::new(NodeId::client(0), 3);
            client.on_message(
                NodeId::server(s),
                ShardedCasMsg::ReadResp {
                    rid: 2,
                    items: vec![(key, Some(encoded[pos].clone()))],
                },
                &mut ctx,
            );
            let (_, resp) = ctx.into_effects();
            done.extend(resp);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].get(key), Some(&RegResp::ReadValue(0)));
    }
}
