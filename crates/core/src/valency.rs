//! Valency probes — Definitions 4.3 and 5.3, executable.
//!
//! A point `P` of `α^{(v1,v2)}` is *k-valent* if some extension in which
//! the writer's messages are delayed indefinitely has a read returning
//! `v_k`. A probe builds one such extension: fork the world at `P`, freeze
//! the writer (for the Theorem 5.1 variant, first let the server-to-server
//! channels deliver all gossip), invoke a read, and run the remaining
//! components fairly until the read returns.
//!
//! The definition is existential over extensions, so a single probe
//! under-approximates valency; [`observed_values`] samples many schedules
//! (fair + seeded random) and returns every value some extension produced.

use crate::probe::{ProbeEngine, Schedule};
use shmem_algorithms::reg::{RegInv, RegResp};
use shmem_algorithms::value::Value;
use shmem_sim::{hash_of, ClientId, NodeId, Point, Protocol, Sim};
use shmem_util::DetRng;
use std::collections::BTreeSet;

/// What a probe extension observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read terminated with this value.
    Returns(Value),
    /// The extension quiesced or timed out with the read still pending —
    /// a liveness violation of the probed algorithm (the proofs' Lemma 4.4
    /// argument requires reads to terminate once the writer is frozen).
    Stuck,
}

impl ReadOutcome {
    /// The returned value, if the read terminated.
    pub fn value(self) -> Option<Value> {
        match self {
            ReadOutcome::Returns(v) => Some(v),
            ReadOutcome::Stuck => None,
        }
    }
}

/// Probes the point with the *fair* extension schedule.
///
/// Forks `point`, freezes `writer` ("all messages from and to the writer
/// are delayed indefinitely"), optionally flushes server-to-server channels
/// first (`flush_gossip`, the Definition 5.3 prelude), then invokes a read
/// at `reader` and steps fairly until it returns.
///
/// ```
/// use shmem_algorithms::abd::{Abd, AbdClient, AbdServer};
/// use shmem_algorithms::value::ValueSpec;
/// use shmem_core::execution::AlphaExecution;
/// use shmem_core::valency::{probe_read, ReadOutcome};
/// use shmem_sim::{ClientId, Sim, SimConfig};
///
/// let spec = ValueSpec::from_cardinality(8);
/// let sim: Sim<Abd> = Sim::new(
///     SimConfig::without_gossip(),
///     (0..5).map(|_| AbdServer::new(0, spec)).collect(),
///     (0..2).map(|c| AbdClient::new(5, c)).collect(),
/// );
/// let alpha = AlphaExecution::build(sim, ClientId(0), 2, 1, 2)?;
/// // P0 is 1-valent: before write(v2) begins, a frozen-writer read
/// // returns v1 (Lemma 4.6(i)).
/// assert_eq!(
///     probe_read(alpha.point(0), ClientId(0), ClientId(1), false),
///     ReadOutcome::Returns(1),
/// );
/// # Ok::<(), shmem_sim::RunError>(())
/// ```
pub fn probe_read<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
) -> ReadOutcome {
    probe_with(point, writer, reader, flush_gossip, |sim| {
        sim.step_fair().is_some()
    })
}

/// Probes the point with a seeded random extension schedule.
pub fn probe_read_seeded<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
    seed: u64,
) -> ReadOutcome {
    let mut rng = DetRng::seed_from_u64(seed);
    probe_with(point, writer, reader, flush_gossip, move |sim| {
        sim.step_with(|opts| rng.gen_range(0..opts.len())).is_some()
    })
}

/// Probes the point under an explicit [`Schedule`] — the primitive the
/// [`ProbeEngine`] memoizes.
pub fn probe_schedule<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
    schedule: Schedule,
) -> ReadOutcome {
    match schedule {
        Schedule::Fair => probe_read(point, writer, reader, flush_gossip),
        Schedule::Seeded(seed) => probe_read_seeded(point, writer, reader, flush_gossip, seed),
    }
}

/// The schedule of the `i`-th valency probe: the fair one first, then the
/// seeded ones in seed order (matching [`observed_values`]'s legacy
/// sampling loop exactly, so engine and direct paths observe identical
/// sets).
fn nth_schedule(i: usize) -> Schedule {
    if i == 0 {
        Schedule::Fair
    } else {
        Schedule::Seeded(i as u64 - 1)
    }
}

/// Digest of everything a valency-probe verdict depends on besides the
/// point itself — the cache key's second half.
fn probe_config_digest(
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
    schedule: Schedule,
) -> u64 {
    hash_of(&("valency", writer, reader, flush_gossip, schedule))
}

/// [`observed_values`] through a [`ProbeEngine`]: the `seeds + 1` schedules
/// fan out over the engine's workers and every verdict is memoized under
/// `(point digest, probe config)`. Bit-identical to [`observed_values`]
/// for any worker count — the result is a set union of per-schedule
/// verdicts, each of which is deterministic.
pub fn observed_values_at<P>(
    engine: &ProbeEngine,
    point: &Point<P>,
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
    seeds: u64,
) -> BTreeSet<Value>
where
    P: Protocol<Inv = RegInv, Resp = RegResp>,
    Sim<P>: Send + Sync,
{
    let point_digest = point.digest();
    engine
        .map(seeds as usize + 1, |i| {
            let schedule = nth_schedule(i);
            let config = probe_config_digest(writer, reader, flush_gossip, schedule);
            engine.probe(point_digest, config, || {
                probe_schedule(point.sim(), writer, reader, flush_gossip, schedule).value()
            })
        })
        .into_iter()
        .flatten()
        .collect()
}

fn probe_with<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
    mut step: impl FnMut(&mut Sim<P>) -> bool,
) -> ReadOutcome {
    let mut sim = point.fork();
    if flush_gossip {
        // Definition 5.3: the channels between servers act first,
        // delivering all their messages.
        if sim.flush_server_channels().is_err() {
            return ReadOutcome::Stuck;
        }
    }
    sim.freeze(NodeId::Client(writer));
    if sim.invoke(reader, RegInv::Read).is_err() {
        return ReadOutcome::Stuck;
    }
    let limit = sim.config().step_limit;
    let mut steps = 0u64;
    while sim.has_open_op(reader) {
        if !step(&mut sim) {
            return ReadOutcome::Stuck;
        }
        steps += 1;
        if steps > limit {
            return ReadOutcome::Stuck;
        }
    }
    let resp = sim
        .ops()
        .iter()
        .rev()
        .find(|o| o.client == reader)
        .and_then(|o| o.response)
        .and_then(RegResp::read_value);
    match resp {
        Some(v) => ReadOutcome::Returns(v),
        None => ReadOutcome::Stuck,
    }
}

/// Samples many extension schedules (the fair one plus `seeds` random ones)
/// and returns the set of values some extension's read returned — an
/// under-approximation of the set of `k` for which the point is `k`-valent.
///
/// This is the plain reference path: every schedule runs, inline, every
/// time. The proof machinery goes through [`observed_values_at`] instead,
/// which computes the *same set* (asserted by the `engine_parity` tests)
/// with memoization and fan-out.
pub fn observed_values<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    point: &Sim<P>,
    writer: ClientId,
    reader: ClientId,
    flush_gossip: bool,
    seeds: u64,
) -> BTreeSet<Value> {
    (0..seeds as usize + 1)
        .filter_map(|i| {
            probe_schedule(point, writer, reader, flush_gossip, nth_schedule(i)).value()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::AlphaExecution;
    use shmem_algorithms::abd::{Abd, AbdClient, AbdServer};
    use shmem_algorithms::value::ValueSpec;
    use shmem_sim::SimConfig;

    fn abd_world() -> Sim<Abd> {
        let spec = ValueSpec::from_cardinality(8);
        Sim::new(
            SimConfig::without_gossip(),
            (0..5).map(|_| AbdServer::new(0, spec)).collect(),
            (0..2).map(|c| AbdClient::new(5, c)).collect(),
        )
    }

    fn alpha() -> AlphaExecution<Abd> {
        AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap()
    }

    #[test]
    fn p0_is_one_valent() {
        // Lemma 4.6(i): at P0 only write(v1) exists, so the read returns v1.
        let a = alpha();
        assert_eq!(
            probe_read(a.point(0), ClientId(0), ClientId(1), false),
            ReadOutcome::Returns(1)
        );
    }

    #[test]
    fn pm_is_two_valent_not_one_valent() {
        // Lemma 4.6(ii): after write(v2) terminates, regularity forces v2.
        let a = alpha();
        let last = a.len() - 1;
        assert_eq!(
            probe_read(a.point(last), ClientId(0), ClientId(1), false),
            ReadOutcome::Returns(2)
        );
        // Sampling extensions never yields v1 at PM.
        let vals = observed_values(a.point(last), ClientId(0), ClientId(1), false, 16);
        assert!(!vals.contains(&1), "PM must not be 1-valent: {vals:?}");
    }

    #[test]
    fn every_point_returns_v1_or_v2() {
        // Lemma 4.5: reads invoked after π₁'s termination return v1 or v2.
        let a = alpha();
        for i in 0..a.len() {
            let vals = observed_values(a.point(i), ClientId(0), ClientId(1), false, 4);
            assert!(!vals.is_empty(), "point {i}: read must terminate");
            assert!(
                vals.iter().all(|v| *v == 1 || *v == 2),
                "point {i}: observed {vals:?}"
            );
        }
    }

    #[test]
    fn probe_does_not_mutate_the_point() {
        let a = alpha();
        let before = a.point(3).digest();
        let _ = probe_read(a.point(3), ClientId(0), ClientId(1), false);
        assert_eq!(a.point(3).digest(), before);
    }

    #[test]
    fn outcome_projection() {
        assert_eq!(ReadOutcome::Returns(5).value(), Some(5));
        assert_eq!(ReadOutcome::Stuck.value(), None);
    }

    #[test]
    fn engine_path_matches_reference_path() {
        let a = alpha();
        let engine = ProbeEngine::with_workers(4);
        for i in 0..a.len() {
            let reference = observed_values(a.point(i), ClientId(0), ClientId(1), false, 6);
            let engined =
                observed_values_at(&engine, a.snapshot(i), ClientId(0), ClientId(1), false, 6);
            assert_eq!(reference, engined, "point {i}");
        }
        // Every probe of a repeat pass is answered from the cache.
        let before = engine.stats();
        assert_eq!(before.hits, 0);
        for i in 0..a.len() {
            let _ = observed_values_at(&engine, a.snapshot(i), ClientId(0), ClientId(1), false, 6);
        }
        let after = engine.stats();
        assert_eq!(after.probes, 2 * before.probes);
        assert_eq!(after.hits, before.probes);
    }

    #[test]
    fn probe_reports_stuck_for_dead_cluster() {
        // Fail everything: the read cannot complete.
        let mut sim = abd_world();
        sim.fail_last_servers(5);
        assert_eq!(
            probe_read(&sim, ClientId(0), ClientId(1), false),
            ReadOutcome::Stuck
        );
    }
}
