//! Cluster orchestration: spin up server loops and client workers over
//! a chosen backend, run a load, collect histories and storage probes.
//!
//! [`NetCluster`] is the generic machinery (start/kill/restart servers,
//! spawn a load, sever connections); [`NetScenario`] is the convenient
//! front door the tests and the `tab-net` bench use — pick an algorithm,
//! a backend, and a [`LoadConfig`], get a [`NetOutcome`] whose histories
//! feed the same `shmem-spec` checkers the simulator uses.

use crate::client::{run_worker, LoadConfig, WorkerReport};
use crate::corrupt::{CorruptingTransport, NetCorruption};
use crate::error::NetError;
use crate::serve::{serve_shared, serve_until, ServeStats};
use crate::tcp::{addr_table, AddrTable, PoolFaults, TcpClientTransport, TcpServerTransport};
use crate::transport::InProcHub;
use crate::wire::WireMsg;
use shmem_algorithms::abd::{ShardedAbd, ShardedAbdClient, ShardedAbdServer};
use shmem_algorithms::cas::{ShardedCas, ShardedCasClient, ShardedCasConfig, ShardedCasServer};
use shmem_algorithms::hashed::{ShardedHashed, ShardedHashedClient, ShardedHashedServer};
use shmem_algorithms::multikey::{project_histories, Key, MultiInv, MultiResp, ShardMap};
use shmem_algorithms::value::{Value, ValueSpec};
use shmem_sim::{ClientId, Histogram, Node, NodeId, OpRecord, Protocol, ServerId};
use shmem_spec::{check_atomic, History, Violation};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Which emulation algorithm a net run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetAlgorithm {
    /// Sharded multi-writer ABD (replicated).
    Abd,
    /// Sharded CAS with the native (`k = r − 2f`) code.
    Cas,
    /// Sharded CAS with the storage-optimal (`k = r − f`) code and GC —
    /// the configuration whose steady-state storage meets the paper's
    /// `N/(N−f)` bound exactly.
    CodedCas,
    /// Sharded hashed-CAS (announce-then-write interlock).
    Hashed,
}

impl NetAlgorithm {
    /// Short table/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            NetAlgorithm::Abd => "abd",
            NetAlgorithm::Cas => "cas",
            NetAlgorithm::CodedCas => "coded-cas",
            NetAlgorithm::Hashed => "hashed",
        }
    }

    /// Parses a table/CLI name.
    pub fn parse(s: &str) -> Option<NetAlgorithm> {
        match s {
            "abd" => Some(NetAlgorithm::Abd),
            "cas" => Some(NetAlgorithm::Cas),
            "coded-cas" => Some(NetAlgorithm::CodedCas),
            "hashed" => Some(NetAlgorithm::Hashed),
            _ => None,
        }
    }
}

/// Which transport backend carries the messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetBackend {
    /// In-process channel routing (no syscalls) — the differential
    /// baseline.
    InProc,
    /// Real TCP over loopback with framing and a reconnecting pool.
    Tcp,
}

impl NetBackend {
    /// Short table/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            NetBackend::InProc => "inproc",
            NetBackend::Tcp => "tcp",
        }
    }
}

enum BackendState {
    InProc(InProcHub),
    Tcp { table: AddrTable },
}

struct ServerSlot<P: Protocol> {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<(Vec<P::Server>, ServeStats)>>,
    /// The worker pool of a killed server, retained for restart (the
    /// durable-storage crash model: state survives, volatile connections
    /// do not). Legacy single-threaded servers are a pool of one; a
    /// concurrent server's workers share one lock-free store.
    parked: Option<Vec<P::Server>>,
}

/// A running cluster of server event loops over one backend.
pub struct NetCluster<P: Protocol> {
    backend: BackendState,
    servers: Vec<ServerSlot<P>>,
    stats: Vec<ServeStats>,
    epoch: Instant,
    /// Byzantine corruption policy: listed servers send through a
    /// [`CorruptingTransport`] armed with the policy's salt.
    corrupt: Option<NetCorruption>,
}

/// A load in flight: worker joins plus fault handles.
pub struct LoadHandle {
    joins: Vec<JoinHandle<WorkerReport>>,
    faults: Vec<PoolFaults>,
    started: Instant,
}

/// Aggregated outcome of one load.
pub struct NetRunReport {
    /// All workers' operation records, usable with `project_histories`.
    pub records: Vec<OpRecord<MultiInv, MultiResp>>,
    /// Merged operation latency histogram (nanoseconds).
    pub latency_ns: Histogram,
    /// Protocol messages sent by clients (incl. retransmissions).
    pub msgs_sent: u64,
    /// Client wire bytes, via `Protocol::msg_wire_bytes`.
    pub wire_bytes: u64,
    /// Retransmission rounds fired.
    pub retransmits: u64,
    /// Completed operations.
    pub completed: u64,
    /// Logical clients retired on op timeout.
    pub retired: u64,
    /// Wall-clock duration of the load.
    pub wall: Duration,
}

impl NetRunReport {
    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Per-key single-register histories, exactly as the simulator
    /// harness builds them.
    pub fn histories(&self, initial: Value) -> BTreeMap<Key, History<Value>> {
        project_histories(initial, &self.records)
    }

    /// Runs the atomicity checker over every per-key projection.
    ///
    /// # Errors
    ///
    /// The first `(key, violation)` found, if any.
    pub fn check_atomic_all(&self, initial: Value) -> Result<usize, (Key, Violation)> {
        let mut checked = 0;
        for (key, history) in self.histories(initial) {
            if let Err(v) = check_atomic(&history) {
                return Err((key, v));
            }
            checked += 1;
        }
        Ok(checked)
    }

    /// Latency quantile upper bound in microseconds.
    pub fn latency_us(&self, q: f64) -> f64 {
        self.latency_ns
            .quantile_bounds(q)
            .map_or(0.0, |(_, hi)| hi as f64 / 1_000.0)
    }
}

impl<P> NetCluster<P>
where
    P: Protocol<Inv = MultiInv, Resp = MultiResp>,
    P::Msg: WireMsg,
    P::Server: Send + 'static,
    P::Client: Send + 'static,
{
    /// Starts one event loop per automaton over `backend`.
    pub fn start(backend: NetBackend, automata: Vec<P::Server>) -> NetCluster<P> {
        NetCluster::start_corrupt(backend, automata, None)
    }

    /// [`NetCluster::start`] with a Byzantine corruption policy.
    pub fn start_corrupt(
        backend: NetBackend,
        automata: Vec<P::Server>,
        corrupt: Option<NetCorruption>,
    ) -> NetCluster<P> {
        NetCluster::start_pooled_corrupt(
            backend,
            automata.into_iter().map(|a| vec![a]).collect(),
            corrupt,
        )
    }

    /// Starts one server per *pool* of worker automata over `backend`.
    ///
    /// A pool of one runs the classic single-threaded event loop
    /// ([`serve_until`]); a larger pool runs [`serve_shared`], one worker
    /// thread per automaton. Pooled workers only make sense when their
    /// automata share state through a concurrent backend (`shmem-store`)
    /// — the harness cannot check that, so it is the caller's contract.
    pub fn start_pooled(backend: NetBackend, pools: Vec<Vec<P::Server>>) -> NetCluster<P> {
        NetCluster::start_pooled_corrupt(backend, pools, None)
    }

    /// [`NetCluster::start_pooled`] with a Byzantine corruption policy:
    /// every server listed in `corrupt` sends its frames through a
    /// [`CorruptingTransport`], tampering value-bearing payloads
    /// deterministically in the policy's salt. Honest servers (and every
    /// server when `corrupt` is `None`) behave byte-identically to an
    /// unwrapped cluster.
    pub fn start_pooled_corrupt(
        backend: NetBackend,
        pools: Vec<Vec<P::Server>>,
        corrupt: Option<NetCorruption>,
    ) -> NetCluster<P> {
        let backend = match backend {
            NetBackend::InProc => BackendState::InProc(InProcHub::new()),
            NetBackend::Tcp => BackendState::Tcp {
                table: addr_table(Vec::new()),
            },
        };
        let mut cluster = NetCluster {
            backend,
            servers: Vec::new(),
            stats: Vec::new(),
            epoch: Instant::now(),
            corrupt,
        };
        for (i, pool) in pools.into_iter().enumerate() {
            cluster.servers.push(ServerSlot {
                stop: Arc::new(AtomicBool::new(false)),
                join: None,
                parked: Some(pool),
            });
            cluster.stats.push(ServeStats::default());
            cluster.launch(i);
        }
        cluster
    }

    /// (Re)launches server `i` from its parked worker pool.
    fn launch(&mut self, i: usize) {
        let pool = self.servers[i]
            .parked
            .take()
            .expect("server automaton not parked");
        let stop = Arc::new(AtomicBool::new(false));
        self.servers[i].stop = Arc::clone(&stop);
        let me = ServerId(i as u32);
        // Byzantine servers keep lying across restarts: the policy wraps
        // every incarnation of their transport.
        let salt = self
            .corrupt
            .as_ref()
            .filter(|c| c.applies_to(me.0))
            .map(|c| c.salt);
        let join = match &self.backend {
            BackendState::InProc(hub) => {
                let ep =
                    CorruptingTransport::<_, P>::new(hub.endpoint(&[NodeId::Server(me)]), salt);
                thread::spawn(move || run_pool::<P, _>(pool, me, ep, stop))
            }
            BackendState::Tcp { table } => {
                let transport = TcpServerTransport::bind("127.0.0.1:0".parse().unwrap())
                    .expect("bind loopback");
                let addr = transport.local_addr();
                let mut t = table.lock().expect("addr table poisoned");
                if t.len() <= i {
                    t.resize(i + 1, addr);
                }
                // A restart lands on a fresh ephemeral port; publishing
                // it here is what makes reconnecting pools find the new
                // incarnation.
                t[i] = addr;
                drop(t);
                let transport = CorruptingTransport::<_, P>::new(transport, salt);
                thread::spawn(move || run_pool::<P, _>(pool, me, transport, stop))
            }
        };
        self.servers[i].join = Some(join);
    }

    /// The TCP address table (TCP backend only).
    pub fn addrs(&self) -> Option<Vec<SocketAddr>> {
        match &self.backend {
            BackendState::Tcp { table } => Some(table.lock().expect("addr table poisoned").clone()),
            BackendState::InProc(_) => None,
        }
    }

    /// Kills server `i`: stops its loop and drops its transport (TCP
    /// connections reset; in-proc route vanishes). Its automaton state is
    /// retained for [`NetCluster::restart_server`].
    pub fn kill_server(&mut self, i: usize) {
        if let BackendState::InProc(hub) = &self.backend {
            hub.drop_route(NodeId::Server(ServerId(i as u32)));
        }
        self.servers[i].stop.store(true, Ordering::Release);
        if let Some(join) = self.servers[i].join.take() {
            let (pool, stats) = join.join().expect("server thread panicked");
            self.stats[i] = self.stats[i].merge(stats);
            self.servers[i].parked = Some(pool);
        }
    }

    /// Restarts a killed server with its retained state, on a fresh
    /// ephemeral port under TCP.
    pub fn restart_server(&mut self, i: usize) {
        assert!(
            self.servers[i].parked.is_some(),
            "restart_server on a live server"
        );
        self.launch(i);
    }

    /// Spawns a closed-loop load of `cfg.clients` logical clients.
    pub fn spawn_load(
        &self,
        cfg: &LoadConfig,
        make_client: impl Fn(ClientId) -> P::Client + Send + Sync + 'static,
    ) -> LoadHandle {
        let make_client = Arc::new(make_client);
        let mut joins = Vec::new();
        let mut faults = Vec::new();
        let epoch = self.epoch;
        for block in cfg.client_blocks() {
            let cfg = cfg.clone();
            let make_client = Arc::clone(&make_client);
            match &self.backend {
                BackendState::InProc(hub) => {
                    let ids: Vec<NodeId> = block.iter().map(|&c| NodeId::Client(c)).collect();
                    let ep = hub.endpoint(&ids);
                    joins.push(thread::spawn(move || {
                        run_worker::<P, _>(ep, block, |id| make_client(id), &cfg, epoch)
                    }));
                }
                BackendState::Tcp { table } => {
                    let pool = TcpClientTransport::new(Arc::clone(table));
                    faults.push(pool.faults());
                    joins.push(thread::spawn(move || {
                        run_worker::<P, _>(pool, block, |id| make_client(id), &cfg, epoch)
                    }));
                }
            }
        }
        LoadHandle {
            joins,
            faults,
            started: Instant::now(),
        }
    }

    /// Stops every server and returns one automaton per server (for
    /// storage probes). For pooled servers this is a *representative*
    /// worker: its backend shares the pool's store, so probing it sees
    /// the server's full state exactly once.
    pub fn shutdown(mut self) -> Vec<P::Server> {
        let n = self.servers.len();
        for i in 0..n {
            if self.servers[i].join.is_some() {
                self.kill_server(i);
            }
        }
        self.servers
            .into_iter()
            .map(|s| {
                s.parked
                    .expect("automaton parked at shutdown")
                    .into_iter()
                    .next()
                    .expect("nonempty server pool")
            })
            .collect()
    }
}

impl LoadHandle {
    /// Severs every pooled client connection (TCP backend; no-op for
    /// in-proc loads, which have no connections to cut).
    pub fn sever_connections(&self) {
        for f in &self.faults {
            f.sever_all();
        }
    }

    /// Total successful pool connects across workers (grows on
    /// reconnection — the fault tests' observable).
    pub fn connects(&self) -> u64 {
        self.faults.iter().map(|f| f.connects()).sum()
    }

    /// Waits for every worker and aggregates.
    pub fn join(self) -> NetRunReport {
        let mut report = NetRunReport {
            records: Vec::new(),
            latency_ns: Histogram::new(),
            msgs_sent: 0,
            wire_bytes: 0,
            retransmits: 0,
            completed: 0,
            retired: 0,
            wall: Duration::ZERO,
        };
        for join in self.joins {
            let w = join.join().expect("worker thread panicked");
            report.records.extend(w.records);
            report.latency_ns.merge(&w.latency_ns);
            report.msgs_sent += w.msgs_sent;
            report.wire_bytes += w.wire_bytes;
            report.retransmits += w.retransmits;
            report.completed += w.completed;
            report.retired += w.retired;
        }
        report.wall = self.started.elapsed();
        report
    }
}

/// One server incarnation: the single-threaded event loop for a pool of
/// one, the shared-store worker pool otherwise.
fn run_pool<P, T>(
    pool: Vec<P::Server>,
    me: ServerId,
    transport: T,
    stop: Arc<AtomicBool>,
) -> (Vec<P::Server>, ServeStats)
where
    P: Protocol,
    P::Msg: WireMsg,
    P::Server: Send,
    T: crate::transport::Transport,
{
    if pool.len() == 1 {
        let automaton = pool.into_iter().next().expect("pool of one");
        let (automaton, stats) = serve_until::<P, _>(automaton, me, transport, stop);
        (vec![automaton], stats)
    } else {
        serve_shared::<P, _>(pool, me, transport, stop)
    }
}

/// A complete, declarative net experiment.
#[derive(Clone, Debug)]
pub struct NetScenario {
    /// The algorithm under test.
    pub algorithm: NetAlgorithm,
    /// The transport backend.
    pub backend: NetBackend,
    /// Servers.
    pub n: u32,
    /// Failure tolerance (per shard).
    pub f: u32,
    /// Shards; `1` means every server covers every key
    /// ([`ShardMap::full`]).
    pub shards: u32,
    /// Replicas per shard (ignored when `shards == 1`).
    pub replicas: u32,
    /// Register initial value.
    pub initial: Value,
    /// Settle time between the last response and the storage probe:
    /// clients complete on quorum acknowledgements, so trailing finalize
    /// rounds are still in flight when the load joins, and steady-state
    /// storage is only meaningful after they land.
    pub drain: Duration,
    /// The load to generate.
    pub load: LoadConfig,
    /// Byzantine corruption policy: listed servers tamper the
    /// value-bearing payloads they send (see [`NetCorruption`]).
    pub corrupt: Option<NetCorruption>,
}

impl NetScenario {
    /// A 5-server, `f = 1`, unsharded scenario — the differential tests'
    /// default geometry.
    pub fn new(algorithm: NetAlgorithm, backend: NetBackend) -> NetScenario {
        NetScenario {
            algorithm,
            backend,
            n: 5,
            f: 1,
            shards: 1,
            replicas: 5,
            initial: 0,
            drain: Duration::from_millis(300),
            load: LoadConfig::default(),
            corrupt: None,
        }
    }

    /// The key placement this scenario uses.
    pub fn map(&self) -> ShardMap {
        if self.shards <= 1 {
            ShardMap::full(self.n)
        } else {
            ShardMap::new(self.n, self.shards, self.replicas)
        }
    }

    fn value_spec(&self) -> ValueSpec {
        ValueSpec::from_bits(64.0)
    }

    fn cas_config(&self) -> ShardedCasConfig {
        let map = self.map();
        match self.algorithm {
            NetAlgorithm::Cas => ShardedCasConfig::native(map, self.f, self.value_spec()),
            NetAlgorithm::CodedCas => {
                ShardedCasConfig::coded(map, self.f, self.value_spec()).with_gc(0)
            }
            NetAlgorithm::Hashed => ShardedCasConfig::native(map, self.f, self.value_spec()),
            NetAlgorithm::Abd => unreachable!("ABD has no CAS config"),
        }
    }

    /// Runs the scenario to completion: start servers, run the load,
    /// drain, shut down, probe storage.
    pub fn run(&self) -> NetOutcome {
        match self.algorithm {
            NetAlgorithm::Abd => {
                let spec = self.value_spec();
                let initial = self.initial;
                let servers = (0..self.n)
                    .map(|_| ShardedAbdServer::new(initial, spec))
                    .collect();
                let cluster = NetCluster::<ShardedAbd>::start_corrupt(
                    self.backend,
                    servers,
                    self.corrupt.clone(),
                );
                let map = self.map();
                let handle =
                    cluster.spawn_load(&self.load, move |id| ShardedAbdClient::new(map, id.0));
                let report = handle.join();
                thread::sleep(self.drain);
                let automata = cluster.shutdown();
                let state_bits: f64 = automata.iter().map(Node::<ShardedAbd>::state_bits).sum();
                NetOutcome {
                    report,
                    state_bits,
                    touched_keys: None,
                }
            }
            NetAlgorithm::Cas | NetAlgorithm::CodedCas => {
                let cfg = self.cas_config();
                let initial = self.initial;
                let servers = (0..self.n)
                    .map(|i| ShardedCasServer::new(cfg.clone(), ServerId(i), initial))
                    .collect();
                let cluster = NetCluster::<ShardedCas>::start_corrupt(
                    self.backend,
                    servers,
                    self.corrupt.clone(),
                );
                let client_cfg = cfg.clone();
                let handle = cluster.spawn_load(&self.load, move |id| {
                    ShardedCasClient::new(client_cfg.clone(), id.0)
                });
                let report = handle.join();
                thread::sleep(self.drain);
                let automata = cluster.shutdown();
                let state_bits: f64 = automata.iter().map(Node::<ShardedCas>::state_bits).sum();
                let touched: usize = automata.iter().map(|s| s.keys_held()).sum();
                NetOutcome {
                    report,
                    state_bits,
                    touched_keys: Some(touched as f64 / f64::from(cfg.map.replicas())),
                }
            }
            NetAlgorithm::Hashed => {
                let cfg = self.cas_config();
                let initial = self.initial;
                let servers = (0..self.n)
                    .map(|i| ShardedHashedServer::new(cfg.clone(), ServerId(i), initial))
                    .collect();
                let cluster = NetCluster::<ShardedHashed>::start_corrupt(
                    self.backend,
                    servers,
                    self.corrupt.clone(),
                );
                let client_cfg = cfg.clone();
                let handle = cluster.spawn_load(&self.load, move |id| {
                    ShardedHashedClient::new(client_cfg.clone(), id.0)
                });
                let report = handle.join();
                thread::sleep(self.drain);
                let automata = cluster.shutdown();
                let state_bits: f64 = automata.iter().map(Node::<ShardedHashed>::state_bits).sum();
                let touched: usize = automata.iter().map(|s| s.cas().keys_held()).sum();
                NetOutcome {
                    report,
                    state_bits,
                    touched_keys: Some(touched as f64 / f64::from(cfg.map.replicas())),
                }
            }
        }
    }
}

/// Serves one server of `scenario` on `addr` until the process dies —
/// the `shmem-server` binary's engine. `announce` receives the actually
/// bound address (useful with port 0) before the loop starts.
///
/// # Errors
///
/// [`NetError::Io`] if binding fails.
pub fn serve_forever(
    scenario: &NetScenario,
    index: u32,
    addr: SocketAddr,
    announce: impl FnOnce(SocketAddr),
) -> Result<(), NetError> {
    let stop = Arc::new(AtomicBool::new(false));
    let me = ServerId(index);
    let transport = TcpServerTransport::bind(addr)?;
    announce(transport.local_addr());
    match scenario.algorithm {
        NetAlgorithm::Abd => {
            let s = ShardedAbdServer::new(scenario.initial, ValueSpec::from_bits(64.0));
            serve_until::<ShardedAbd, _>(s, me, transport, stop);
        }
        NetAlgorithm::Cas | NetAlgorithm::CodedCas => {
            let s = ShardedCasServer::new(scenario.cas_config(), me, scenario.initial);
            serve_until::<ShardedCas, _>(s, me, transport, stop);
        }
        NetAlgorithm::Hashed => {
            let s = ShardedHashedServer::new(scenario.cas_config(), me, scenario.initial);
            serve_until::<ShardedHashed, _>(s, me, transport, stop);
        }
    }
    Ok(())
}

/// Runs `scenario.load` against externally-started TCP servers at
/// `addrs` — the `shmem-client` binary's engine. No storage probe (the
/// server states live in other processes); the returned report still
/// carries everything the atomicity checkers need.
pub fn run_remote(scenario: &NetScenario, addrs: Vec<SocketAddr>) -> NetRunReport {
    let table = addr_table(addrs);
    let epoch = Instant::now();
    match scenario.algorithm {
        NetAlgorithm::Abd => {
            let map = scenario.map();
            spawn_remote::<ShardedAbd>(&scenario.load, table, epoch, move |id| {
                ShardedAbdClient::new(map, id.0)
            })
        }
        NetAlgorithm::Cas | NetAlgorithm::CodedCas => {
            let cfg = scenario.cas_config();
            spawn_remote::<ShardedCas>(&scenario.load, table, epoch, move |id| {
                ShardedCasClient::new(cfg.clone(), id.0)
            })
        }
        NetAlgorithm::Hashed => {
            let cfg = scenario.cas_config();
            spawn_remote::<ShardedHashed>(&scenario.load, table, epoch, move |id| {
                ShardedHashedClient::new(cfg.clone(), id.0)
            })
        }
    }
}

fn spawn_remote<P>(
    load: &LoadConfig,
    table: AddrTable,
    epoch: Instant,
    make_client: impl Fn(ClientId) -> P::Client + Send + Sync + 'static,
) -> NetRunReport
where
    P: Protocol<Inv = MultiInv, Resp = MultiResp>,
    P::Msg: WireMsg,
    P::Server: Send + 'static,
    P::Client: Send + 'static,
{
    let make_client = Arc::new(make_client);
    let mut joins = Vec::new();
    let mut faults = Vec::new();
    for block in load.client_blocks() {
        let cfg = load.clone();
        let make_client = Arc::clone(&make_client);
        let pool = TcpClientTransport::new(Arc::clone(&table));
        faults.push(pool.faults());
        joins.push(thread::spawn(move || {
            run_worker::<P, _>(pool, block, |id| make_client(id), &cfg, epoch)
        }));
    }
    LoadHandle {
        joins,
        faults,
        started: Instant::now(),
    }
    .join()
}

/// A finished scenario: the load report plus a storage probe over the
/// final server states.
pub struct NetOutcome {
    /// The aggregated load report.
    pub report: NetRunReport,
    /// Total value-bearing server storage, in bits.
    pub state_bits: f64,
    /// Keys with materialized state, normalized by replication (CAS
    /// variants only — ABD's per-key storage is trivially `N`).
    pub touched_keys: Option<f64>,
}

impl NetOutcome {
    /// Steady-state storage per touched key, normalized by the 64-bit
    /// value size — directly comparable to the paper's `N/(N−f)` bound.
    pub fn per_key_storage(&self) -> Option<f64> {
        let touched = self.touched_keys?;
        if touched == 0.0 {
            return None;
        }
        Some(self.state_bits / (touched * 64.0))
    }
}
