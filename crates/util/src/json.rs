//! A tiny JSON emitter.
//!
//! The figure/table exporters need to *write* JSON (they never parse it),
//! so this is an escape function plus a small value builder — enough to
//! replace `serde_json::to_string_pretty` for the table types in
//! `shmem-bench` without an external dependency.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered via `f64`; non-finite renders as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array of strings.
    pub fn str_array<I, S>(items: I) -> Json
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Json::Arr(items.into_iter().map(Json::str).collect())
    }

    /// Renders compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation, like `serde_json::to_string_pretty`.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.iter(), |out, v, d| {
                    v.write(out, indent, d);
                })
            }
            Json::Obj(entries) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                entries.iter(),
                |out, (k, v), d| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                },
            ),
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn compact_object() {
        let v = Json::Obj(vec![
            ("title".into(), Json::str("t")),
            ("n".into(), Json::Num(3.0)),
            ("rows".into(), Json::str_array(["a", "b"])),
        ]);
        assert_eq!(v.to_compact(), r#"{"title":"t","n":3,"rows":["a","b"]}"#);
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let v = Json::Obj(vec![(
            "rows".into(),
            Json::Arr(vec![Json::str_array(["x"])]),
        )]);
        let expected = "{\n  \"rows\": [\n    [\n      \"x\"\n    ]\n  ]\n}";
        assert_eq!(v.to_pretty(), expected);
    }

    #[test]
    fn empty_containers_stay_flat() {
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_pretty(), "{}");
    }

    #[test]
    fn numbers_render_plainly() {
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
        assert_eq!(Json::Num(-7.0).to_compact(), "-7");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }
}
