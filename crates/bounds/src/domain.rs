//! The value domain `V` that the emulated register stores.

use std::fmt;

/// The finite set `V` of values the register can hold, represented by its
/// cardinality (possibly astronomically large, hence stored as `log2 |V|`).
///
/// The finite-`|V|` bound forms need `log2 |V|`, `log2(|V|−1)` and
/// `log2 C(|V|−1, k)`; this type computes all three accurately for both tiny
/// domains (where the `−1` matters) and huge ones (where it vanishes).
///
/// # Examples
///
/// ```
/// use shmem_bounds::ValueDomain;
///
/// let tiny = ValueDomain::from_cardinality(4)?;
/// assert_eq!(tiny.log2_card(), 2.0);
/// assert!((tiny.log2_card_minus_one() - 3f64.log2()).abs() < 1e-12);
///
/// let huge = ValueDomain::from_bits(1024); // |V| = 2^1024
/// assert_eq!(huge.log2_card(), 1024.0);
/// // log2(|V| - 1) is indistinguishable from log2 |V| at this size.
/// assert_eq!(huge.log2_card_minus_one(), 1024.0);
/// # Ok::<(), shmem_bounds::domain::DomainError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueDomain {
    log2_card: f64,
    /// Exact cardinality when it fits in a `u128`.
    exact_card: Option<u128>,
}

impl ValueDomain {
    /// A domain with exactly `card` values.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::TooSmall`] if `card < 2` — the paper's proofs
    /// all need at least two distinct values to write.
    pub fn from_cardinality(card: u128) -> Result<ValueDomain, DomainError> {
        if card < 2 {
            return Err(DomainError::TooSmall { card });
        }
        Ok(ValueDomain {
            log2_card: (card as f64).log2(),
            exact_card: Some(card),
        })
    }

    /// A domain of `|V| = 2^bits` values (e.g. `from_bits(32)` for 32-bit
    /// register values).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn from_bits(bits: u32) -> ValueDomain {
        assert!(bits > 0, "value domain needs at least 1 bit");
        ValueDomain {
            log2_card: bits as f64,
            exact_card: if bits < 128 {
                Some(1u128 << bits)
            } else {
                None
            },
        }
    }

    /// `log2 |V|` — the information content of one value, in bits.
    pub fn log2_card(self) -> f64 {
        self.log2_card
    }

    /// The exact cardinality, when it fits in a `u128`.
    pub fn cardinality(self) -> Option<u128> {
        self.exact_card
    }

    /// `log2(|V| − 1)`, computed exactly for small domains and as
    /// `log2 |V| + log2(1 − 2^(−log2|V|))` for huge ones.
    pub fn log2_card_minus_one(self) -> f64 {
        match self.exact_card {
            Some(card) => ((card - 1) as f64).log2(),
            None => {
                // |V| ≥ 2^128 here: the correction log2(1 - 1/|V|) is far
                // below f64 resolution, so log2(|V|-1) == log2 |V| exactly.
                self.log2_card
            }
        }
    }

    /// `log2 C(|V| − 1, k)` — the log-cardinality of the set `V0` of distinct
    /// value tuples in Theorem 6.5's counting argument.
    ///
    /// Computed as `Σ_{i=0}^{k−1} [log2(|V|−1−i) − log2(k−i)]`, which is
    /// accurate both when `|V|` is tiny and when it dwarfs `k`.
    ///
    /// Returns `f64::NEG_INFINITY` if the binomial is zero (i.e. `k > |V|−1`
    /// for an exactly-known domain).
    pub fn log2_binomial_card_minus_one(self, k: u32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        match self.exact_card {
            Some(card) => {
                let m = card - 1;
                if (k as u128) > m {
                    return f64::NEG_INFINITY;
                }
                let mut acc = 0.0;
                for i in 0..k as u128 {
                    acc += ((m - i) as f64).log2() - ((k as u128 - i) as f64).log2();
                }
                acc
            }
            None => {
                // |V|−1−i ≈ |V| to f64 precision for all i ≤ k ≪ 2^128.
                k as f64 * self.log2_card - crate::util::log2_factorial(k)
            }
        }
    }
}

impl fmt::Display for ValueDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.exact_card {
            Some(card) => write!(f, "|V|={card}"),
            None => write!(f, "|V|=2^{}", self.log2_card),
        }
    }
}

/// Errors from [`ValueDomain`] constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomainError {
    /// Cardinality below 2: a register over fewer than two values stores no
    /// information and the bounds are vacuous.
    TooSmall {
        /// The rejected cardinality.
        card: u128,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::TooSmall { card } => {
                write!(f, "value domain must have at least 2 values, got {card}")
            }
        }
    }
}

impl std::error::Error for DomainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_domain_exact() {
        let d = ValueDomain::from_cardinality(8).unwrap();
        assert_eq!(d.log2_card(), 3.0);
        assert_eq!(d.cardinality(), Some(8));
        assert!((d.log2_card_minus_one() - 7f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn rejects_trivial_domain() {
        assert!(ValueDomain::from_cardinality(0).is_err());
        assert!(ValueDomain::from_cardinality(1).is_err());
        assert!(ValueDomain::from_cardinality(2).is_ok());
    }

    #[test]
    fn from_bits_matches_cardinality() {
        let a = ValueDomain::from_bits(10);
        let b = ValueDomain::from_cardinality(1024).unwrap();
        assert_eq!(a.log2_card(), b.log2_card());
        assert_eq!(a.cardinality(), b.cardinality());
    }

    #[test]
    fn huge_domain_has_no_exact_cardinality() {
        let d = ValueDomain::from_bits(4096);
        assert_eq!(d.cardinality(), None);
        assert_eq!(d.log2_card(), 4096.0);
        assert_eq!(d.log2_card_minus_one(), 4096.0);
    }

    #[test]
    fn binomial_small_exact() {
        // C(7, 3) = 35.
        let d = ValueDomain::from_cardinality(8).unwrap();
        assert!((d.log2_binomial_card_minus_one(3) - 35f64.log2()).abs() < 1e-10);
    }

    #[test]
    fn binomial_k_zero_is_zero() {
        let d = ValueDomain::from_cardinality(8).unwrap();
        assert_eq!(d.log2_binomial_card_minus_one(0), 0.0);
    }

    #[test]
    fn binomial_overflowing_k_is_neg_infinity() {
        // C(3, 5) = 0 so its log is -inf.
        let d = ValueDomain::from_cardinality(4).unwrap();
        assert_eq!(d.log2_binomial_card_minus_one(5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_huge_domain_approximation() {
        // log2 C(2^256 - 1, 4) ≈ 4*256 - log2(24).
        let d = ValueDomain::from_bits(256);
        let expected = 4.0 * 256.0 - 24f64.log2();
        assert!((d.log2_binomial_card_minus_one(4) - expected).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(
            ValueDomain::from_cardinality(16).unwrap().to_string(),
            "|V|=16"
        );
        assert_eq!(ValueDomain::from_bits(512).to_string(), "|V|=2^512");
    }
}
