//! Cluster harnesses: build worlds, drive workloads, extract histories.

use crate::abd::{Abd, AbdClient, AbdServer, ShardedAbd, ShardedAbdClient, ShardedAbdServer};
use crate::abd_gossip::{AbdGossip, GossipServer};
use crate::cas::{
    Cas, CasClient, CasConfig, CasServer, ShardedCas, ShardedCasClient, ShardedCasConfig,
    ShardedCasServer,
};
use crate::hashed::{
    HashedCas, HashedClient, HashedServer, ShardedHashed, ShardedHashedClient, ShardedHashedServer,
};
use crate::lossy::{Lossy, LossyServer};
use crate::multikey::{project_histories, Key, MultiInv, MultiResp, ShardMap};
use crate::nowriteback::{NoWriteBack, NwbClient};
use crate::reg::{RegInv, RegResp};
use crate::value::{Value, ValueSpec};
use shmem_erasure::{Codec, Gf256};
use shmem_sim::{ClientId, Protocol, RunError, ServerId, Sim, SimConfig, StorageSnapshot};
use shmem_spec::history::{History, OpKind};
use shmem_util::json::Json;
use shmem_util::DetRng;
use std::collections::BTreeMap;

/// Appends a `"codecs"` section to a metrics JSON document: one entry per
/// erasure-code geometry the cluster uses, with the [`Codec::shared`]
/// decode-plan LRU counters. The counters are process-wide per geometry
/// (the registry memoizes codecs), which is exactly the cache whose
/// effectiveness the export is meant to surface.
fn append_codecs_section(doc: &mut Json, geometries: &[(u32, u32)]) {
    let codecs = Json::Arr(
        geometries
            .iter()
            .map(|&(n, k)| {
                let stats = Codec::<Gf256>::shared(n as usize, k as usize)
                    .expect("cluster geometries are validated at construction")
                    .stats();
                Json::Obj(vec![
                    ("n".to_string(), Json::Num(f64::from(n))),
                    ("k".to_string(), Json::Num(f64::from(k))),
                    (
                        "decode_plan_hits".to_string(),
                        Json::Num(stats.decode_plan_hits as f64),
                    ),
                    (
                        "decode_plan_misses".to_string(),
                        Json::Num(stats.decode_plan_misses as f64),
                    ),
                ])
            })
            .collect(),
    );
    match doc {
        Json::Obj(fields) => fields.push(("codecs".to_string(), codecs)),
        _ => unreachable!("metrics export is an object"),
    }
}

/// A running register cluster of any protocol with the uniform
/// [`RegInv`]/[`RegResp`] interface.
///
/// # Examples
///
/// ```
/// use shmem_algorithms::harness::AbdCluster;
///
/// let mut c = AbdCluster::new(5, 2, 2, shmem_algorithms::ValueSpec::from_bits(64.0));
/// c.write(0, 42)?;
/// assert_eq!(c.read(1)?, 42);
/// assert!(shmem_spec::check_atomic(&c.history()).is_ok());
/// # Ok::<(), shmem_sim::RunError>(())
/// ```
pub struct Cluster<P: Protocol<Inv = RegInv, Resp = RegResp>> {
    /// The underlying simulated world, exposed for adversary control.
    pub sim: Sim<P>,
    initial: Value,
    f: u32,
    /// Erasure-code geometries `(n, k)` this cluster decodes with — the
    /// codecs whose plan-cache stats `metrics_json` reports (empty for
    /// replication-only protocols).
    codec_geometries: Vec<(u32, u32)>,
}

/// ABD cluster alias.
pub type AbdCluster = Cluster<Abd>;
/// CAS/CASGC cluster alias.
pub type CasCluster = Cluster<Cas>;
/// Lossy-strawman cluster alias.
pub type LossyCluster = Cluster<Lossy>;
/// Gossiping-ABD cluster alias.
pub type GossipCluster = Cluster<AbdGossip>;
/// Write-back-less (broken) ABD cluster alias.
pub type NwbCluster = Cluster<NoWriteBack>;
/// Hash-commitment CAS cluster alias.
pub type HashedCluster = Cluster<HashedCas>;

impl<P: Protocol<Inv = RegInv, Resp = RegResp>> Cluster<P> {
    /// The failure budget the cluster was built for.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// The register's initial value.
    pub fn initial(&self) -> Value {
        self.initial
    }

    /// Turns on full metering ([`shmem_sim::MetricsLevel::Full`]) and
    /// returns the cluster — chainable after any constructor:
    /// `AbdCluster::new(5, 2, 2, spec).metered()`.
    #[must_use]
    pub fn metered(mut self) -> Self {
        self.sim.set_metrics(shmem_sim::MetricsLevel::Full);
        self
    }

    /// The cluster's metrics registry (empty unless [`Cluster::metered`]
    /// or `sim.set_metrics` enabled metering).
    pub fn metrics(&self) -> &shmem_sim::MetricsRegistry {
        self.sim.metrics()
    }

    /// Deterministic JSON export of the metrics registry plus live gauges
    /// and the decode-plan cache counters of every codec geometry in use.
    pub fn metrics_json(&self) -> shmem_util::json::Json {
        let mut doc = self.sim.metrics_json();
        append_codecs_section(&mut doc, &self.codec_geometries);
        doc
    }

    /// The erasure-code geometries `(n, k)` this cluster reports codec
    /// stats for.
    pub fn codec_geometries(&self) -> &[(u32, u32)] {
        &self.codec_geometries
    }

    /// Completes a full write at `client`, running the world fairly.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (liveness failure, busy client, …).
    pub fn write(&mut self, client: u32, value: Value) -> Result<(), RunError> {
        self.sim.invoke(ClientId(client), RegInv::Write(value))?;
        self.sim.run_until_op_completes(ClientId(client))?;
        Ok(())
    }

    /// Completes a full read at `client`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; a protocol-level read failure (e.g.
    /// codeword symbols that did not decode) surfaces as
    /// [`RunError::OperationFailed`].
    ///
    /// # Panics
    ///
    /// Panics if the protocol answers a read with a write-ack (protocol
    /// bug).
    pub fn read(&mut self, client: u32) -> Result<Value, RunError> {
        self.sim.invoke(ClientId(client), RegInv::Read)?;
        match self.sim.run_until_op_completes(ClientId(client))? {
            RegResp::ReadValue(v) => Ok(v),
            RegResp::ReadFailed(e) => Err(RunError::OperationFailed {
                client: ClientId(client),
                detail: e.to_string(),
            }),
            RegResp::WriteAck => panic!("read must not be answered with a write-ack"),
        }
    }

    /// Starts an operation without running it — for concurrent workloads.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn begin(&mut self, client: u32, inv: RegInv) -> Result<(), RunError> {
        self.sim.invoke(ClientId(client), inv)
    }

    /// Runs the world under a seeded random schedule until quiescence —
    /// completes all open operations under an arbitrary interleaving.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_seeded(&mut self, seed: u64) -> Result<u64, RunError> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut steps = 0u64;
        let limit = self.sim.config().step_limit;
        while self
            .sim
            .step_with(|opts| rng.gen_range(0..opts.len()))
            .is_some()
        {
            steps += 1;
            if steps > limit {
                return Err(RunError::StepLimit { steps: limit });
            }
        }
        Ok(steps)
    }

    /// Runs the world under a seeded random schedule that also reorders
    /// messages within channels (requires the cluster to have been built
    /// with [`shmem_sim::ChannelOrder::Any`]) until quiescence.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_seeded_reorder(&mut self, seed: u64) -> Result<u64, RunError> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut steps = 0u64;
        let limit = self.sim.config().step_limit;
        while self
            .sim
            .step_with_reorder(|opts| {
                let oi = rng.gen_range(0..opts.len());
                let mi = rng.gen_range(0..opts[oi].1);
                (oi, mi)
            })
            .is_some()
        {
            steps += 1;
            if steps > limit {
                return Err(RunError::StepLimit { steps: limit });
            }
        }
        Ok(steps)
    }

    /// Runs the world fairly until quiescence.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_fair(&mut self) -> Result<u64, RunError> {
        self.sim.run_to_quiescence()
    }

    /// The execution's history as a [`shmem_spec`] register history.
    pub fn history(&self) -> History<Value> {
        let mut h = History::new(self.initial);
        for op in self.sim.ops() {
            let kind = match op.invocation {
                RegInv::Write(v) => OpKind::Write(v),
                RegInv::Read => OpKind::Read,
            };
            let id = h.begin(op.client.0, kind, op.invoked_at);
            if let Some(t) = op.responded_at {
                let returned = op.response.and_then(RegResp::read_value);
                h.complete(id, t, returned);
            }
        }
        h
    }

    /// Measured storage peaks.
    pub fn storage(&self) -> StorageSnapshot {
        self.sim.storage()
    }
}

impl AbdCluster {
    /// An ABD cluster: `n` servers tolerating `f` failures (must be a
    /// minority), `clients` clients, values from a `spec`-sized domain.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> AbdCluster {
        Self::with_initial(n, f, clients, spec, 0)
    }

    /// Same, with arbitrary-order (non-FIFO) channels — the paper's
    /// weakest channel model.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn reordering(n: u32, f: u32, clients: u32, spec: ValueSpec) -> AbdCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip().reordering(),
                (0..n).map(|_| AbdServer::new(0, spec)).collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: Vec::new(),
        }
    }

    /// Same, with an explicit initial register value.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn with_initial(
        n: u32,
        f: u32,
        clients: u32,
        spec: ValueSpec,
        initial: Value,
    ) -> AbdCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n).map(|_| AbdServer::new(initial, spec)).collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial,
            f,
            codec_geometries: Vec::new(),
        }
    }
}

impl CasCluster {
    /// A CAS/CASGC cluster from a validated [`CasConfig`].
    pub fn from_config(cfg: CasConfig, clients: u32) -> CasCluster {
        Self::from_config_with_initial(cfg, clients, 0)
    }

    /// Same, with an explicit initial register value.
    pub fn from_config_with_initial(cfg: CasConfig, clients: u32, initial: Value) -> CasCluster {
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..cfg.n)
                    .map(|i| CasServer::new(cfg, ServerId(i), initial))
                    .collect(),
                (0..clients).map(|c| CasClient::new(cfg, c)).collect(),
            ),
            initial,
            f: cfg.f,
            codec_geometries: vec![(cfg.n, cfg.k)],
        }
    }

    /// Plain CAS with the native `k = N − 2f` code.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> CasCluster {
        Self::from_config(CasConfig::native(n, f, spec), clients)
    }

    /// CASGC with garbage-collection depth `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn with_gc(n: u32, f: u32, delta: u32, clients: u32, spec: ValueSpec) -> CasCluster {
        Self::from_config(CasConfig::native(n, f, spec).with_gc(delta), clients)
    }

    /// Plain CAS with arbitrary-order (non-FIFO) channels.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn reordering(n: u32, f: u32, clients: u32, spec: ValueSpec) -> CasCluster {
        let cfg = CasConfig::native(n, f, spec);
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip().reordering(),
                (0..cfg.n)
                    .map(|i| CasServer::new(cfg, ServerId(i), 0))
                    .collect(),
                (0..clients).map(|c| CasClient::new(cfg, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: vec![(cfg.n, cfg.k)],
        }
    }
}

impl GossipCluster {
    /// A gossiping-ABD cluster (server-to-server channels enabled).
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> GossipCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::with_gossip(),
                (0..n).map(|i| GossipServer::new(i, n, 0, spec)).collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: Vec::new(),
        }
    }
}

impl LossyCluster {
    /// The broken cheap cluster: servers keep only `kept_bits` per value.
    pub fn new(n: u32, f: u32, clients: u32, kept_bits: u32, spec: ValueSpec) -> LossyCluster {
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n)
                    .map(|_| LossyServer::new(0, kept_bits, spec))
                    .collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: Vec::new(),
        }
    }
}

impl LossyCluster {
    /// The *subtly* broken cheap cluster: only the first `rotten` servers
    /// truncate to `kept_bits`; the rest keep (effectively) everything.
    ///
    /// Unlike [`LossyCluster::new`], whose corruption surfaces on almost
    /// any completed read, a single bit-rotted replica only corrupts a
    /// read when faults carve a quorum in which the rotted server holds
    /// the highest tag alone — a rare, fault-timing-dependent event, which
    /// makes this the sparse falsification target for guided search.
    pub fn with_bit_rot(
        n: u32,
        f: u32,
        clients: u32,
        rotten: u32,
        kept_bits: u32,
        spec: ValueSpec,
    ) -> LossyCluster {
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n)
                    // 63 kept bits is lossless for every value the nemesis
                    // driver writes; the server type stays uniform.
                    .map(|i| LossyServer::new(0, if i < rotten { kept_bits } else { 63 }, spec))
                    .collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: Vec::new(),
        }
    }
}

impl NwbCluster {
    /// The broken write-back-less ABD cluster — ABD servers, clients whose
    /// reads return straight after the query phase. Regular but not
    /// atomic; the nemesis explorer's positive control.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> NwbCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n).map(|_| AbdServer::new(0, spec)).collect(),
                (0..clients).map(|c| NwbClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: Vec::new(),
        }
    }
}

impl HashedCluster {
    /// A hash-commitment CAS cluster with the native `k = N − 2f` code.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> HashedCluster {
        let cfg = CasConfig::native(n, f, spec);
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..cfg.n)
                    .map(|i| HashedServer::new(cfg, ServerId(i), 0))
                    .collect(),
                (0..clients).map(|c| HashedClient::new(cfg, c)).collect(),
            ),
            initial: 0,
            f,
            codec_geometries: vec![(cfg.n, cfg.k)],
        }
    }
}

/// A running sharded multi-register cluster of any protocol with the
/// batched [`MultiInv`]/[`MultiResp`] interface.
///
/// # Examples
///
/// ```
/// use shmem_algorithms::harness::ShardedAbdCluster;
/// use shmem_algorithms::{RegResp, ShardMap};
///
/// let map = ShardMap::new(6, 2, 3);
/// let mut c = ShardedAbdCluster::new(map, 1, 2, shmem_algorithms::ValueSpec::from_bits(64.0));
/// c.write_batch(0, &[(1, 11), (2, 22)])?;
/// let got = c.read_batch(1, &[1, 2])?;
/// assert_eq!(got.get(1), Some(&RegResp::ReadValue(11)));
/// # Ok::<(), shmem_sim::RunError>(())
/// ```
pub struct MultiCluster<P: Protocol<Inv = MultiInv, Resp = MultiResp>> {
    /// The underlying simulated world, exposed for adversary control.
    pub sim: Sim<P>,
    initial: Value,
    map: ShardMap,
    f: u32,
    codec_geometries: Vec<(u32, u32)>,
}

/// Sharded multi-register ABD cluster alias.
pub type ShardedAbdCluster = MultiCluster<ShardedAbd>;
/// Sharded multi-register CAS cluster alias.
pub type ShardedCasCluster = MultiCluster<ShardedCas>;
/// Sharded multi-register hashed-CAS cluster alias.
pub type ShardedHashedCluster = MultiCluster<ShardedHashed>;

impl<P: Protocol<Inv = MultiInv, Resp = MultiResp>> MultiCluster<P> {
    /// The per-shard failure budget the cluster was built for.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Every register's initial value.
    pub fn initial(&self) -> Value {
        self.initial
    }

    /// The key → shard → server placement.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Turns on full metering and returns the cluster — chainable after
    /// any constructor.
    #[must_use]
    pub fn metered(mut self) -> Self {
        self.sim.set_metrics(shmem_sim::MetricsLevel::Full);
        self
    }

    /// The cluster's metrics registry.
    pub fn metrics(&self) -> &shmem_sim::MetricsRegistry {
        self.sim.metrics()
    }

    /// Deterministic JSON export of the metrics registry plus live gauges
    /// and the decode-plan cache counters of every codec geometry in use.
    pub fn metrics_json(&self) -> shmem_util::json::Json {
        let mut doc = self.sim.metrics_json();
        append_codecs_section(&mut doc, &self.codec_geometries);
        doc
    }

    /// The erasure-code geometries `(n, k)` this cluster reports codec
    /// stats for.
    pub fn codec_geometries(&self) -> &[(u32, u32)] {
        &self.codec_geometries
    }

    /// Completes a batched write at `client`, running the world fairly.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn write_batch(&mut self, client: u32, pairs: &[(Key, Value)]) -> Result<(), RunError> {
        self.sim.invoke(ClientId(client), MultiInv::writes(pairs))?;
        self.sim.run_until_op_completes(ClientId(client))?;
        Ok(())
    }

    /// Completes a batched read at `client`, returning per-key outcomes.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn read_batch(&mut self, client: u32, keys: &[Key]) -> Result<MultiResp, RunError> {
        self.sim.invoke(ClientId(client), MultiInv::reads(keys))?;
        self.sim.run_until_op_completes(ClientId(client))
    }

    /// Starts a batched operation without running it — for concurrent
    /// workloads.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn begin(&mut self, client: u32, inv: MultiInv) -> Result<(), RunError> {
        self.sim.invoke(ClientId(client), inv)
    }

    /// Runs the world under a seeded random schedule until quiescence.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_seeded(&mut self, seed: u64) -> Result<u64, RunError> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut steps = 0u64;
        let limit = self.sim.config().step_limit;
        while self
            .sim
            .step_with(|opts| rng.gen_range(0..opts.len()))
            .is_some()
        {
            steps += 1;
            if steps > limit {
                return Err(RunError::StepLimit { steps: limit });
            }
        }
        Ok(steps)
    }

    /// Runs the world fairly until quiescence.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_fair(&mut self) -> Result<u64, RunError> {
        self.sim.run_to_quiescence()
    }

    /// The execution projected into one single-register history per key —
    /// feed each to the unmodified `shmem-spec` checkers.
    pub fn histories(&self) -> BTreeMap<Key, History<Value>> {
        project_histories(self.initial, self.sim.ops())
    }

    /// Measured storage peaks.
    pub fn storage(&self) -> StorageSnapshot {
        self.sim.storage()
    }
}

impl ShardedAbdCluster {
    /// A sharded ABD cluster over `map`, tolerating `f` failures per shard.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < replicas` (each shard needs a failure-minority
    /// majority quorum).
    pub fn new(map: ShardMap, f: u32, clients: u32, spec: ValueSpec) -> ShardedAbdCluster {
        assert!(
            2 * f < map.replicas(),
            "sharded ABD requires 2f < replicas per shard"
        );
        MultiCluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..map.n())
                    .map(|_| ShardedAbdServer::new(0, spec))
                    .collect(),
                (0..clients)
                    .map(|c| ShardedAbdClient::new(map, c))
                    .collect(),
            ),
            initial: 0,
            map,
            f,
            codec_geometries: Vec::new(),
        }
    }
}

impl ShardedCasCluster {
    /// A sharded CAS cluster from a validated [`ShardedCasConfig`].
    pub fn from_config(cfg: ShardedCasConfig, clients: u32) -> ShardedCasCluster {
        let map = cfg.map;
        let geometry = (map.replicas(), cfg.k);
        MultiCluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..map.n())
                    .map(|i| ShardedCasServer::new(cfg.clone(), ServerId(i), 0))
                    .collect(),
                (0..clients)
                    .map(|c| ShardedCasClient::new(cfg.clone(), c))
                    .collect(),
            ),
            initial: 0,
            map,
            f: cfg.f,
            codec_geometries: vec![geometry],
        }
    }

    /// Sharded CAS with the native per-shard `k = replicas − 2f` code.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < replicas`.
    pub fn new(map: ShardMap, f: u32, clients: u32, spec: ValueSpec) -> ShardedCasCluster {
        Self::from_config(ShardedCasConfig::native(map, f, spec), clients)
    }

    /// Sharded CAS with the storage-optimal `k = replicas − f` MDS code —
    /// the profile whose per-key storage sits exactly on the `ν·N/(N−f)`
    /// bound (conditional liveness; see [`ShardedCasConfig::coded`]).
    ///
    /// # Panics
    ///
    /// Panics unless `f < replicas`.
    pub fn coded(map: ShardMap, f: u32, clients: u32, spec: ValueSpec) -> ShardedCasCluster {
        Self::from_config(ShardedCasConfig::coded(map, f, spec), clients)
    }
}

impl ShardedHashedCluster {
    /// A sharded hashed-CAS cluster with the native per-shard code.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < replicas`.
    pub fn new(map: ShardMap, f: u32, clients: u32, spec: ValueSpec) -> ShardedHashedCluster {
        let cfg = ShardedCasConfig::native(map, f, spec);
        let geometry = (map.replicas(), cfg.k);
        MultiCluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..map.n())
                    .map(|i| ShardedHashedServer::new(cfg.clone(), ServerId(i), 0))
                    .collect(),
                (0..clients)
                    .map(|c| ShardedHashedClient::new(cfg.clone(), c))
                    .collect(),
            ),
            initial: 0,
            map,
            f: cfg.f,
            codec_geometries: vec![geometry],
        }
    }
}

/// A reproducible concurrent workload: `writers` clients each performing
/// `rounds` writes of unique values, interleaved with `readers` clients
/// reading, under a seeded random schedule.
///
/// Returns the completed steps.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_concurrent_workload<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &mut Cluster<P>,
    writers: u32,
    readers: u32,
    rounds: u32,
    seed: u64,
) -> Result<(), RunError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut next_value = 1u64;
    for _ in 0..rounds {
        for w in 0..writers {
            cluster.begin(w, RegInv::Write(next_value))?;
            next_value += 1;
        }
        for r in 0..readers {
            cluster.begin(writers + r, RegInv::Read)?;
        }
        // Interleave: random schedule until all ops of the round complete.
        let mut budget = cluster.sim.config().step_limit;
        loop {
            let open = (0..writers + readers).any(|c| cluster.sim.has_open_op(ClientId(c)));
            if !open {
                break;
            }
            if cluster
                .sim
                .step_with(|opts| rng.gen_range(0..opts.len()))
                .is_none()
            {
                return Err(RunError::Stuck {
                    client: ClientId(0),
                });
            }
            budget -= 1;
            if budget == 0 {
                return Err(RunError::StepLimit {
                    steps: cluster.sim.config().step_limit,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_spec::{check_atomic, check_regular};

    #[test]
    fn abd_sequential_history_is_atomic() {
        let mut c = AbdCluster::new(5, 2, 3, ValueSpec::from_bits(64.0));
        c.write(0, 1).unwrap();
        assert_eq!(c.read(2), Ok(1));
        c.write(1, 2).unwrap();
        assert_eq!(c.read(2), Ok(2));
        let h = c.history();
        assert!(h.is_well_formed());
        assert!(check_atomic(&h).is_ok());
        assert!(check_regular(&h).is_ok());
    }

    #[test]
    fn abd_concurrent_histories_atomic_across_seeds() {
        for seed in 0..8 {
            let mut c = AbdCluster::new(5, 2, 4, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, 2, 2, 2, seed).unwrap();
            let h = c.history();
            assert!(
                check_atomic(&h).is_ok(),
                "seed {seed} produced non-atomic history: {h:?}"
            );
        }
    }

    #[test]
    fn cas_concurrent_histories_atomic_across_seeds() {
        for seed in 0..8 {
            let mut c = CasCluster::new(5, 1, 4, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, 2, 2, 2, seed).unwrap();
            let h = c.history();
            assert!(
                check_atomic(&h).is_ok(),
                "seed {seed} produced non-atomic history: {h:?}"
            );
        }
    }

    #[test]
    fn casgc_concurrent_histories_atomic_across_seeds() {
        for seed in 0..8 {
            // δ = 4 comfortably covers 2 concurrent writers.
            let mut c = CasCluster::with_gc(5, 1, 4, 4, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, 2, 2, 2, seed).unwrap();
            assert!(check_atomic(&c.history()).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn lossy_cluster_violates_regularity() {
        let mut c = LossyCluster::new(3, 1, 2, 2, ValueSpec::from_bits(8.0));
        c.write(0, 0xAB).unwrap();
        let got = c.read(1).unwrap();
        assert_ne!(got, 0xAB); // truncated
        let h = c.history();
        assert!(check_regular(&h).is_err());
        assert!(check_atomic(&h).is_err());
    }

    #[test]
    fn abd_storage_flat_in_concurrency_cas_grows() {
        let spec = ValueSpec::from_bits(64.0);
        // Three concurrent writers.
        let mut abd = AbdCluster::new(5, 2, 3, spec);
        run_concurrent_workload(&mut abd, 3, 0, 2, 7).unwrap();
        let abd_total = abd.storage().peak_total_bits;
        assert_eq!(abd_total, 5.0 * 64.0); // one value per server, always

        let mut cas = CasCluster::new(5, 1, 3, spec);
        run_concurrent_workload(&mut cas, 3, 0, 2, 7).unwrap();
        let cas_total = cas.storage().peak_total_bits;
        // k = 3; at least 2 versions coexist somewhere along the run.
        assert!(cas_total > 5.0 * 64.0 / 3.0, "cas_total={cas_total}");
    }

    #[test]
    fn history_records_incomplete_ops() {
        let mut c = AbdCluster::new(3, 1, 1, ValueSpec::from_bits(64.0));
        c.begin(0, RegInv::Write(9)).unwrap();
        // Never run: the op stays open.
        let h = c.history();
        assert_eq!(h.len(), 1);
        assert!(!h.ops()[0].is_complete());
    }
}
