//! Storage-cost metering, following the paper's definitions:
//! `MaxStorage = max_i log2 |S_i|` and `TotalStorage = Σ_i log2 |S_i|`,
//! evaluated over the states actually reached in an execution.

/// One server's meter state: peaks plus the last observed values. Kept as
/// one struct per server (not parallel vectors) because the per-step
/// update touches all four fields of exactly one server — one cache line
/// instead of four.
#[derive(Clone, Copy, Debug, Default)]
struct ServerMeter {
    peak: f64,
    peak_meta: f64,
    /// Last observed values — what makes the O(1) single-server update of
    /// [`StorageMeter::observe_server`] sound.
    cur: f64,
    cur_meta: f64,
}

/// Tracks per-server storage high-water marks over an execution.
///
/// At every point of the execution the simulator reports each server's
/// value-bearing storage (`state_bits`) and metadata (`metadata_bits`);
/// the meter keeps per-server peaks, the peak of the per-point total, and
/// the peak of the per-point maximum.
#[derive(Clone, Debug)]
pub struct StorageMeter {
    servers: Vec<ServerMeter>,
    current_total: f64,
    current_total_meta: f64,
    peak_total: f64,
    peak_total_meta: f64,
    peak_max: f64,
    samples: u64,
}

impl StorageMeter {
    /// A meter for `n` servers, all peaks zero.
    pub fn new(n: usize) -> StorageMeter {
        StorageMeter {
            servers: vec![ServerMeter::default(); n],
            current_total: 0.0,
            current_total_meta: 0.0,
            peak_total: 0.0,
            peak_total_meta: 0.0,
            peak_max: 0.0,
            samples: 0,
        }
    }

    /// Records one point's per-server `(state_bits, metadata_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices don't match the server count.
    pub fn observe(&mut self, state_bits: &[f64], metadata_bits: &[f64]) {
        assert_eq!(state_bits.len(), self.servers.len());
        assert_eq!(metadata_bits.len(), self.servers.len());
        self.observe_with(state_bits.len(), |i| (state_bits[i], metadata_bits[i]));
    }

    /// [`StorageMeter::observe`] with the per-server values produced by a
    /// callback — the allocation-free form the simulator's construction
    /// sample uses.
    pub fn observe_with(&mut self, n: usize, mut f: impl FnMut(usize) -> (f64, f64)) {
        assert_eq!(n, self.servers.len());
        let mut total = 0.0;
        let mut total_meta = 0.0;
        let mut max = 0.0f64;
        for (i, s) in self.servers.iter_mut().enumerate() {
            let (b, m) = f(i);
            s.peak = s.peak.max(b);
            s.peak_meta = s.peak_meta.max(m);
            s.cur = b;
            s.cur_meta = m;
            total += b;
            total_meta += m;
            max = max.max(b);
        }
        self.current_total = total;
        self.current_total_meta = total_meta;
        self.peak_total = self.peak_total.max(total);
        self.peak_total_meta = self.peak_total_meta.max(total_meta);
        self.peak_max = self.peak_max.max(max);
        self.samples += 1;
    }

    /// Records one point at which only server `i`'s storage can have moved
    /// — the simulator's per-step sample. O(1): running totals are adjusted
    /// by the server's delta, and `peak_max` only needs the new value
    /// because every *other* server's current value was already a
    /// `peak_max` candidate when it was last observed. Requires one initial
    /// full [`StorageMeter::observe`] to seed the currents.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn observe_server(&mut self, i: usize, state_bits: f64, metadata_bits: f64) {
        self.samples += 1;
        let s = &mut self.servers[i];
        if state_bits == s.cur && metadata_bits == s.cur_meta {
            // Storage unchanged: every peak already covers this point.
            return;
        }
        s.peak = s.peak.max(state_bits);
        s.peak_meta = s.peak_meta.max(metadata_bits);
        self.current_total += state_bits - s.cur;
        self.current_total_meta += metadata_bits - s.cur_meta;
        s.cur = state_bits;
        s.cur_meta = metadata_bits;
        self.peak_total = self.peak_total.max(self.current_total);
        self.peak_total_meta = self.peak_total_meta.max(self.current_total_meta);
        self.peak_max = self.peak_max.max(state_bits);
    }

    /// Records one point at which no server's storage moved (a client
    /// step): the point still counts toward `points_observed`, but every
    /// peak is unchanged by construction.
    #[inline]
    pub fn observe_tick(&mut self) {
        self.samples += 1;
    }

    /// Whether an [`StorageMeter::observe_server`] with these values would
    /// leave every peak untouched — the simulator's check for deferring
    /// the sample as a tick without unsharing the meter.
    #[inline]
    pub fn server_unchanged(&self, i: usize, state_bits: f64, metadata_bits: f64) -> bool {
        let s = &self.servers[i];
        state_bits == s.cur && metadata_bits == s.cur_meta
    }

    /// Books `n` deferred peak-preserving observation points at once (the
    /// batched form of [`StorageMeter::observe_tick`]).
    #[inline]
    pub fn add_ticks(&mut self, n: u64) {
        self.samples += n;
    }

    /// The current snapshot of all peaks.
    pub fn snapshot(&self) -> StorageSnapshot {
        StorageSnapshot {
            per_server_peak_bits: self.servers.iter().map(|s| s.peak).collect(),
            per_server_peak_metadata_bits: self.servers.iter().map(|s| s.peak_meta).collect(),
            peak_total_bits: self.peak_total,
            peak_total_metadata_bits: self.peak_total_meta,
            peak_max_bits: self.peak_max,
            points_observed: self.samples,
        }
    }
}

/// Measured storage peaks of one execution.
#[derive(Clone, Debug, PartialEq)]
pub struct StorageSnapshot {
    /// Per-server peak of value-bearing storage, in bits.
    pub per_server_peak_bits: Vec<f64>,
    /// Per-server peak of metadata storage, in bits.
    pub per_server_peak_metadata_bits: Vec<f64>,
    /// Peak over points of the per-point total value-bearing storage —
    /// the measured `TotalStorage`.
    pub peak_total_bits: f64,
    /// Peak over points of the per-point total metadata.
    pub peak_total_metadata_bits: f64,
    /// Peak over points of the per-point maximum per-server storage —
    /// the measured `MaxStorage`.
    pub peak_max_bits: f64,
    /// How many points were sampled.
    pub points_observed: u64,
}

impl StorageSnapshot {
    /// Sum of per-server peaks — an upper estimate of `TotalStorage` that
    /// treats each server's state space as its own peak (this is the
    /// quantity the theorems constrain: `Σ_i log2 |S_i|` over the reachable
    /// state spaces `S_i`).
    pub fn sum_of_server_peaks_bits(&self) -> f64 {
        self.per_server_peak_bits.iter().sum()
    }

    /// `TotalStorage` normalized by `log2 |V|`.
    pub fn normalized_total(&self, log2_v: f64) -> f64 {
        self.sum_of_server_peaks_bits() / log2_v
    }

    /// `MaxStorage` normalized by `log2 |V|`.
    pub fn normalized_max(&self, log2_v: f64) -> f64 {
        self.per_server_peak_bits
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
            / log2_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peaks_not_currents() {
        let mut m = StorageMeter::new(2);
        m.observe(&[4.0, 0.0], &[1.0, 1.0]);
        m.observe(&[0.0, 3.0], &[0.5, 2.0]);
        let s = m.snapshot();
        assert_eq!(s.per_server_peak_bits, vec![4.0, 3.0]);
        assert_eq!(s.per_server_peak_metadata_bits, vec![1.0, 2.0]);
        // Per-point totals were 4 then 3; peak total is 4, not 7.
        assert_eq!(s.peak_total_bits, 4.0);
        assert_eq!(s.peak_max_bits, 4.0);
        assert_eq!(s.points_observed, 2);
        // Sum of per-server peaks is the state-space total: 7.
        assert_eq!(s.sum_of_server_peaks_bits(), 7.0);
    }

    #[test]
    fn normalization() {
        let mut m = StorageMeter::new(3);
        m.observe(&[8.0, 8.0, 8.0], &[0.0; 3]);
        let s = m.snapshot();
        assert_eq!(s.normalized_total(8.0), 3.0);
        assert_eq!(s.normalized_max(8.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut m = StorageMeter::new(2);
        m.observe(&[1.0], &[1.0]);
    }

    #[test]
    fn incremental_single_server_updates_match_full_observes() {
        let mut full = StorageMeter::new(3);
        let mut inc = StorageMeter::new(3);
        let mut bits = [2.0, 5.0, 1.0];
        let mut meta = [0.5, 0.25, 1.0];
        full.observe(&bits, &meta);
        inc.observe(&bits, &meta);
        let updates = [
            (0, 7.0, 0.5),
            (2, 3.0, 2.0),
            (0, 1.0, 0.0),
            (1, 9.0, 0.125),
            // An unchanged re-observation exercises the fast exit.
            (1, 9.0, 0.125),
        ];
        for &(i, b, m) in &updates {
            bits[i] = b;
            meta[i] = m;
            full.observe(&bits, &meta);
            inc.observe_server(i, b, m);
        }
        // A client step: samples advance, peaks don't.
        full.observe(&bits, &meta);
        inc.observe_tick();
        assert_eq!(inc.snapshot(), full.snapshot());
    }

    #[test]
    fn empty_meter_snapshot() {
        let s = StorageMeter::new(4).snapshot();
        assert_eq!(s.peak_total_bits, 0.0);
        assert_eq!(s.points_observed, 0);
        assert_eq!(s.sum_of_server_peaks_bits(), 0.0);
    }
}
