//! Parity suite: the slab fast path ([`Codec`], sequential and parallel)
//! must be byte-identical to the legacy symbol-at-a-time [`ReedSolomon`]
//! reference — same share bytes, same decoded payloads, same errors —
//! across random geometries, payload lengths (including 0 and lengths
//! that are not a multiple of `k`), erasure patterns, and both fields.

use shmem_erasure::{Codec, Gf256, Gf2p16, ReedSolomon, SlabKernel};
use shmem_util::prop::prelude::*;
use shmem_util::DetRng;

/// A deterministic pseudo-random payload.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect()
}

/// A random `take`-element subset of `0..n`, in random order.
fn random_indices(n: usize, take: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = DetRng::seed_from_u64(seed);
    rng.shuffle(&mut idx);
    idx.truncate(take);
    idx
}

/// Asserts full encode/decode parity between the legacy reference and the
/// slab codec (sequential and 4-worker parallel) for one configuration.
fn assert_parity<F: SlabKernel>(n: usize, k: usize, data: &[u8], seed: u64) {
    let legacy = ReedSolomon::<F>::new(n, k).expect("legal geometry");
    let codec = Codec::<F>::new(n, k).expect("legal geometry");

    let reference = legacy.encode_bytes(data);
    let sequential = codec.encode_bytes_with_workers(data, 1);
    let parallel = codec.encode_bytes_with_workers(data, 4);
    assert_eq!(sequential, reference, "[{n},{k}] len={} encode", data.len());
    assert_eq!(
        parallel,
        reference,
        "[{n},{k}] len={} par encode",
        data.len()
    );

    // Decode from a random erasure pattern, in random supply order, with a
    // few extra shares beyond k (the reference ignores extras; so must we).
    let extra = (n - k).min(2);
    let picked: Vec<(usize, Vec<u8>)> = random_indices(n, k + extra, seed)
        .into_iter()
        .map(|i| (i, reference[i].clone()))
        .collect();
    let want = legacy.decode_bytes(&picked, data.len());
    assert_eq!(
        codec.decode_bytes_with_workers(&picked, data.len(), 1),
        want,
        "[{n},{k}] len={} decode",
        data.len()
    );
    assert_eq!(
        codec.decode_bytes_with_workers(&picked, data.len(), 4),
        want,
        "[{n},{k}] len={} par decode",
        data.len()
    );
    // And the decode actually round-trips.
    assert_eq!(want.expect("well-formed shares decode"), data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gf256_random_geometries_match_legacy(
        nk in (2usize..24).prop_flat_map(|n| (Just(n), 1usize..=n)),
        len in 0usize..300,
        seed in 0u64..1_000_000,
    ) {
        let (n, k) = nk;
        assert_parity::<Gf256>(n, k, &payload(len, seed), seed);
    }

    #[test]
    fn gf2p16_random_geometries_match_legacy(
        nk in (2usize..24).prop_flat_map(|n| (Just(n), 1usize..=n)),
        len in 0usize..300,
        seed in 0u64..1_000_000,
    ) {
        let (n, k) = nk;
        assert_parity::<Gf2p16>(n, k, &payload(len, seed), seed);
    }

    #[test]
    fn error_parity_on_malformed_inputs(
        n in 3usize..10,
        seed in 0u64..1_000_000,
    ) {
        let k = n / 2 + 1;
        let legacy = ReedSolomon::<Gf256>::new(n, k).unwrap();
        let codec = Codec::<Gf256>::new(n, k).unwrap();
        let shares = legacy.encode_bytes(&payload(50, seed));

        // Too few shares.
        let few: Vec<(usize, Vec<u8>)> =
            (0..k - 1).map(|i| (i, shares[i].clone())).collect();
        prop_assert_eq!(codec.decode_bytes(&few, 50), legacy.decode_bytes(&few, 50));

        // Duplicate index.
        let mut dup: Vec<(usize, Vec<u8>)> =
            (0..k).map(|i| (i, shares[i].clone())).collect();
        dup[k - 1].0 = dup[0].0;
        prop_assert_eq!(codec.decode_bytes(&dup, 50), legacy.decode_bytes(&dup, 50));

        // Out-of-range index.
        let mut oor: Vec<(usize, Vec<u8>)> =
            (0..k).map(|i| (i, shares[i].clone())).collect();
        oor[0].0 = n + 3;
        prop_assert_eq!(codec.decode_bytes(&oor, 50), legacy.decode_bytes(&oor, 50));

        // Ragged share lengths.
        let mut ragged: Vec<(usize, Vec<u8>)> =
            (0..k).map(|i| (i, shares[i].clone())).collect();
        ragged[k - 1].1.pop();
        prop_assert_eq!(
            codec.decode_bytes(&ragged, 50),
            legacy.decode_bytes(&ragged, 50)
        );

        // Claimed length longer than the shares carry.
        let full: Vec<(usize, Vec<u8>)> =
            (0..k).map(|i| (i, shares[i].clone())).collect();
        prop_assert_eq!(
            codec.decode_bytes(&full, 10_000),
            legacy.decode_bytes(&full, 10_000)
        );
    }
}

#[test]
fn edge_lengths_match_legacy_both_fields() {
    // 0, 1, just-below/at/above stripe boundaries, and non-multiples of k.
    for &(n, k) in &[(5usize, 3usize), (21, 11), (4, 4), (6, 1)] {
        for len in [0usize, 1, 2, k - 1, k, k + 1, 2 * k - 1, 2 * k + 1, 97] {
            assert_parity::<Gf256>(n, k, &payload(len, 7), 7);
            assert_parity::<Gf2p16>(n, k, &payload(len, 7), 7);
        }
    }
}

#[test]
fn paper_geometry_large_payload_parallel_parity() {
    // The paper's [21, 11] geometry at a payload big enough to cross
    // several parallel chunks — the configuration tab-codec measures.
    let data = payload(512 * 1024, 42);
    assert_parity::<Gf256>(21, 11, &data, 42);
}

#[test]
fn share_supply_order_is_irrelevant() {
    // The decoded payload is the unique solution of the linear system, so
    // any permutation of the same erasure pattern must decode identically
    // (and, in the codec, share one cached plan).
    let data = payload(1000, 9);
    let codec = Codec::<Gf256>::new(9, 4).unwrap();
    let shares = codec.encode_bytes(&data);
    let forward: Vec<(usize, Vec<u8>)> = [1usize, 3, 6, 8]
        .iter()
        .map(|&i| (i, shares[i].clone()))
        .collect();
    let backward: Vec<(usize, Vec<u8>)> = forward.iter().rev().cloned().collect();
    assert_eq!(
        codec.decode_bytes(&forward, data.len()).unwrap(),
        codec.decode_bytes(&backward, data.len()).unwrap()
    );
    let stats = codec.stats();
    assert_eq!(stats.decode_plan_misses, 1);
    assert_eq!(stats.decode_plan_hits, 1);
}
