//! Coverage access, runtime enablement, and the event hooks the step
//! relation and fault primitives call.
//!
//! The map itself lives in [`crate::coverage`]; this file is the glue
//! between it and the world, mirroring the metrics glue in `audit.rs`:
//! an off-by-default `Option<Arc<CoverageMap>>` behind an inline `bool`,
//! so unfuzzed worlds pay a single branch per hook and nothing on fork.
//!
//! Like the metrics registry, the coverage map is an *observer* of the
//! execution, not part of the world state: it is excluded from
//! [`Sim::digest`] for the same reason (two forks that converge to the
//! same state through different histories must digest identically even
//! though they covered different edges).

use super::Sim;
use crate::coverage::CoverageMap;
use crate::ids::NodeId;
use crate::node::{Node, Protocol};
use std::sync::Arc;

/// Event-kind tags for [`CoverageMap::record_event`]. Stable small
/// integers, one per step/fault variant, so a schedule that swaps (say) a
/// drop for a duplicate covers different edges.
pub(super) mod kind {
    pub const INVOKE: u64 = 1;
    pub const DELIVER: u64 = 2;
    pub const DROP: u64 = 3;
    pub const DUPLICATE: u64 = 4;
    pub const DELAY: u64 = 5;
    pub const CUT: u64 = 6;
    pub const HEAL_LINK: u64 = 7;
    pub const CRASH: u64 = 8;
    pub const RECOVER: u64 = 9;
    pub const FREEZE: u64 = 10;
    pub const UNFREEZE: u64 = 11;
    pub const HEAL: u64 = 12;
    pub const CORRUPT_STORE: u64 = 13;
    pub const CORRUPT_MSG: u64 = 14;
}

/// Compact, deterministic `NodeId` encoding for coverage keys: servers as
/// their index, clients offset into a disjoint range.
#[inline]
pub(super) fn node_key(node: NodeId) -> u64 {
    match node {
        NodeId::Server(s) => u64::from(s.0),
        NodeId::Client(c) => 0x10_0000 | u64::from(c.0),
    }
}

impl<P: Protocol> Sim<P> {
    /// Whether coverage recording is on.
    pub fn coverage_on(&self) -> bool {
        self.coverage_on
    }

    /// The coverage map recorded so far, if coverage is on.
    pub fn coverage(&self) -> Option<&CoverageMap> {
        self.coverage.as_deref()
    }

    /// The covered slots, sorted ascending — empty when coverage is off.
    pub fn coverage_hits(&self) -> Vec<u32> {
        self.coverage
            .as_deref()
            .map_or_else(Vec::new, CoverageMap::occupied)
    }

    /// Enables (with a fresh, empty map) or disables coverage recording at
    /// any point of an execution.
    pub fn set_coverage(&mut self, on: bool) {
        self.coverage = on.then(|| Arc::new(CoverageMap::new()));
        self.coverage_on = on;
    }

    /// Records an end-of-run signature (the fuzz driver folds
    /// metrics-ledger buckets and the final digest in through this). A
    /// no-op when coverage is off.
    pub fn record_coverage_signature(&mut self, key: u64) {
        if self.coverage_on {
            if let Some(cov) = &mut self.coverage {
                Arc::make_mut(cov).record_signature(key);
            }
        }
    }

    /// The hook every covered event goes through: a single branch when
    /// coverage is off.
    #[inline]
    pub(super) fn cover(&mut self, kind: u64, a: NodeId, b: NodeId, extra: u64) {
        if self.coverage_on {
            if let Some(cov) = &mut self.coverage {
                Arc::make_mut(cov).record_event(kind, node_key(a), node_key(b), extra);
            }
        }
    }

    /// Covers a delivery/invocation edge including the receiving node's
    /// post-step digest bits — the per-step [`Sim::digest`] transition
    /// signal (a step changes at most the receiver, so the receiver's node
    /// digest is exactly the component of the world digest the step moved).
    #[inline]
    pub(super) fn cover_step(&mut self, kind: u64, from: NodeId, to: NodeId) {
        if self.coverage_on {
            let digest = match to {
                NodeId::Server(s) => <P::Server as Node<P>>::digest(&self.servers[s.0 as usize]),
                NodeId::Client(c) => <P::Client as Node<P>>::digest(&self.clients[c.0 as usize]),
            };
            self.cover(kind, from, to, digest & 0xFFFF);
        }
    }
}
