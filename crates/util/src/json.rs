//! A tiny JSON emitter and parser.
//!
//! The figure/table exporters write JSON, and the nemesis counterexample
//! corpus reads it back (a shrunk fault plan is stored as a JSON artifact
//! and replayed in regression tests) — so this is an escape function, a
//! small value builder, and a recursive-descent parser: enough to replace
//! `serde_json` for the workspace's own artifacts without an external
//! dependency.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered via `f64`; non-finite renders as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array of strings.
    pub fn str_array<I, S>(items: I) -> Json
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Json::Arr(items.into_iter().map(Json::str).collect())
    }

    /// Renders compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation, like `serde_json::to_string_pretty`.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document. The full input must be one value (trailing
    /// whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset and message on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a whole `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n == n.trunc() && *n < 1.8e19 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.iter(), |out, v, d| {
                    v.write(out, indent, d);
                })
            }
            Json::Obj(entries) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                entries.iter(),
                |out, (k, v), d| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                },
            ),
        }
    }
}

/// A parse failure: byte offset into the input plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat(b"null") => Ok(Json::Null),
            Some(b't') if self.eat(b"true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat(b"false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            self.pos -= 1; // compensate the +1 below
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn compact_object() {
        let v = Json::Obj(vec![
            ("title".into(), Json::str("t")),
            ("n".into(), Json::Num(3.0)),
            ("rows".into(), Json::str_array(["a", "b"])),
        ]);
        assert_eq!(v.to_compact(), r#"{"title":"t","n":3,"rows":["a","b"]}"#);
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let v = Json::Obj(vec![(
            "rows".into(),
            Json::Arr(vec![Json::str_array(["x"])]),
        )]);
        let expected = "{\n  \"rows\": [\n    [\n      \"x\"\n    ]\n  ]\n}";
        assert_eq!(v.to_pretty(), expected);
    }

    #[test]
    fn empty_containers_stay_flat() {
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_pretty(), "{}");
    }

    #[test]
    fn numbers_render_plainly() {
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
        assert_eq!(Json::Num(-7.0).to_compact(), "-7");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair: U+1F600.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn roundtrips_emitter_output() {
        let v = Json::Obj(vec![
            ("seed".into(), Json::Num(123456789.0)),
            ("name".into(), Json::str("nemesis \"plan\"\n")),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Num(-2.5))]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
            "{a:1}",
            "[1,]nope",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        let e = Json::parse("[1, oops]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "got: {e}");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::str("7").as_u64(), None);
    }
}
