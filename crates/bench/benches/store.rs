//! Benchmarks for the lock-free concurrent register store
//! (`shmem-store`): mixed load/bump-write throughput of the shared
//! backend at 1/2/4 accessing threads against the sequential `LocalAbd`
//! reference, plus the raw per-op cost of a tag-ordered
//! compare-and-bump and an epoch-pinned read.

use shmem_algorithms::backend::{AbdBackend, LocalAbd};
use shmem_algorithms::tag::Tag;
use shmem_store::{RegStore, StoreAbdBackend};
use shmem_util::bench::{black_box, BatchSize, BenchmarkId, Criterion, Throughput};
use shmem_util::{criterion_group, criterion_main, DetRng};
use std::sync::Arc;

const KEYSPACE: u64 = 4096;
const OPS: usize = 20_000;

/// The same 25%-write mixed op as `measured::store_table` uses, against
/// any ABD backend.
fn mixed_op<B: AbdBackend>(backend: &mut B, rng: &mut DetRng, me: u32, seq: u64) {
    let key = rng.gen_range(0..KEYSPACE);
    if rng.gen_bool(0.25) {
        let cur = backend.load(key).map_or(Tag::ZERO, |(t, _)| t);
        backend.store_if_newer(key, cur.successor(me), seq);
    } else {
        black_box(backend.load(key));
    }
}

fn bench_mixed_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/mixed_25w");
    group.sample_size(10);

    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("local_1", |b| {
        b.iter_batched(
            || (LocalAbd::new(), DetRng::seed_from_u64(7)),
            |(mut backend, mut rng)| {
                for seq in 0..OPS {
                    mixed_op(&mut backend, &mut rng, 0, seq as u64);
                }
            },
            BatchSize::LargeInput,
        )
    });

    for threads in [1u32, 2, 4] {
        group.throughput(Throughput::Elements(u64::from(threads) * OPS as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || Arc::new(RegStore::new()),
                    |store| {
                        std::thread::scope(|scope| {
                            for t in 0..threads {
                                let mut backend = StoreAbdBackend::shared(&store);
                                let mut rng = DetRng::seed_from_u64(7 ^ (u64::from(t) << 20));
                                scope.spawn(move || {
                                    for seq in 0..OPS {
                                        mixed_op(&mut backend, &mut rng, t, seq as u64);
                                    }
                                });
                            }
                        });
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_single_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/single_op");

    let store = Arc::new(RegStore::new());
    let mut backend = StoreAbdBackend::shared(&store);
    backend.store_if_newer(1, Tag::new(1, 0), 42);

    group.bench_function("load_hot_key", |b| {
        let backend = StoreAbdBackend::shared(&store);
        b.iter(|| black_box(backend.load(1)))
    });

    group.bench_function("bump_write_hot_key", |b| {
        let mut backend = StoreAbdBackend::shared(&store);
        let mut seq = 2u64;
        b.iter(|| {
            backend.store_if_newer(1, Tag::new(seq, 0), seq);
            seq += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mixed_throughput, bench_single_ops);
criterion_main!(benches);
