//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * valency-probe schedule count (how much the existential sampling
//!   costs as seeds grow);
//! * Reed–Solomon code dimension `k` (per-symbol work vs share size);
//! * CASGC garbage-collection depth (steady-state write cost).

use shmem_algorithms::abd::{Abd, AbdClient, AbdServer};
use shmem_algorithms::harness::CasCluster;
use shmem_algorithms::value::ValueSpec;
use shmem_core::execution::AlphaExecution;
use shmem_core::valency::observed_values;
use shmem_erasure::{Gf256, ReedSolomon};
use shmem_sim::{ClientId, Sim, SimConfig};
use shmem_util::bench::{black_box, BenchmarkId, Criterion};
use shmem_util::{criterion_group, criterion_main};

fn abd_world() -> Sim<Abd> {
    let spec = ValueSpec::from_cardinality(8);
    Sim::new(
        SimConfig::without_gossip(),
        (0..5).map(|_| AbdServer::new(0, spec)).collect(),
        (0..2).map(|c| AbdClient::new(5, c)).collect(),
    )
}

fn bench_ablations(c: &mut Criterion) {
    // Valency probe seeds: each extra seed is one full forked extension.
    let alpha = AlphaExecution::build(abd_world(), ClientId(0), 2, 1, 2).unwrap();
    let mid = alpha.len() / 2;
    let mut group = c.benchmark_group("ablation/valency_seeds");
    group.sample_size(20);
    for seeds in [0u64, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(seeds), &seeds, |b, &s| {
            b.iter(|| {
                black_box(observed_values(
                    alpha.point(mid),
                    ClientId(0),
                    ClientId(1),
                    false,
                    s,
                ))
            })
        });
    }
    group.finish();

    // Code dimension: [21, k] encode of 1 KiB for k across the range.
    let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("ablation/rs_dimension");
    for k in [1usize, 6, 11, 16, 21] {
        let code = ReedSolomon::<Gf256>::new(21, k).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &code, |b, code| {
            b.iter(|| black_box(code.encode_bytes(black_box(&payload))))
        });
    }
    group.finish();

    // CASGC depth: 8 sequential writes at different GC depths.
    let mut group = c.benchmark_group("ablation/casgc_depth");
    group.sample_size(20);
    for delta in [0u32, 2, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &d| {
            b.iter(|| {
                let mut cl = CasCluster::with_gc(5, 1, d, 1, ValueSpec::from_bits(64.0));
                for v in 1..=8 {
                    cl.write(0, v).unwrap();
                }
                black_box(cl.storage().peak_total_bits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
