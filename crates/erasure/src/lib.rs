//! Finite-field arithmetic and Reed–Solomon MDS erasure codes.
//!
//! This crate is the coding-theory substrate of the reproduction: the
//! paper's upper-bound comparison algorithms (CAS, CASGC, and every
//! erasure-coding based emulation in its reference list) store *codeword
//! symbols* rather than full values, and the baseline Theorem B.1 bound is
//! exactly the classical Singleton bound these codes meet with equality.
//!
//! * [`field`] — the [`field::Field`] trait and its laws.
//! * [`gf256`] — GF(2⁸) with compile-time log/exp tables.
//! * [`gf2p16`] — GF(2¹⁶) for systems with more than 255 servers.
//! * [`matrix`] — dense matrices over any field, with Gauss–Jordan
//!   inversion.
//! * [`rs`] — `[n, k]` Reed–Solomon codes: encode, decode from any `k` of
//!   `n` symbols, byte-stream striping (the symbol-at-a-time reference).
//! * [`kernel`] — per-coefficient nibble multiply tables and branch-free
//!   slab routines shared by both fields.
//! * [`plan`] — precomputed encode/decode plans over those kernels, with
//!   deterministic parallel striping for large payloads.
//! * [`codec`] — the operational [`codec::Codec`] handle: encode plan +
//!   decode-plan LRU + `(n, k)`-memoized registry, byte-identical to the
//!   reference path but table-driven throughout.
//!
//! # Example: store a value across 5 servers, survive any 2 erasures
//!
//! ```
//! use shmem_erasure::gf256::Gf256;
//! use shmem_erasure::rs::ReedSolomon;
//!
//! let code = ReedSolomon::<Gf256>::new(5, 3)?;
//! let shares = code.encode_bytes(b"atomic register value!");
//! // Any 3 of the 5 shares reconstruct the value:
//! let picked = [(0, shares[0].clone()), (3, shares[3].clone()), (4, shares[4].clone())];
//! let restored = code.decode_bytes(&picked, 22)?;
//! assert_eq!(restored, b"atomic register value!");
//! # Ok::<(), shmem_erasure::rs::CodeError>(())
//! ```

pub mod codec;
pub mod field;
pub mod gf256;
pub mod gf2p16;
pub mod kernel;
pub mod matrix;
pub mod plan;
pub mod rs;

pub use codec::{Codec, CodecStats};
pub use field::Field;
pub use gf256::Gf256;
pub use gf2p16::Gf2p16;
pub use kernel::SlabKernel;
pub use matrix::Matrix;
pub use plan::{DecodePlan, EncodePlan};
pub use rs::{CodeError, ReedSolomon};
