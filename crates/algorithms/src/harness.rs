//! Cluster harnesses: build worlds, drive workloads, extract histories.

use crate::abd::{Abd, AbdClient, AbdServer};
use crate::abd_gossip::{AbdGossip, GossipServer};
use crate::cas::{Cas, CasClient, CasConfig, CasServer};
use crate::hashed::{HashedCas, HashedClient, HashedServer};
use crate::lossy::{Lossy, LossyServer};
use crate::nowriteback::{NoWriteBack, NwbClient};
use crate::reg::{RegInv, RegResp};
use crate::value::{Value, ValueSpec};
use shmem_sim::{ClientId, Protocol, RunError, ServerId, Sim, SimConfig, StorageSnapshot};
use shmem_spec::history::{History, OpKind};
use shmem_util::DetRng;

/// A running register cluster of any protocol with the uniform
/// [`RegInv`]/[`RegResp`] interface.
///
/// # Examples
///
/// ```
/// use shmem_algorithms::harness::AbdCluster;
///
/// let mut c = AbdCluster::new(5, 2, 2, shmem_algorithms::ValueSpec::from_bits(64.0));
/// c.write(0, 42)?;
/// assert_eq!(c.read(1)?, 42);
/// assert!(shmem_spec::check_atomic(&c.history()).is_ok());
/// # Ok::<(), shmem_sim::RunError>(())
/// ```
pub struct Cluster<P: Protocol<Inv = RegInv, Resp = RegResp>> {
    /// The underlying simulated world, exposed for adversary control.
    pub sim: Sim<P>,
    initial: Value,
    f: u32,
}

/// ABD cluster alias.
pub type AbdCluster = Cluster<Abd>;
/// CAS/CASGC cluster alias.
pub type CasCluster = Cluster<Cas>;
/// Lossy-strawman cluster alias.
pub type LossyCluster = Cluster<Lossy>;
/// Gossiping-ABD cluster alias.
pub type GossipCluster = Cluster<AbdGossip>;
/// Write-back-less (broken) ABD cluster alias.
pub type NwbCluster = Cluster<NoWriteBack>;
/// Hash-commitment CAS cluster alias.
pub type HashedCluster = Cluster<HashedCas>;

impl<P: Protocol<Inv = RegInv, Resp = RegResp>> Cluster<P> {
    /// The failure budget the cluster was built for.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// The register's initial value.
    pub fn initial(&self) -> Value {
        self.initial
    }

    /// Turns on full metering ([`shmem_sim::MetricsLevel::Full`]) and
    /// returns the cluster — chainable after any constructor:
    /// `AbdCluster::new(5, 2, 2, spec).metered()`.
    #[must_use]
    pub fn metered(mut self) -> Self {
        self.sim.set_metrics(shmem_sim::MetricsLevel::Full);
        self
    }

    /// The cluster's metrics registry (empty unless [`Cluster::metered`]
    /// or `sim.set_metrics` enabled metering).
    pub fn metrics(&self) -> &shmem_sim::MetricsRegistry {
        self.sim.metrics()
    }

    /// Deterministic JSON export of the metrics registry plus live gauges.
    pub fn metrics_json(&self) -> shmem_util::json::Json {
        self.sim.metrics_json()
    }

    /// Completes a full write at `client`, running the world fairly.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (liveness failure, busy client, …).
    pub fn write(&mut self, client: u32, value: Value) -> Result<(), RunError> {
        self.sim.invoke(ClientId(client), RegInv::Write(value))?;
        self.sim.run_until_op_completes(ClientId(client))?;
        Ok(())
    }

    /// Completes a full read at `client`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; a protocol-level read failure (e.g.
    /// codeword symbols that did not decode) surfaces as
    /// [`RunError::OperationFailed`].
    ///
    /// # Panics
    ///
    /// Panics if the protocol answers a read with a write-ack (protocol
    /// bug).
    pub fn read(&mut self, client: u32) -> Result<Value, RunError> {
        self.sim.invoke(ClientId(client), RegInv::Read)?;
        match self.sim.run_until_op_completes(ClientId(client))? {
            RegResp::ReadValue(v) => Ok(v),
            RegResp::ReadFailed(e) => Err(RunError::OperationFailed {
                client: ClientId(client),
                detail: e.to_string(),
            }),
            RegResp::WriteAck => panic!("read must not be answered with a write-ack"),
        }
    }

    /// Starts an operation without running it — for concurrent workloads.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn begin(&mut self, client: u32, inv: RegInv) -> Result<(), RunError> {
        self.sim.invoke(ClientId(client), inv)
    }

    /// Runs the world under a seeded random schedule until quiescence —
    /// completes all open operations under an arbitrary interleaving.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_seeded(&mut self, seed: u64) -> Result<u64, RunError> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut steps = 0u64;
        let limit = self.sim.config().step_limit;
        while self
            .sim
            .step_with(|opts| rng.gen_range(0..opts.len()))
            .is_some()
        {
            steps += 1;
            if steps > limit {
                return Err(RunError::StepLimit { steps: limit });
            }
        }
        Ok(steps)
    }

    /// Runs the world under a seeded random schedule that also reorders
    /// messages within channels (requires the cluster to have been built
    /// with [`shmem_sim::ChannelOrder::Any`]) until quiescence.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_seeded_reorder(&mut self, seed: u64) -> Result<u64, RunError> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut steps = 0u64;
        let limit = self.sim.config().step_limit;
        while self
            .sim
            .step_with_reorder(|opts| {
                let oi = rng.gen_range(0..opts.len());
                let mi = rng.gen_range(0..opts[oi].1);
                (oi, mi)
            })
            .is_some()
        {
            steps += 1;
            if steps > limit {
                return Err(RunError::StepLimit { steps: limit });
            }
        }
        Ok(steps)
    }

    /// Runs the world fairly until quiescence.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] if the protocol livelocks.
    pub fn run_fair(&mut self) -> Result<u64, RunError> {
        self.sim.run_to_quiescence()
    }

    /// The execution's history as a [`shmem_spec`] register history.
    pub fn history(&self) -> History<Value> {
        let mut h = History::new(self.initial);
        for op in self.sim.ops() {
            let kind = match op.invocation {
                RegInv::Write(v) => OpKind::Write(v),
                RegInv::Read => OpKind::Read,
            };
            let id = h.begin(op.client.0, kind, op.invoked_at);
            if let Some(t) = op.responded_at {
                let returned = op.response.and_then(RegResp::read_value);
                h.complete(id, t, returned);
            }
        }
        h
    }

    /// Measured storage peaks.
    pub fn storage(&self) -> StorageSnapshot {
        self.sim.storage()
    }
}

impl AbdCluster {
    /// An ABD cluster: `n` servers tolerating `f` failures (must be a
    /// minority), `clients` clients, values from a `spec`-sized domain.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> AbdCluster {
        Self::with_initial(n, f, clients, spec, 0)
    }

    /// Same, with arbitrary-order (non-FIFO) channels — the paper's
    /// weakest channel model.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn reordering(n: u32, f: u32, clients: u32, spec: ValueSpec) -> AbdCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip().reordering(),
                (0..n).map(|_| AbdServer::new(0, spec)).collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }

    /// Same, with an explicit initial register value.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn with_initial(
        n: u32,
        f: u32,
        clients: u32,
        spec: ValueSpec,
        initial: Value,
    ) -> AbdCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n).map(|_| AbdServer::new(initial, spec)).collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial,
            f,
        }
    }
}

impl CasCluster {
    /// A CAS/CASGC cluster from a validated [`CasConfig`].
    pub fn from_config(cfg: CasConfig, clients: u32) -> CasCluster {
        Self::from_config_with_initial(cfg, clients, 0)
    }

    /// Same, with an explicit initial register value.
    pub fn from_config_with_initial(cfg: CasConfig, clients: u32, initial: Value) -> CasCluster {
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..cfg.n)
                    .map(|i| CasServer::new(cfg, ServerId(i), initial))
                    .collect(),
                (0..clients).map(|c| CasClient::new(cfg, c)).collect(),
            ),
            initial,
            f: cfg.f,
        }
    }

    /// Plain CAS with the native `k = N − 2f` code.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> CasCluster {
        Self::from_config(CasConfig::native(n, f, spec), clients)
    }

    /// CASGC with garbage-collection depth `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn with_gc(n: u32, f: u32, delta: u32, clients: u32, spec: ValueSpec) -> CasCluster {
        Self::from_config(CasConfig::native(n, f, spec).with_gc(delta), clients)
    }

    /// Plain CAS with arbitrary-order (non-FIFO) channels.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn reordering(n: u32, f: u32, clients: u32, spec: ValueSpec) -> CasCluster {
        let cfg = CasConfig::native(n, f, spec);
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip().reordering(),
                (0..cfg.n)
                    .map(|i| CasServer::new(cfg, ServerId(i), 0))
                    .collect(),
                (0..clients).map(|c| CasClient::new(cfg, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }
}

impl GossipCluster {
    /// A gossiping-ABD cluster (server-to-server channels enabled).
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> GossipCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::with_gossip(),
                (0..n).map(|i| GossipServer::new(i, n, 0, spec)).collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }
}

impl LossyCluster {
    /// The broken cheap cluster: servers keep only `kept_bits` per value.
    pub fn new(n: u32, f: u32, clients: u32, kept_bits: u32, spec: ValueSpec) -> LossyCluster {
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n)
                    .map(|_| LossyServer::new(0, kept_bits, spec))
                    .collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }
}

impl LossyCluster {
    /// The *subtly* broken cheap cluster: only the first `rotten` servers
    /// truncate to `kept_bits`; the rest keep (effectively) everything.
    ///
    /// Unlike [`LossyCluster::new`], whose corruption surfaces on almost
    /// any completed read, a single bit-rotted replica only corrupts a
    /// read when faults carve a quorum in which the rotted server holds
    /// the highest tag alone — a rare, fault-timing-dependent event, which
    /// makes this the sparse falsification target for guided search.
    pub fn with_bit_rot(
        n: u32,
        f: u32,
        clients: u32,
        rotten: u32,
        kept_bits: u32,
        spec: ValueSpec,
    ) -> LossyCluster {
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n)
                    // 63 kept bits is lossless for every value the nemesis
                    // driver writes; the server type stays uniform.
                    .map(|i| LossyServer::new(0, if i < rotten { kept_bits } else { 63 }, spec))
                    .collect(),
                (0..clients).map(|c| AbdClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }
}

impl NwbCluster {
    /// The broken write-back-less ABD cluster — ABD servers, clients whose
    /// reads return straight after the query phase. Regular but not
    /// atomic; the nemesis explorer's positive control.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> NwbCluster {
        assert!(2 * f < n, "ABD requires a failure minority (2f < N)");
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..n).map(|_| AbdServer::new(0, spec)).collect(),
                (0..clients).map(|c| NwbClient::new(n, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }
}

impl HashedCluster {
    /// A hash-commitment CAS cluster with the native `k = N − 2f` code.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    pub fn new(n: u32, f: u32, clients: u32, spec: ValueSpec) -> HashedCluster {
        let cfg = CasConfig::native(n, f, spec);
        Cluster {
            sim: Sim::new(
                SimConfig::without_gossip(),
                (0..cfg.n)
                    .map(|i| HashedServer::new(cfg, ServerId(i), 0))
                    .collect(),
                (0..clients).map(|c| HashedClient::new(cfg, c)).collect(),
            ),
            initial: 0,
            f,
        }
    }
}

/// A reproducible concurrent workload: `writers` clients each performing
/// `rounds` writes of unique values, interleaved with `readers` clients
/// reading, under a seeded random schedule.
///
/// Returns the completed steps.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_concurrent_workload<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &mut Cluster<P>,
    writers: u32,
    readers: u32,
    rounds: u32,
    seed: u64,
) -> Result<(), RunError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut next_value = 1u64;
    for _ in 0..rounds {
        for w in 0..writers {
            cluster.begin(w, RegInv::Write(next_value))?;
            next_value += 1;
        }
        for r in 0..readers {
            cluster.begin(writers + r, RegInv::Read)?;
        }
        // Interleave: random schedule until all ops of the round complete.
        let mut budget = cluster.sim.config().step_limit;
        loop {
            let open = (0..writers + readers).any(|c| cluster.sim.has_open_op(ClientId(c)));
            if !open {
                break;
            }
            if cluster
                .sim
                .step_with(|opts| rng.gen_range(0..opts.len()))
                .is_none()
            {
                return Err(RunError::Stuck {
                    client: ClientId(0),
                });
            }
            budget -= 1;
            if budget == 0 {
                return Err(RunError::StepLimit {
                    steps: cluster.sim.config().step_limit,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_spec::{check_atomic, check_regular};

    #[test]
    fn abd_sequential_history_is_atomic() {
        let mut c = AbdCluster::new(5, 2, 3, ValueSpec::from_bits(64.0));
        c.write(0, 1).unwrap();
        assert_eq!(c.read(2), Ok(1));
        c.write(1, 2).unwrap();
        assert_eq!(c.read(2), Ok(2));
        let h = c.history();
        assert!(h.is_well_formed());
        assert!(check_atomic(&h).is_ok());
        assert!(check_regular(&h).is_ok());
    }

    #[test]
    fn abd_concurrent_histories_atomic_across_seeds() {
        for seed in 0..8 {
            let mut c = AbdCluster::new(5, 2, 4, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, 2, 2, 2, seed).unwrap();
            let h = c.history();
            assert!(
                check_atomic(&h).is_ok(),
                "seed {seed} produced non-atomic history: {h:?}"
            );
        }
    }

    #[test]
    fn cas_concurrent_histories_atomic_across_seeds() {
        for seed in 0..8 {
            let mut c = CasCluster::new(5, 1, 4, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, 2, 2, 2, seed).unwrap();
            let h = c.history();
            assert!(
                check_atomic(&h).is_ok(),
                "seed {seed} produced non-atomic history: {h:?}"
            );
        }
    }

    #[test]
    fn casgc_concurrent_histories_atomic_across_seeds() {
        for seed in 0..8 {
            // δ = 4 comfortably covers 2 concurrent writers.
            let mut c = CasCluster::with_gc(5, 1, 4, 4, ValueSpec::from_bits(64.0));
            run_concurrent_workload(&mut c, 2, 2, 2, seed).unwrap();
            assert!(check_atomic(&c.history()).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn lossy_cluster_violates_regularity() {
        let mut c = LossyCluster::new(3, 1, 2, 2, ValueSpec::from_bits(8.0));
        c.write(0, 0xAB).unwrap();
        let got = c.read(1).unwrap();
        assert_ne!(got, 0xAB); // truncated
        let h = c.history();
        assert!(check_regular(&h).is_err());
        assert!(check_atomic(&h).is_err());
    }

    #[test]
    fn abd_storage_flat_in_concurrency_cas_grows() {
        let spec = ValueSpec::from_bits(64.0);
        // Three concurrent writers.
        let mut abd = AbdCluster::new(5, 2, 3, spec);
        run_concurrent_workload(&mut abd, 3, 0, 2, 7).unwrap();
        let abd_total = abd.storage().peak_total_bits;
        assert_eq!(abd_total, 5.0 * 64.0); // one value per server, always

        let mut cas = CasCluster::new(5, 1, 3, spec);
        run_concurrent_workload(&mut cas, 3, 0, 2, 7).unwrap();
        let cas_total = cas.storage().peak_total_bits;
        // k = 3; at least 2 versions coexist somewhere along the run.
        assert!(cas_total > 5.0 * 64.0 / 3.0, "cas_total={cas_total}");
    }

    #[test]
    fn history_records_incomplete_ops() {
        let mut c = AbdCluster::new(3, 1, 1, ValueSpec::from_bits(64.0));
        c.begin(0, RegInv::Write(9)).unwrap();
        // Never run: the op stays open.
        let h = c.history();
        assert_eq!(h.len(), 1);
        assert!(!h.ops()[0].is_complete());
    }
}
