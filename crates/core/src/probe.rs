//! The memoized, parallel valency-probe engine.
//!
//! Every lower-bound construction in this crate bottoms out in the same
//! primitive: *fork the world at a point, run a read under an adversarial
//! schedule, observe what it returns*. Two facts about that primitive do
//! all the work here:
//!
//! 1. **Probes are pure.** The simulator is deterministic, a probe runs on
//!    a fork, and the schedule is fixed by the configuration — so the
//!    verdict is a function of (point state, probe configuration) alone.
//! 2. **The constructions re-probe.** Critical-pair scans revisit points,
//!    the counting enumerations replay overlapping executions, and the
//!    profile/figure pipelines probe the same `α` several times over.
//!
//! [`ProbeEngine`] exploits both:
//!
//! * **Memoization** — verdicts are cached under `(point digest, config
//!   digest)`. [`Snapshot`](shmem_sim::Snapshot) memoizes the point digest
//!   (the expensive full-world walk), so repeated probes of one point pay
//!   for the walk once.
//! * **Deterministic fan-out** — [`ProbeEngine::map`] runs independent
//!   jobs on `std::thread::scope` workers that pull indices from a shared
//!   atomic counter and deposit results into index-addressed slots. The
//!   merged output is in job order regardless of completion order, and a
//!   1-worker engine runs the *same* code path inline — so parallel and
//!   sequential runs are bit-identical by construction (and asserted by
//!   the `engine_parity` integration tests).
//!
//! Engines are cheap handles: [`ProbeEngine::view`] produces a handle with
//! a different worker count over the *same* cache, which is how outer
//! enumerations (over value pairs or vectors) parallelize while their
//! inner critical-pair searches run inline on the worker without nested
//! thread explosions.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use shmem_algorithms::value::Value;

/// The delivery schedule of one probe extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Deterministic fair round-robin over the enabled steps.
    Fair,
    /// Seeded pseudo-random delivery order ([`shmem_util::DetRng`]).
    Seeded(u64),
}

/// What one probe extension's read returned (`None` = the read got stuck —
/// a liveness violation of the probed algorithm under that schedule).
pub type ProbeVerdict = Option<Value>;

/// Cumulative counters of one engine's cache behaviour.
///
/// `probes` is deterministic — every request is counted. `hits` can be
/// lower under parallel execution than sequentially: two workers racing
/// on the same fresh key may both miss before either inserts (the
/// verdicts still agree, so the duplicate compute is harmless).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Total memoized-probe requests.
    pub probes: u64,
    /// Requests answered from the verdict cache.
    pub hits: u64,
}

impl ProbeStats {
    /// Requests that had to run a fresh probe.
    pub fn misses(&self) -> u64 {
        self.probes - self.hits
    }

    /// Fraction of requests answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

#[derive(Debug, Default)]
struct EngineShared {
    cache: Mutex<BTreeMap<(u64, u64), ProbeVerdict>>,
    probes: AtomicU64,
    hits: AtomicU64,
}

/// A memoizing, optionally parallel executor for valency probes.
///
/// See the [module docs](self) for the design. All views created with
/// [`ProbeEngine::view`] share one verdict cache and one set of counters.
#[derive(Debug)]
pub struct ProbeEngine {
    shared: Arc<EngineShared>,
    workers: NonZeroUsize,
}

impl ProbeEngine {
    /// An engine that runs every probe inline on the calling thread.
    pub fn sequential() -> ProbeEngine {
        ProbeEngine::with_workers(1)
    }

    /// An engine with `workers` fan-out threads (clamped to at least 1).
    pub fn with_workers(workers: usize) -> ProbeEngine {
        ProbeEngine {
            shared: Arc::new(EngineShared::default()),
            workers: NonZeroUsize::new(workers.max(1)).expect("clamped to >= 1"),
        }
    }

    /// An engine sized to the machine (capped at 8 workers; probe jobs are
    /// short enough that more rarely pays).
    pub fn parallel() -> ProbeEngine {
        let n = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        ProbeEngine::with_workers(n.min(8))
    }

    /// The fan-out width.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// A handle over the *same* cache and counters with a different
    /// fan-out width.
    pub fn view(&self, workers: usize) -> ProbeEngine {
        ProbeEngine {
            shared: Arc::clone(&self.shared),
            workers: NonZeroUsize::new(workers.max(1)).expect("clamped to >= 1"),
        }
    }

    /// A 1-worker handle over the same cache — what outer fan-outs hand to
    /// the nested searches running on their workers.
    pub fn sequential_view(&self) -> ProbeEngine {
        self.view(1)
    }

    /// Cache counters so far.
    pub fn stats(&self) -> ProbeStats {
        ProbeStats {
            probes: self.shared.probes.load(Ordering::Relaxed),
            hits: self.shared.hits.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct `(point, config)` verdicts currently cached.
    pub fn cached_verdicts(&self) -> usize {
        self.shared.cache.lock().expect("cache lock poisoned").len()
    }

    /// A memoized probe: answers from the cache when `(point, config)` was
    /// seen before, otherwise runs `run` and records its verdict.
    ///
    /// `point` must be the [`Sim::digest`](shmem_sim::Sim::digest) of the
    /// probed point and `config` a digest of *everything else* the verdict
    /// depends on (reader, schedule, restrictions, a kind tag). Two
    /// concurrent misses on the same key may both run the probe; purity
    /// makes the double write harmless.
    pub fn probe(
        &self,
        point: u64,
        config: u64,
        run: impl FnOnce() -> ProbeVerdict,
    ) -> ProbeVerdict {
        self.shared.probes.fetch_add(1, Ordering::Relaxed);
        if let Some(&verdict) = self
            .shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get(&(point, config))
        {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
            return verdict;
        }
        let verdict = run();
        self.shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .insert((point, config), verdict);
        verdict
    }

    /// Runs `job(0) … job(jobs − 1)` and returns their results *in job
    /// order*.
    ///
    /// With 1 worker the jobs run inline, in order, on the calling thread.
    /// With more, scoped worker threads pull indices from a shared counter
    /// and results are merged into their index slot, so the output (and
    /// therefore every verdict derived from it) is independent of thread
    /// scheduling. A panicking job propagates its panic to the caller.
    pub fn map<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers.get().min(jobs);
        if workers <= 1 {
            return (0..jobs).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs {
                                break;
                            }
                            local.push((i, job(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for (i, value) in parts.into_iter().flatten() {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job index was claimed exactly once"))
            .collect()
    }
}

impl Default for ProbeEngine {
    fn default() -> ProbeEngine {
        ProbeEngine::parallel()
    }
}

impl Clone for ProbeEngine {
    /// Clones share the cache (an engine is a handle, not the store).
    fn clone(&self) -> ProbeEngine {
        ProbeEngine {
            shared: Arc::clone(&self.shared),
            workers: self.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_job_order() {
        for workers in [1, 2, 4, 7] {
            let engine = ProbeEngine::with_workers(workers);
            let out = engine.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_job_sets() {
        let engine = ProbeEngine::with_workers(4);
        assert_eq!(engine.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(engine.map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn parallel_map_equals_sequential_map() {
        let seq = ProbeEngine::sequential();
        let par = ProbeEngine::with_workers(4);
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(seq.map(257, f), par.map(257, f));
    }

    #[test]
    fn probe_caches_by_point_and_config() {
        let engine = ProbeEngine::sequential();
        let runs = AtomicU32::new(0);
        let run = || {
            runs.fetch_add(1, Ordering::Relaxed);
            Some(42)
        };
        assert_eq!(engine.probe(1, 1, run), Some(42));
        assert_eq!(engine.probe(1, 1, run), Some(42)); // hit
        assert_eq!(engine.probe(1, 2, run), Some(42)); // different config
        assert_eq!(engine.probe(2, 1, run), Some(42)); // different point
        assert_eq!(runs.load(Ordering::Relaxed), 3);
        let stats = engine.stats();
        assert_eq!(stats.probes, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses(), 3);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(engine.cached_verdicts(), 3);
    }

    #[test]
    fn views_share_the_cache() {
        let engine = ProbeEngine::with_workers(4);
        assert_eq!(engine.probe(9, 9, || Some(5)), Some(5));
        let seq = engine.sequential_view();
        assert_eq!(seq.workers(), 1);
        // The view answers from the parent's cache without running.
        assert_eq!(seq.probe(9, 9, || unreachable!()), Some(5));
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn stuck_verdicts_are_cached_too() {
        let engine = ProbeEngine::sequential();
        assert_eq!(engine.probe(3, 3, || None), None);
        assert_eq!(engine.probe(3, 3, || unreachable!()), None);
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(ProbeEngine::with_workers(0).workers(), 1);
        assert!(ProbeEngine::parallel().workers() >= 1);
        let engine = ProbeEngine::sequential();
        assert_eq!(engine.view(0).workers(), 1);
    }
}
