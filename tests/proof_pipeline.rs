//! Integration of the proof machinery across crates: the full
//! Theorem B.1 / 4.1 / 6.5 pipelines against ABD and CAS, and the
//! refutation of the lossy cheat.

use shmem_emulation::algorithms::abd::{self, Abd, AbdClient, AbdServer};
use shmem_emulation::algorithms::cas::{self, Cas, CasClient, CasConfig, CasServer};
use shmem_emulation::algorithms::lossy::{Lossy, LossyServer};
use shmem_emulation::algorithms::value::ValueSpec;
use shmem_emulation::core::counting::{pairwise_counting, singleton_counting};
use shmem_emulation::core::critical::find_critical_pair;
use shmem_emulation::core::execution::AlphaExecution;
use shmem_emulation::core::multiwrite::{
    build_alpha0, staged_search, vector_counting, MultiWriteSetup,
};
use shmem_emulation::core::valency::{observed_values, probe_read, ReadOutcome};
use shmem_emulation::sim::{ClientId, ServerId, Sim, SimConfig};

fn abd_world(n: u32, card: u64) -> Sim<Abd> {
    let spec = ValueSpec::from_cardinality(card);
    Sim::new(
        SimConfig::without_gossip(),
        (0..n).map(|_| AbdServer::new(0, spec)).collect(),
        (0..3).map(|c| AbdClient::new(n, c)).collect(),
    )
}

fn cas_world(n: u32, f: u32, card: u64) -> Sim<Cas> {
    let cfg = CasConfig::native(n, f, ValueSpec::from_cardinality(card));
    Sim::new(
        SimConfig::without_gossip(),
        (0..n)
            .map(|i| CasServer::new(cfg, ServerId(i), 0))
            .collect(),
        (0..3).map(|c| CasClient::new(cfg, c)).collect(),
    )
}

#[test]
fn full_theorem_41_pipeline_on_abd_7_servers() {
    // A bigger geometry than the unit tests: N=7, f=3.
    let alpha = AlphaExecution::build(abd_world(7, 8), ClientId(0), 3, 2, 5).expect("alpha builds");
    assert_eq!(
        probe_read(alpha.point(0), ClientId(0), ClientId(1), false),
        ReadOutcome::Returns(2)
    );
    let pair = find_critical_pair(&alpha, ClientId(1), false, 4).expect("critical pair");
    assert_eq!(pair.states_q1.len(), 4); // 7 - 3 survivors

    let report = pairwise_counting(
        || abd_world(7, 8),
        ClientId(0),
        ClientId(1),
        3,
        &[1, 2, 3],
        false,
        2,
    );
    assert!(report.injective, "{report:?}");
    assert!(report.inequality_holds());
}

#[test]
fn full_theorem_b1_pipeline_on_cas_7_servers() {
    let report = singleton_counting(|| cas_world(7, 2, 8), ClientId(0), 2, &[1, 2, 3, 4, 5]);
    assert!(report.injective, "{report:?}");
    assert!(report.inequality_holds());
    assert_eq!(report.distinct_states.len(), 5); // 7 - 2 survivors
}

#[test]
fn theorem_65_pipeline_abd_nu3() {
    // Three concurrent writers (nu = 3 <= f + 1 with f = 2 requires
    // failing f+1-nu = 0 servers).
    let setup = MultiWriteSetup::<Abd> {
        nu: 3,
        f: 2,
        is_value_dependent: abd::is_value_dependent_upstream,
    };
    let make = || {
        let spec = ValueSpec::from_cardinality(8);
        Sim::<Abd>::new(
            SimConfig::without_gossip(),
            (0..5).map(|_| AbdServer::new(0, spec)).collect(),
            (0..4).map(|c| AbdClient::new(5, c)).collect(),
        )
    };
    let profile = staged_search(make, &setup, &[1, 2, 3], 8).expect("profile");
    assert_eq!(profile.a.len(), 3);
    assert!(profile.a[0] >= 1);
    assert!(profile.a.windows(2).all(|w| w[0] < w[1]), "{:?}", profile.a);
    // All three writers chosen exactly once.
    let mut s = profile.sigma.clone();
    s.sort_unstable();
    assert_eq!(s, vec![0, 1, 2]);
}

#[test]
fn alpha0_frontier_is_quiescent_except_value_messages() {
    let setup = MultiWriteSetup::<Cas> {
        nu: 2,
        f: 1,
        is_value_dependent: cas::is_value_dependent_upstream,
    };
    let sim = build_alpha0(cas_world(5, 1, 8), &setup, &[3, 6]).expect("alpha0");
    // The only remaining deliverable messages are writers' PreWrites.
    for (from, to) in sim.step_options() {
        let msg = sim.peek_head(from, to).expect("option has a head");
        assert!(
            cas::is_value_dependent_upstream(msg),
            "unexpected deliverable {from}->{to}: {msg:?}"
        );
    }
}

#[test]
fn vector_counting_cross_algorithms_domain4() {
    let abd_setup = MultiWriteSetup::<Abd> {
        nu: 2,
        f: 2,
        is_value_dependent: abd::is_value_dependent_upstream,
    };
    let r = vector_counting(|| abd_world(5, 8), &abd_setup, &[1, 2, 3, 4], 6);
    assert_eq!(r.vectors, 12);
    assert!(r.injective, "{:?} {:?}", r.collisions, r.failures);
}

#[test]
fn lossy_pipeline_refuted_at_every_level() {
    let lossy = || {
        let spec = ValueSpec::from_cardinality(16);
        Sim::<Lossy>::new(
            SimConfig::without_gossip(),
            (0..5).map(|_| LossyServer::new(0, 1, spec)).collect(),
            (0..2).map(|c| AbdClient::new(5, c)).collect(),
        )
    };
    // Level 1: a valency probe after write(2) returns a truncated value.
    let alpha = AlphaExecution::build(lossy(), ClientId(0), 2, 2, 3).expect("builds");
    let vals = observed_values(alpha.point(0), ClientId(0), ClientId(1), false, 4);
    assert!(!vals.contains(&2), "truncation must lose the written value");
    // Level 2: the counting map collides, and over 16 values even the
    // marginal inequality fails (3 surviving 1-bit servers < 4 bits).
    let domain: Vec<u64> = (0..16).collect();
    let report = singleton_counting(lossy, ClientId(0), 2, &domain);
    assert!(!report.injective);
    assert!(!report.inequality_holds());
}

#[test]
fn gossip_flag_variant_of_valency_probe_is_equivalent_without_gossip() {
    // With no server-to-server channels, Definition 5.3's flush prelude is
    // a no-op and both probe variants agree everywhere.
    let alpha = AlphaExecution::build(abd_world(5, 8), ClientId(0), 2, 1, 2).expect("builds");
    for i in 0..alpha.len() {
        let plain = probe_read(alpha.point(i), ClientId(0), ClientId(1), false);
        let flushed = probe_read(alpha.point(i), ClientId(0), ClientId(1), true);
        assert_eq!(plain, flushed, "point {i}");
    }
}

#[test]
fn vector_counting_nu3_abd() {
    // The Section 6.4.4 argument at nu = 3: all 6 ordered triples from a
    // 3-value domain, each requiring a 3-stage Lemma 6.10 search.
    let setup = MultiWriteSetup::<Abd> {
        nu: 3,
        f: 2,
        is_value_dependent: abd::is_value_dependent_upstream,
    };
    let make = || {
        let spec = shmem_emulation::algorithms::value::ValueSpec::from_cardinality(8);
        Sim::<Abd>::new(
            SimConfig::without_gossip(),
            (0..5)
                .map(|_| shmem_emulation::algorithms::abd::AbdServer::new(0, spec))
                .collect(),
            (0..4)
                .map(|c| shmem_emulation::algorithms::abd::AbdClient::new(5, c))
                .collect(),
        )
    };
    let report = shmem_emulation::core::multiwrite::vector_counting(make, &setup, &[1, 2, 3], 16);
    assert_eq!(report.vectors, 6);
    assert!(
        report.injective,
        "collisions={:?} failures={:?}",
        report.collisions, report.failures
    );
}
