//! Wide-cluster coding: the Singleton-style baseline bound (Theorem B.1)
//! at scales GF(2⁸) cannot reach.
//!
//! The power of erasure coding in the paper's Section 2.1: with `f` fixed
//! and `N` free, coding's per-version cost `N/(N−f)` approaches 1 while
//! replication is stuck at `f+1`. This example stores a value across
//! `N = 300` simulated "servers" (pure coding layer, no message passing)
//! with an `[300, 250]` Reed–Solomon code over GF(2¹⁶), survives 50
//! erasures, and compares the measured share sizes with the bounds.
//!
//! ```text
//! cargo run --example wide_cluster
//! ```

use shmem_emulation::bounds::{lower, upper, SystemParams};
use shmem_emulation::erasure::{Gf2p16, ReedSolomon};

fn main() {
    let n = 300usize;
    let f = 50usize;
    let k = n - f;

    let code = ReedSolomon::<Gf2p16>::new(n, k).expect("GF(2^16) supports n = 300");
    let value: Vec<u8> = (0..10_000u64)
        .map(|i| (i.wrapping_mul(2654435761) % 251) as u8)
        .collect();
    println!(
        "encoding a {}-byte value over [{n}, {k}] Reed-Solomon (GF(2^16))...",
        value.len()
    );
    let shares = code.encode_bytes(&value);
    let share_bytes = shares[0].len();
    println!(
        "per-server share: {share_bytes} bytes ({:.4}x of the value)",
        share_bytes as f64 / value.len() as f64
    );

    // Erase f = 50 shares (every 6th server crashes); decode from the rest.
    let picked: Vec<(usize, Vec<u8>)> = (0..n)
        .filter(|i| i % 6 != 0)
        .take(k)
        .map(|i| (i, shares[i].clone()))
        .collect();
    let restored = code.decode_bytes(&picked, value.len()).expect("decodes");
    assert_eq!(restored, value);
    println!("decoded exactly after erasing every 6th server ({f} erasures)");

    // Compare with the bounds at this geometry.
    let p = SystemParams::new(n as u32, f as u32).expect("valid");
    let total = n as f64 * share_bytes as f64 / value.len() as f64;
    println!("\nnormalized total storage for one version:");
    println!("  measured (coded):      {total:.4}");
    println!(
        "  Theorem B.1 bound:     {:.4}  (tight: coding meets it)",
        lower::singleton_total(p).to_f64()
    );
    println!(
        "  Theorem 5.1 bound:     {:.4}  (what any unconditional-liveness",
        lower::universal_total(p).to_f64()
    );
    println!("                                  emulation must pay)");
    println!(
        "  replication (f+1):     {:.4}",
        upper::replication_total(p).to_f64()
    );
    println!(
        "\nwith f fixed and N large, coding stores ~{:.2}x the value while \
         replication stores {}x — the Section 2.1 contrast.",
        total,
        f + 1
    );
}
