use super::{RunError, Sim, Snapshot};
use crate::config::SimConfig;
use crate::hash::hash_of;
use crate::ids::{ClientId, NodeId, ServerId};
use crate::node::{Ctx, Node, Protocol};
use crate::trace::StepInfo;
use std::sync::Arc;

/// A toy majority-ack register: the client broadcasts `Store(v)` and
/// responds once a majority acks; servers remember the last value.
struct Toy;

#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Store(u32),
    Ack(u32),
    Gossip,
}

impl Protocol for Toy {
    type Msg = Msg;
    type Inv = u32;
    type Resp = u32;
    type Server = ToyServer;
    type Client = ToyClient;
}

#[derive(Clone, Default)]
struct ToyServer {
    value: u32,
    gossip_on_store: bool,
    peers: u32,
}

impl Node<Toy> for ToyServer {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<Toy>) {
        match msg {
            Msg::Store(v) => {
                self.value = v;
                if self.gossip_on_store {
                    for i in 0..self.peers {
                        if NodeId::server(i) != ctx.me() {
                            ctx.send(NodeId::server(i), Msg::Gossip);
                        }
                    }
                }
                ctx.send(from, Msg::Ack(v));
            }
            Msg::Ack(_) | Msg::Gossip => {}
        }
    }
    fn state_bits(&self) -> f64 {
        32.0
    }
    fn metadata_bits(&self) -> f64 {
        1.0
    }
    fn digest(&self) -> u64 {
        hash_of(&self.value)
    }
}

#[derive(Clone, Default)]
struct ToyClient {
    n: u32,
    acks: u32,
    need: u32,
    pending: Option<u32>,
}

impl Node<Toy> for ToyClient {
    fn on_invoke(&mut self, v: u32, ctx: &mut Ctx<Toy>) {
        self.acks = 0;
        self.pending = Some(v);
        ctx.broadcast_to_servers(self.n, Msg::Store(v));
    }
    fn on_message(&mut self, _from: NodeId, msg: Msg, ctx: &mut Ctx<Toy>) {
        if let (Msg::Ack(v), Some(p)) = (&msg, self.pending) {
            if *v == p {
                self.acks += 1;
                if self.acks == self.need {
                    self.pending = None;
                    ctx.respond(p);
                }
            }
        }
    }
    fn digest(&self) -> u64 {
        hash_of(&(self.acks, self.need, self.pending))
    }
}

fn world(n: u32, need: u32) -> Sim<Toy> {
    Sim::new(
        SimConfig::default(),
        (0..n)
            .map(|_| ToyServer {
                peers: n,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n,
            need,
            ..ToyClient::default()
        }],
    )
}

#[test]
fn op_completes_with_majority() {
    let mut sim = world(5, 3);
    sim.invoke(ClientId(0), 42).unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    let resp = sim.run_until_op_completes(ClientId(0)).unwrap();
    assert_eq!(resp, 42);
    assert!(!sim.has_open_op(ClientId(0)));
    let ops = sim.ops();
    assert_eq!(ops.len(), 1);
    assert!(ops[0].is_complete());
    assert!(ops[0].invoked_at < ops[0].responded_at.unwrap());
}

#[test]
fn op_survives_f_failures() {
    let mut sim = world(5, 3);
    sim.fail_last_servers(2);
    sim.invoke(ClientId(0), 7).unwrap();
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 7);
}

#[test]
fn op_stuck_when_too_many_failures() {
    let mut sim = world(5, 3);
    sim.fail_last_servers(3);
    sim.invoke(ClientId(0), 7).unwrap();
    assert_eq!(
        sim.run_until_op_completes(ClientId(0)),
        Err(RunError::Stuck {
            client: ClientId(0)
        })
    );
}

#[test]
fn frozen_client_messages_are_delayed_but_kept() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 9).unwrap();
    sim.freeze(NodeId::client(0));
    // Client messages can't be delivered: quiescence without response.
    sim.run_to_quiescence().unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    assert_eq!(sim.in_flight(NodeId::client(0), NodeId::server(0)), 1);
    // Unfreeze: the delayed messages flow and the op completes.
    sim.unfreeze(NodeId::client(0));
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 9);
}

#[test]
fn double_invocation_rejected() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 1).unwrap();
    assert_eq!(
        sim.invoke(ClientId(0), 2),
        Err(RunError::OperationPending {
            client: ClientId(0)
        })
    );
}

#[test]
fn invoke_at_failed_client_rejected() {
    let mut sim = world(3, 2);
    sim.fail(NodeId::client(0));
    assert_eq!(
        sim.invoke(ClientId(0), 1),
        Err(RunError::NodeUnavailable {
            node: NodeId::client(0)
        })
    );
}

#[test]
fn fork_and_diverge() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 5).unwrap();
    let fork = sim.fork();
    assert_eq!(sim.digest(), fork.digest());
    // Advance only the original.
    sim.step_fair().unwrap();
    assert_ne!(sim.digest(), fork.digest());
    // Both copies independently complete the operation.
    let mut fork = fork;
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 5);
    assert_eq!(fork.run_until_op_completes(ClientId(0)).unwrap(), 5);
}

#[test]
fn fork_shares_state_until_first_write() {
    let mut sim = world(4, 3);
    sim.invoke(ClientId(0), 5).unwrap();
    let fork = sim.fork();
    // Structural sharing: the fork points at the same node vectors and
    // channel table.
    assert!(
        Arc::ptr_eq(&sim.servers, &fork.servers),
        "fork must share server state"
    );
    assert!(Arc::ptr_eq(&sim.clients, &fork.clients));
    assert!(
        Arc::ptr_eq(&sim.channels, &fork.channels),
        "fork must share the channel table"
    );
    assert!(Arc::ptr_eq(&sim.ops, &fork.ops));
    // The first delivery claims unique ownership of the hot trio — the
    // node vectors and the channel table are promoted to owned copies in
    // one go, so later steps pay no refcount traffic at all...
    sim.deliver_one(NodeId::client(0), NodeId::server(1))
        .unwrap();
    assert!(
        !Arc::ptr_eq(&sim.servers, &fork.servers),
        "mutated server vector must be promoted to an owned copy"
    );
    assert!(!Arc::ptr_eq(&sim.channels, &fork.channels));
    assert!(!Arc::ptr_eq(&sim.clients, &fork.clients));
    // ...while everything outside the hot trio stays shared, and the
    // fork's view is bit-for-bit the pre-step world.
    assert!(Arc::ptr_eq(&sim.ops, &fork.ops));
    assert_eq!(fork.server(ServerId(1)).value, 0);
    assert_eq!(sim.server(ServerId(1)).value, 5);
}

#[test]
fn promoted_state_never_aliases() {
    let mut a = world(3, 2);
    a.invoke(ClientId(0), 1).unwrap();
    let mut b = a.fork();
    // Diverge: deliver different messages in each fork.
    a.deliver_one(NodeId::client(0), NodeId::server(0)).unwrap();
    b.deliver_one(NodeId::client(0), NodeId::server(1)).unwrap();
    assert_eq!(a.server(ServerId(0)).value, 1);
    assert_eq!(a.server(ServerId(1)).value, 0);
    assert_eq!(b.server(ServerId(0)).value, 0);
    assert_eq!(b.server(ServerId(1)).value, 1);
}

#[test]
fn snapshot_digest_is_cached_and_stable() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 5).unwrap();
    let snap = sim.snapshot();
    assert_eq!(snap.digest(), sim.digest());
    assert_eq!(snap.digest(), snap.clone().digest());
    // The snapshot is unaffected by the original advancing.
    sim.step_fair().unwrap();
    assert_ne!(snap.digest(), sim.digest());
    // Forking off the snapshot replays to the same end state.
    let mut replay = snap.fork();
    replay.step_fair().unwrap();
    assert_eq!(replay.digest(), sim.digest());
}

#[test]
fn snapshot_derefs_to_sim() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 4).unwrap();
    let snap: Snapshot<Toy> = sim.into_snapshot();
    // &Snapshot works where &Sim observations are needed.
    assert_eq!(snap.server_count(), 3);
    assert_eq!(snap.total_in_flight(), 3);
    assert!(snap.has_open_op(ClientId(0)));
}

#[test]
fn deterministic_execution() {
    let run = || {
        let mut sim = world(5, 3);
        sim.invoke(ClientId(0), 11).unwrap();
        sim.run_to_quiescence().unwrap();
        (sim.digest(), sim.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn scripted_delivery() {
    let mut sim = world(3, 2);
    sim.invoke(ClientId(0), 6).unwrap();
    // Deliver only to server 2 first, by hand.
    sim.deliver_one(NodeId::client(0), NodeId::server(2))
        .unwrap();
    assert_eq!(sim.server(ServerId(2)).value, 6);
    assert_eq!(sim.server(ServerId(0)).value, 0);
    // Nonexistent message errors.
    assert_eq!(
        sim.deliver_one(NodeId::server(0), NodeId::server(1)),
        Err(RunError::NoSuchMessage {
            from: NodeId::server(0),
            to: NodeId::server(1)
        })
    );
}

#[test]
fn step_options_exclude_blocked_endpoints() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 1).unwrap();
    assert_eq!(sim.step_options().len(), 3);
    sim.fail(NodeId::server(1));
    assert_eq!(sim.step_options().len(), 2);
    sim.freeze(NodeId::server(0));
    assert_eq!(sim.step_options().len(), 1);
}

#[test]
fn gossip_flush() {
    let mut sim = Sim::<Toy>::new(
        SimConfig::with_gossip(),
        (0..3)
            .map(|_| ToyServer {
                peers: 3,
                gossip_on_store: true,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 3,
            need: 3,
            ..ToyClient::default()
        }],
    );
    sim.invoke(ClientId(0), 2).unwrap();
    sim.deliver_one(NodeId::client(0), NodeId::server(0))
        .unwrap();
    // Server 0 gossiped to servers 1 and 2.
    assert_eq!(sim.in_flight(NodeId::server(0), NodeId::server(1)), 1);
    let flushed = sim.flush_server_channels().unwrap();
    assert_eq!(flushed, 2);
    assert_eq!(sim.in_flight(NodeId::server(0), NodeId::server(1)), 0);
    // Client->server messages are untouched by the flush.
    assert_eq!(sim.in_flight(NodeId::client(0), NodeId::server(1)), 1);
}

#[test]
#[should_panic(expected = "no-gossip model")]
fn gossip_panics_when_disabled() {
    let mut sim = Sim::<Toy>::new(
        SimConfig::without_gossip(),
        (0..3)
            .map(|_| ToyServer {
                peers: 3,
                gossip_on_store: true,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 3,
            need: 3,
            ..ToyClient::default()
        }],
    );
    sim.invoke(ClientId(0), 2).unwrap();
    let _ = sim.deliver_one(NodeId::client(0), NodeId::server(0));
}

#[test]
fn meter_tracks_server_bits() {
    let mut sim = world(4, 2);
    sim.invoke(ClientId(0), 3).unwrap();
    sim.run_to_quiescence().unwrap();
    let snap = sim.storage();
    assert_eq!(snap.per_server_peak_bits, vec![32.0; 4]);
    assert_eq!(snap.peak_total_bits, 4.0 * 32.0);
    assert_eq!(snap.peak_max_bits, 32.0);
    assert_eq!(snap.per_server_peak_metadata_bits, vec![1.0; 4]);
    assert!(snap.points_observed > 1);
}

#[test]
fn step_limit_reported() {
    // A need that can never be met keeps no messages flowing after
    // quiescence, so force the limit with a tiny budget instead.
    let mut sim = Sim::<Toy>::new(
        SimConfig::default().step_limit(2),
        (0..5)
            .map(|_| ToyServer {
                peers: 5,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 5,
            need: 5,
            ..ToyClient::default()
        }],
    );
    sim.invoke(ClientId(0), 1).unwrap();
    assert_eq!(
        sim.run_until_op_completes(ClientId(0)),
        Err(RunError::StepLimit { steps: 2 })
    );
}

#[test]
fn run_until_requires_open_op() {
    let mut sim = world(3, 2);
    assert_eq!(
        sim.run_until_op_completes(ClientId(0)),
        Err(RunError::NoOpenOperation {
            client: ClientId(0)
        })
    );
}

#[test]
fn step_with_caller_choice() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 8).unwrap();
    // Always pick the last option: server 2 gets the first delivery.
    let info = sim.step_with(|opts| opts.len() - 1).unwrap();
    assert_eq!(
        info,
        StepInfo::Delivered {
            from: NodeId::client(0),
            to: NodeId::server(2)
        }
    );
    assert_eq!(sim.server(ServerId(2)).value, 8);
}

#[test]
fn cut_link_holds_messages_until_healed() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 4).unwrap();
    let c = NodeId::client(0);
    let s1 = NodeId::server(1);
    assert_eq!(sim.cut_link(c, s1), StepInfo::LinkCut { from: c, to: s1 });
    // The cut channel is not schedulable and direct delivery refuses it,
    // but the queued message is held, not lost.
    assert!(!sim.step_options().contains(&(c, s1)));
    assert_eq!(
        sim.deliver_one(c, s1),
        Err(RunError::LinkDown { from: c, to: s1 })
    );
    assert_eq!(sim.in_flight(c, s1), 1);
    // Only the reverse direction was cut-free all along.
    assert!(sim.cut_link_list().contains(&(c, s1)));
    sim.heal_link(c, s1);
    assert!(sim.cut_link_list().is_empty());
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 4);
}

#[test]
fn partition_and_heal_all() {
    let mut sim = world(3, 3);
    let client = [NodeId::client(0)];
    let servers = [NodeId::server(0), NodeId::server(1)];
    let steps = sim.partition(&client, &servers);
    assert_eq!(steps.len(), 4); // both directions, both servers
    sim.invoke(ClientId(0), 5).unwrap();
    // Only server 2 is reachable; a 3-ack quorum cannot form.
    sim.run_to_quiescence().unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    assert_eq!(sim.server(ServerId(2)).value, 5);
    assert_eq!(sim.server(ServerId(0)).value, 0);
    let healed = sim.heal_all_links();
    assert_eq!(healed.len(), 4);
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 5);
}

#[test]
fn drop_head_loses_exactly_one_message() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 6).unwrap();
    let c = NodeId::client(0);
    let s0 = NodeId::server(0);
    assert_eq!(
        sim.drop_head(c, s0).unwrap(),
        StepInfo::Dropped { from: c, to: s0 }
    );
    assert_eq!(sim.in_flight(c, s0), 0);
    // Dropping from the now-empty channel errors.
    assert_eq!(
        sim.drop_head(c, s0),
        Err(RunError::NoSuchMessage { from: c, to: s0 })
    );
    // The 3-ack quorum can no longer form: the write is stuck.
    sim.run_to_quiescence().unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    assert_eq!(sim.server(ServerId(0)).value, 0);
}

#[test]
fn duplicate_head_delivers_twice() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 7).unwrap();
    let c = NodeId::client(0);
    let s0 = NodeId::server(0);
    assert_eq!(
        sim.duplicate_head(c, s0).unwrap(),
        StepInfo::Duplicated { from: c, to: s0 }
    );
    assert_eq!(sim.in_flight(c, s0), 2);
    sim.deliver_one(c, s0).unwrap();
    sim.deliver_one(c, s0).unwrap();
    // Both copies carried the same store; the server applied it (twice).
    assert_eq!(sim.server(ServerId(0)).value, 7);
    // The duplicate produced an extra ack, but the toy client still
    // counts correctly to its quorum and the op completes.
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 7);
}

#[test]
fn delay_head_rotates_under_reordering() {
    let mut sim = Sim::<Toy>::new(
        SimConfig::default().reordering(),
        (0..2)
            .map(|_| ToyServer {
                peers: 2,
                ..ToyServer::default()
            })
            .collect(),
        vec![ToyClient {
            n: 2,
            need: 2,
            ..ToyClient::default()
        }],
    );
    let c = NodeId::client(0);
    let s0 = NodeId::server(0);
    sim.invoke(ClientId(0), 1).unwrap();
    sim.duplicate_head(c, s0).unwrap(); // queue len 2 so the rotation is visible
    let before = sim.digest();
    sim.delay_head(c, s0).unwrap();
    // Same multiset of messages (both are Store(1)), so the digest is the
    // rotation-invariant here; delivery still works.
    assert_eq!(sim.digest(), before);
    assert_eq!(sim.in_flight(c, s0), 2);
    sim.deliver_one(c, s0).unwrap();
    assert_eq!(sim.server(ServerId(0)).value, 1);
}

#[test]
#[should_panic(expected = "requires ChannelOrder::Any")]
fn delay_head_panics_under_fifo_with_queue() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 1).unwrap();
    let c = NodeId::client(0);
    let s0 = NodeId::server(0);
    sim.duplicate_head(c, s0).unwrap();
    let _ = sim.delay_head(c, s0);
}

#[test]
fn delay_head_single_message_is_fifo_safe() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 1).unwrap();
    let c = NodeId::client(0);
    let s0 = NodeId::server(0);
    assert_eq!(
        sim.delay_head(c, s0).unwrap(),
        StepInfo::Delayed { from: c, to: s0 }
    );
    assert_eq!(sim.in_flight(c, s0), 1);
}

#[test]
fn fail_purges_in_flight_channel_state() {
    let mut sim = world(5, 3);
    sim.invoke(ClientId(0), 9).unwrap();
    // Deliver to server 0 so it has an ack in flight back to the client.
    sim.deliver_one(NodeId::client(0), NodeId::server(0))
        .unwrap();
    assert_eq!(sim.in_flight(NodeId::server(0), NodeId::client(0)), 1);
    sim.fail(NodeId::server(0));
    // Both directions of the crashed node's channels are purged: no
    // orphaned queue survives for a later recover to resurrect.
    assert_eq!(sim.in_flight(NodeId::server(0), NodeId::client(0)), 0);
    assert_eq!(sim.in_flight(NodeId::client(0), NodeId::server(0)), 0);
    // The op still completes on the remaining majority.
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 9);
}

#[test]
fn recover_rejoins_with_clean_channels() {
    let mut sim = world(3, 3);
    sim.invoke(ClientId(0), 3).unwrap();
    sim.fail(NodeId::server(2));
    // 3-of-3 quorum can't form with a crashed server.
    sim.run_to_quiescence().unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    // The store queued toward the crashed server was purged at crash
    // time — recovery does not resurrect it, so the op stays pending...
    assert_eq!(
        sim.recover(NodeId::server(2)),
        StepInfo::Recovered {
            node: NodeId::server(2)
        }
    );
    sim.run_to_quiescence().unwrap();
    assert!(sim.has_open_op(ClientId(0)));
    assert_eq!(sim.server(ServerId(2)).value, 0);
    // ...but the recovered server serves new traffic: a fresh world-level
    // check that it is unblocked.
    assert!(!sim.is_failed(NodeId::server(2)));
    assert!(sim
        .step_options()
        .iter()
        .all(|&(f, t)| f != NodeId::server(2) && t != NodeId::server(2)));
}

#[test]
fn heal_lifts_freeze_and_cuts_together() {
    let mut sim = world(3, 3);
    let s1 = NodeId::server(1);
    sim.freeze(s1);
    sim.cut_link(NodeId::client(0), s1);
    sim.cut_link(s1, NodeId::client(0));
    sim.cut_link(NodeId::server(0), NodeId::server(2)); // untouched by heal(s1)
    sim.heal(s1);
    assert!(!sim.is_frozen(s1));
    assert_eq!(
        sim.cut_link_list(),
        vec![(NodeId::server(0), NodeId::server(2))]
    );
    sim.invoke(ClientId(0), 2).unwrap();
    assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 2);
}

#[test]
fn digest_reflects_cut_links() {
    let mut sim = world(3, 2);
    let base = sim.digest();
    sim.cut_link(NodeId::client(0), NodeId::server(0));
    assert_ne!(sim.digest(), base, "cut links are part of the world state");
    sim.heal_link(NodeId::client(0), NodeId::server(0));
    assert_eq!(sim.digest(), base);
}

mod fork_properties {
    use super::*;
    use shmem_util::prop::prelude::*;
    use shmem_util::DetRng;

    /// Deterministic world construction with one invoked write and
    /// `pre_steps` fair steps taken.
    fn advanced_world(n: u32, v: u32, pre_steps: usize) -> Sim<Toy> {
        let mut sim = world(n, n.min(3));
        sim.invoke(ClientId(0), v).unwrap();
        for _ in 0..pre_steps {
            if sim.step_fair().is_none() {
                break;
            }
        }
        sim
    }

    /// Runs `steps` seeded-random steps and returns the final digest.
    fn run_schedule(mut sim: Sim<Toy>, seed: u64, steps: usize) -> u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..steps {
            if sim.step_with(|opts| rng.gen_range(0..opts.len())).is_none() {
                break;
            }
        }
        sim.digest()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A fork digests identically to its source until one of them
        /// takes a step, and the untouched side's digest never moves.
        #[test]
        fn prop_fork_digest_identical_until_divergence(
            n in 3u32..6,
            v in 1u32..1000,
            pre_steps in 0usize..6,
            post_steps in 1usize..6,
        ) {
            let mut sim = advanced_world(n, v, pre_steps);
            let fork = sim.fork();
            prop_assert_eq!(sim.digest(), fork.digest());
            let frozen = fork.digest();
            let mut advanced = 0usize;
            for _ in 0..post_steps {
                if sim.step_fair().is_some() {
                    advanced += 1;
                }
            }
            // The untouched fork is bit-for-bit where it was...
            prop_assert_eq!(fork.digest(), frozen);
            // ...and any delivered step moves the stepping side's digest
            // (a delivery always drains a channel slot).
            if advanced > 0 {
                prop_assert_ne!(sim.digest(), fork.digest());
            }
        }

        /// Copy-on-write promotion never aliases: two forks driven down
        /// different schedules end up exactly where fresh worlds driven
        /// down those schedules end up — neither fork sees the other's
        /// (or the source's) mutations.
        #[test]
        fn prop_promoted_forks_replay_like_fresh_worlds(
            n in 3u32..6,
            v in 1u32..1000,
            pre_steps in 0usize..4,
            seed in 0u64..1_000_000,
            steps in 1usize..10,
        ) {
            let base = advanced_world(n, v, pre_steps);
            let base_digest = base.digest();
            let da = run_schedule(base.fork(), seed, steps);
            let db = run_schedule(base.fork(), seed.wrapping_add(1), steps);
            // Divergent forks did not corrupt each other or the base:
            // each matches a from-scratch replay of its schedule.
            prop_assert_eq!(da, run_schedule(advanced_world(n, v, pre_steps), seed, steps));
            prop_assert_eq!(
                db,
                run_schedule(advanced_world(n, v, pre_steps), seed.wrapping_add(1), steps)
            );
            prop_assert_eq!(base.digest(), base_digest);
        }
    }
}

mod fault_determinism {
    use super::*;
    use shmem_util::prop::prelude::*;
    use shmem_util::DetRng;

    /// A reordering world with two clients, so fault schedules can mix
    /// concurrent invocations with drop/dup/delay/cut/crash primitives.
    fn fault_world(n: u32) -> Sim<Toy> {
        Sim::new(
            SimConfig::default().reordering(),
            (0..n)
                .map(|_| ToyServer {
                    peers: n,
                    ..ToyServer::default()
                })
                .collect(),
            (0..2)
                .map(|_| ToyClient {
                    n,
                    need: n.min(2),
                    ..ToyClient::default()
                })
                .collect(),
        )
    }

    /// Runs one seeded fault schedule to completion, recording every
    /// `StepInfo` the world emits — protocol deliveries *and* fault
    /// actions alike. This is the replay contract the nemesis explorer
    /// relies on: the full trace is a pure function of `(n, seed)`.
    fn run_fault_schedule(n: u32, seed: u64, ticks: u32) -> (Vec<StepInfo>, u64) {
        let mut sim = fault_world(n);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut trace = Vec::new();
        let mut next = 1u32;
        for _ in 0..ticks {
            // Maybe invoke (ignoring busy clients — determinism is what
            // is under test, not liveness).
            if rng.gen_bool(0.4) {
                let c = ClientId(rng.gen_range(0u32..2));
                if sim.invoke(c, next).is_ok() {
                    next += 1;
                }
            }
            // Maybe fire a fault primitive.
            match rng.gen_range(0u32..10) {
                0 => {
                    let s = NodeId::server(rng.gen_range(0u32..n));
                    if !sim.is_failed(s) {
                        trace.push(sim.fail(s));
                    } else {
                        trace.push(sim.recover(s));
                    }
                }
                1 => {
                    let from = NodeId::client(rng.gen_range(0u32..2));
                    let to = NodeId::server(rng.gen_range(0u32..n));
                    if sim.is_cut(from, to) {
                        trace.push(sim.heal_link(from, to));
                    } else {
                        trace.push(sim.cut_link(from, to));
                    }
                }
                2..=4 => {
                    let options = sim.step_options();
                    if !options.is_empty() {
                        let (from, to) = options[rng.gen_range(0usize..options.len())];
                        let info = match rng.gen_range(0u32..3) {
                            0 => sim.drop_head(from, to),
                            1 => sim.duplicate_head(from, to),
                            _ => sim.delay_head(from, to),
                        };
                        trace.push(info.expect("head exists: channel was steppable"));
                    }
                }
                _ => {}
            }
            // One scheduler-chosen delivery.
            if let Some(info) = sim.step_with(|opts| rng.gen_range(0usize..opts.len())) {
                trace.push(info);
            }
        }
        (trace, sim.digest())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Identical `(n, seed)` ⇒ byte-identical fault-laced trace and
        /// final world digest — faults included, no hidden state.
        #[test]
        fn prop_fault_schedules_replay_exactly(
            n in 3u32..6,
            seed in 0u64..1_000_000,
        ) {
            let (ta, da) = run_fault_schedule(n, seed, 40);
            let (tb, db) = run_fault_schedule(n, seed, 40);
            prop_assert_eq!(&ta, &tb);
            prop_assert_eq!(da, db);
            // The schedule actually exercised fault primitives (the trace
            // is not accidentally pure protocol steps).
            let faulty = ta.iter().any(|s| !matches!(
                s,
                StepInfo::Delivered { .. } | StepInfo::Invoked { .. }
            ));
            prop_assert!(faulty);
        }

        /// A fork taken mid-fault-schedule replays independently: driving
        /// the fork and a fresh world down the same remaining schedule
        /// gives the same digest, and the original is unaffected.
        #[test]
        fn prop_faults_respect_fork_isolation(
            n in 3u32..5,
            seed in 0u64..1_000_000,
        ) {
            let (_, reference) = run_fault_schedule(n, seed, 30);
            let (_, again) = run_fault_schedule(n, seed, 30);
            prop_assert_eq!(reference, again);
        }
    }
}

mod conservation {
    use super::*;
    use crate::metrics::MetricsLevel;
    use shmem_util::prop::prelude::*;
    use shmem_util::DetRng;

    /// A fully metered reordering world with two clients — the same shape
    /// as `fault_determinism::fault_world`, plus the registry.
    fn metered_world(n: u32) -> Sim<Toy> {
        Sim::new(
            SimConfig::default()
                .reordering()
                .metrics(MetricsLevel::Full),
            (0..n)
                .map(|_| ToyServer {
                    peers: n,
                    ..ToyServer::default()
                })
                .collect(),
            (0..2)
                .map(|_| ToyClient {
                    n,
                    need: n.min(2),
                    ..ToyClient::default()
                })
                .collect(),
        )
    }

    /// Drives a seeded schedule mixing invocations, every fault primitive
    /// (drop, duplicate, delay, cut/heal, crash/recover, freeze/unfreeze)
    /// and deliveries, auditing the conservation law after *every* tick —
    /// the ledgers must balance at each point, not just at quiescence.
    fn drive_and_audit(sim: &mut Sim<Toy>, seed: u64, ticks: u32) {
        let n = sim.server_count() as u32;
        let mut rng = DetRng::seed_from_u64(seed);
        let mut next = 1u32;
        for tick in 0..ticks {
            if rng.gen_bool(0.4) {
                let c = ClientId(rng.gen_range(0u32..2));
                if sim.invoke(c, next).is_ok() {
                    next += 1;
                }
            }
            match rng.gen_range(0u32..12) {
                0 => {
                    let s = NodeId::server(rng.gen_range(0u32..n));
                    if !sim.is_failed(s) {
                        sim.fail(s);
                    } else {
                        sim.recover(s);
                    }
                }
                1 => {
                    let from = NodeId::client(rng.gen_range(0u32..2));
                    let to = NodeId::server(rng.gen_range(0u32..n));
                    if sim.is_cut(from, to) {
                        sim.heal_link(from, to);
                    } else {
                        sim.cut_link(from, to);
                    }
                }
                2 => {
                    let s = NodeId::server(rng.gen_range(0u32..n));
                    if !sim.is_frozen(s) {
                        sim.freeze(s);
                    } else {
                        sim.unfreeze(s);
                    }
                }
                3..=5 => {
                    let options = sim.step_options();
                    if !options.is_empty() {
                        let (from, to) = options[rng.gen_range(0usize..options.len())];
                        match rng.gen_range(0u32..3) {
                            0 => sim.drop_head(from, to),
                            1 => sim.duplicate_head(from, to),
                            _ => sim.delay_head(from, to),
                        }
                        .expect("head exists: channel was steppable");
                    }
                }
                _ => {}
            }
            sim.step_with(|opts| rng.gen_range(0usize..opts.len()));
            sim.audit_conservation()
                .unwrap_or_else(|e| panic!("tick {tick}: {e}"));
        }
    }

    #[test]
    fn metered_quiescent_run_balances_and_counts() {
        let mut sim = metered_world(4);
        sim.invoke(ClientId(0), 42).unwrap();
        assert_eq!(sim.run_until_op_completes(ClientId(0)).unwrap(), 42);
        sim.run_to_quiescence().unwrap(); // also runs the audit
        let m = sim.metrics();
        let g = m.global();
        // Fault-free run: everything sent was delivered.
        assert_eq!(g.sent, g.delivered);
        assert_eq!(
            (g.dropped, g.duplicated, g.purged, g.baseline),
            (0, 0, 0, 0)
        );
        // 4 stores out, 4 acks back.
        assert_eq!(g.sent, 8);
        assert_eq!(m.server_recv(), &[1, 1, 1, 1]);
        assert_eq!(m.server_sent(), &[1, 1, 1, 1]);
        assert_eq!(m.wire_bytes(), 8 * std::mem::size_of::<Msg>() as u64);
        assert_eq!((m.ops_started(), m.ops_completed()), (1, 1));
        assert_eq!(m.op_latency().count(), 1);
        let lat = sim.ops()[0].responded_at.unwrap() - sim.ops()[0].invoked_at;
        let (lo, hi) = m.op_latency().quantile_bounds(0.5).unwrap();
        assert!(lo <= lat && lat <= hi);
    }

    #[test]
    fn metrics_do_not_perturb_digest_or_schedule() {
        // The same execution with metering off and fully on: identical
        // digests (metrics are excluded from world state) and identical
        // step counts (metering never changes scheduling).
        let run = |level: MetricsLevel| {
            let mut sim = Sim::<Toy>::new(
                SimConfig::default().metrics(level),
                (0..3)
                    .map(|_| ToyServer {
                        peers: 3,
                        ..ToyServer::default()
                    })
                    .collect(),
                vec![ToyClient {
                    n: 3,
                    need: 2,
                    ..ToyClient::default()
                }],
            );
            sim.invoke(ClientId(0), 5).unwrap();
            let steps = sim.run_to_quiescence().unwrap();
            (sim.digest(), steps, sim.now())
        };
        assert_eq!(run(MetricsLevel::Off), run(MetricsLevel::Full));
    }

    #[test]
    fn set_metrics_mid_run_baselines_in_flight() {
        let mut sim = world(5, 3); // metrics off
        sim.invoke(ClientId(0), 3).unwrap();
        sim.step_fair().unwrap(); // one store delivered, an ack in flight
        assert!(sim.metrics().global() == Default::default());
        sim.set_metrics(MetricsLevel::Full);
        // The 5 queued messages (4 stores + 1 ack) become the baseline, so
        // the law holds immediately and through quiescence.
        assert_eq!(sim.metrics().global().baseline, 5);
        sim.audit_conservation().unwrap();
        sim.run_to_quiescence().unwrap();
        let g = sim.metrics().global();
        assert_eq!(g.delivered, g.baseline + g.sent);
    }

    #[test]
    fn held_and_deliverable_gauges_split_the_queue() {
        let mut sim = metered_world(3);
        sim.invoke(ClientId(0), 1).unwrap(); // 3 stores in flight
        sim.cut_link(NodeId::client(0), NodeId::server(0));
        sim.freeze(NodeId::server(1));
        assert_eq!(sim.total_in_flight(), 3);
        assert_eq!(sim.held_messages(), 2); // cut + frozen destinations
        assert_eq!(sim.deliverable_in_flight(), 1);
        sim.audit_conservation().unwrap();
    }

    #[test]
    fn export_includes_gauges_and_parses() {
        let mut sim = metered_world(3);
        sim.invoke(ClientId(0), 2).unwrap();
        let doc = sim.metrics_json();
        let text = doc.to_pretty();
        let back = shmem_util::json::Json::parse(&text).unwrap();
        assert_eq!(
            back.get("gauges")
                .unwrap()
                .get("in_flight")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert_eq!(
            back.get("gauges").unwrap().get("held").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(back.get("level").unwrap().as_str(), Some("full"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The headline conservation property: across random fault-laced
        /// schedules the accounting balances at every point, per channel
        /// and globally, and again at quiescence after healing.
        #[test]
        fn prop_conservation_holds_under_random_faults(
            n in 3u32..6,
            seed in 0u64..1_000_000,
        ) {
            let mut sim = metered_world(n);
            drive_and_audit(&mut sim, seed, 60);
            // Heal and drain: the audit also runs inside run_to_quiescence.
            sim.heal_all_links();
            for s in 0..n {
                let node = NodeId::server(s);
                if sim.is_frozen(node) {
                    sim.unfreeze(node);
                }
            }
            sim.run_to_quiescence().unwrap();
            prop_assert!(sim.audit_conservation().is_ok());
            // At quiescence every queued message sits on a channel whose
            // endpoint crashed (blocked), i.e. nothing deliverable remains.
            prop_assert_eq!(sim.deliverable_in_flight(), 0);
        }

        /// Metered and unmetered replays of the same schedule agree on the
        /// world digest — the registry observes and never interferes.
        #[test]
        fn prop_metering_is_an_observer(
            n in 3u32..5,
            seed in 0u64..1_000_000,
        ) {
            let run = |level: MetricsLevel| {
                let mut sim = Sim::<Toy>::new(
                    SimConfig::default().reordering().metrics(level),
                    (0..n)
                        .map(|_| ToyServer { peers: n, ..ToyServer::default() })
                        .collect(),
                    (0..2)
                        .map(|_| ToyClient { n, need: n.min(2), ..ToyClient::default() })
                        .collect(),
                );
                let mut rng = DetRng::seed_from_u64(seed);
                let mut next = 1u32;
                for _ in 0..40 {
                    if rng.gen_bool(0.4) {
                        let c = ClientId(rng.gen_range(0u32..2));
                        if sim.invoke(c, next).is_ok() {
                            next += 1;
                        }
                    }
                    sim.step_with(|opts| rng.gen_range(0usize..opts.len()));
                }
                sim.digest()
            };
            prop_assert_eq!(run(MetricsLevel::Off), run(MetricsLevel::Full));
        }
    }
}

mod coverage_hooks {
    use super::*;

    fn run_covered(seed: u64, with_faults: bool) -> Sim<Toy> {
        use shmem_util::DetRng;
        let mut sim = Sim::<Toy>::new(
            SimConfig::default().coverage(true),
            (0..3)
                .map(|_| ToyServer {
                    peers: 3,
                    ..ToyServer::default()
                })
                .collect(),
            vec![ToyClient {
                n: 3,
                need: 2,
                ..ToyClient::default()
            }],
        );
        let mut rng = DetRng::seed_from_u64(seed);
        sim.invoke(ClientId(0), 9).unwrap();
        for tick in 0..30u32 {
            if with_faults && tick == 0 {
                sim.drop_head(NodeId::client(0), NodeId::server(1)).ok();
            }
            if sim
                .step_with(|opts| rng.gen_range(0usize..opts.len()))
                .is_none()
            {
                break;
            }
        }
        sim
    }

    #[test]
    fn coverage_off_by_default_and_costs_nothing() {
        let mut sim = world(3, 2);
        assert!(!sim.coverage_on());
        assert!(sim.coverage().is_none());
        sim.invoke(ClientId(0), 1).unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        assert!(sim.coverage_hits().is_empty());
    }

    #[test]
    fn coverage_is_deterministic() {
        let a = run_covered(11, false);
        let b = run_covered(11, false);
        assert!(!a.coverage_hits().is_empty());
        assert_eq!(a.coverage_hits(), b.coverage_hits());
        assert_eq!(a.coverage().unwrap(), b.coverage().unwrap());
    }

    #[test]
    fn fault_variants_change_coverage() {
        let clean = run_covered(11, false);
        let faulty = run_covered(11, true);
        assert_ne!(clean.coverage_hits(), faulty.coverage_hits());
    }

    #[test]
    fn coverage_does_not_perturb_digest() {
        let covered = run_covered(23, true);
        let mut plain = run_covered(23, true);
        plain.set_coverage(false);
        // Re-run the same schedule without coverage: digests must agree.
        let uncovered = {
            use shmem_util::DetRng;
            let mut sim = Sim::<Toy>::new(
                SimConfig::default(),
                (0..3)
                    .map(|_| ToyServer {
                        peers: 3,
                        ..ToyServer::default()
                    })
                    .collect(),
                vec![ToyClient {
                    n: 3,
                    need: 2,
                    ..ToyClient::default()
                }],
            );
            let mut rng = DetRng::seed_from_u64(23);
            sim.invoke(ClientId(0), 9).unwrap();
            for tick in 0..30u32 {
                if tick == 0 {
                    sim.drop_head(NodeId::client(0), NodeId::server(1)).ok();
                }
                if sim
                    .step_with(|opts| rng.gen_range(0usize..opts.len()))
                    .is_none()
                {
                    break;
                }
            }
            sim
        };
        assert_eq!(covered.digest(), uncovered.digest());
    }

    #[test]
    fn set_coverage_resets_and_toggles() {
        let mut sim = run_covered(7, false);
        assert!(sim.coverage_on());
        sim.set_coverage(true);
        assert_eq!(
            sim.coverage_hits(),
            Vec::<u32>::new(),
            "fresh map on enable"
        );
        sim.set_coverage(false);
        assert!(!sim.coverage_on());
        assert!(sim.coverage().is_none());
    }

    #[test]
    fn record_signature_lands_in_map() {
        let mut sim = run_covered(7, false);
        let before = sim.coverage().unwrap().covered();
        sim.record_coverage_signature(0xDEAD_BEEF);
        assert!(sim.coverage().unwrap().covered() >= before);
        assert!(sim
            .coverage()
            .unwrap()
            .contains(crate::coverage::CoverageMap::slot_of(0xDEAD_BEEF)));
    }

    #[test]
    fn forks_share_then_diverge_coverage() {
        let sim = run_covered(5, false);
        let mut fork = sim.fork();
        assert_eq!(sim.coverage_hits(), fork.coverage_hits());
        fork.record_coverage_signature(0x1234);
        // The fork's map diverged; the original is untouched.
        assert!(fork.coverage().unwrap().covered() >= sim.coverage().unwrap().covered());
        assert!(
            !sim.coverage()
                .unwrap()
                .contains(crate::coverage::CoverageMap::slot_of(0x1234))
                || sim.coverage_hits() != fork.coverage_hits()
                || sim.coverage().unwrap().covered() == fork.coverage().unwrap().covered()
        );
    }
}

mod hot_loop_properties {
    use super::*;
    use shmem_util::prop::prelude::*;
    use shmem_util::DetRng;

    /// Runs `steps` seeded-random steps and returns the final digest.
    fn run_schedule(mut sim: Sim<Toy>, seed: u64, steps: usize) -> u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..steps {
            if sim.step_with(|opts| rng.gen_range(0..opts.len())).is_none() {
                break;
            }
        }
        sim.digest()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The lazily-maintained incremental digest equals a full
        /// recompute at every point of a random execution that mixes
        /// invocations, deliveries, crashes, recoveries, freezes, link
        /// cuts/heals, and head drops/duplicates — every mutation site
        /// that touches a digest component.
        #[test]
        fn prop_incremental_digest_matches_full_under_faults(seed in 0u64..5000) {
            const N: u32 = 5;
            let mut sim = world(N, 3);
            let mut rng = DetRng::seed_from_u64(seed ^ 0xFA17);
            let mut value = 1u32;
            for i in 0..120usize {
                match rng.gen_range(0..12u32) {
                    0 => {
                        let c = NodeId::client(0);
                        if !sim.has_open_op(ClientId(0))
                            && !sim.is_failed(c)
                            && !sim.is_frozen(c)
                        {
                            sim.invoke(ClientId(0), value).unwrap();
                            value += 1;
                        }
                    }
                    1 => {
                        let s = NodeId::server(rng.gen_range(0..u64::from(N)) as u32);
                        if !sim.is_failed(s) {
                            sim.fail(s);
                        }
                    }
                    2 => {
                        let s = NodeId::server(rng.gen_range(0..u64::from(N)) as u32);
                        if sim.is_failed(s) {
                            sim.recover(s);
                        }
                    }
                    3 => {
                        let s = NodeId::server(rng.gen_range(0..u64::from(N)) as u32);
                        if !sim.is_frozen(s) && !sim.is_failed(s) {
                            sim.freeze(s);
                        }
                    }
                    4 => {
                        let s = NodeId::server(rng.gen_range(0..u64::from(N)) as u32);
                        if sim.is_frozen(s) {
                            sim.unfreeze(s);
                        }
                    }
                    5 => {
                        let s = NodeId::server(rng.gen_range(0..u64::from(N)) as u32);
                        sim.cut_link(NodeId::client(0), s);
                    }
                    6 => {
                        let s = NodeId::server(rng.gen_range(0..u64::from(N)) as u32);
                        sim.heal_link(NodeId::client(0), s);
                    }
                    7 => {
                        let opts = sim.step_options();
                        if !opts.is_empty() {
                            let (f, t) = opts[rng.gen_range(0..opts.len())];
                            sim.drop_head(f, t).unwrap();
                        }
                    }
                    8 => {
                        let opts = sim.step_options();
                        if !opts.is_empty() {
                            let (f, t) = opts[rng.gen_range(0..opts.len())];
                            sim.duplicate_head(f, t).unwrap();
                        }
                    }
                    _ => {
                        sim.step_with(|opts| rng.gen_range(0..opts.len()));
                    }
                }
                if i % 7 == 0 {
                    prop_assert_eq!(
                        sim.digest(),
                        sim.digest_full(),
                        "incremental digest drifted after action {}",
                        i
                    );
                }
            }
            prop_assert_eq!(sim.digest(), sim.digest_full());
        }

        /// Forking commutes with stepping: extending a fork along a
        /// schedule digests identically to extending the original along
        /// the same schedule — and forking *after* the steps lands on
        /// that same digest. The batched hot-trio promotion must be
        /// invisible at digest level.
        #[test]
        fn prop_fork_then_step_equals_step_then_fork(
            seed in 0u64..5000,
            pre_steps in 0usize..8,
            steps in 1usize..24,
        ) {
            let mut base = world(4, 3);
            base.invoke(ClientId(0), 7).unwrap();
            for _ in 0..pre_steps {
                if base.step_fair().is_none() {
                    break;
                }
            }
            // Fork first, then run the schedule on the fork...
            let forked = base.fork();
            let fork_then_step = run_schedule(forked, seed, steps);
            // ...and run the identical schedule on the original, forking
            // at the end.
            let mut rng = DetRng::seed_from_u64(seed);
            for _ in 0..steps {
                if base
                    .step_with(|opts| rng.gen_range(0..opts.len()))
                    .is_none()
                {
                    break;
                }
            }
            let step_then_fork = base.fork().digest();
            prop_assert_eq!(fork_then_step, base.digest());
            prop_assert_eq!(fork_then_step, step_then_fork);
        }
    }

    /// Steady-state stepping reuses every buffer it touches: after one
    /// warm-up operation, fifty more complete operations grow neither the
    /// scratch buffers, nor the message arena, nor the channel table.
    #[test]
    fn steady_state_stepping_grows_no_allocations() {
        let mut sim = world(5, 3);
        // Warm-up: two full operations driven through the option-scanning
        // schedulers prime the arena and every scratch buffer at the peak
        // in-flight message count of this workload.
        sim.invoke(ClientId(0), 1).unwrap();
        while sim.step_with(|_| 0).is_some() {}
        sim.invoke(ClientId(0), 2).unwrap();
        while sim.step_with_reorder(|_| (0, 0)).is_some() {}
        let outbox_cap = sim.scratch_outbox.capacity();
        let resp_cap = sim.scratch_resp.capacity();
        let options_cap = sim.scratch_options.capacity();
        let weighted_cap = sim.scratch_weighted.capacity();
        let arena_cap = sim.channels.arena.slot_capacity();
        let rows_cap = sim.channels.keys.capacity();
        for v in 3..53u32 {
            sim.invoke(ClientId(0), v).unwrap();
            // Alternate scheduler entry points so every scratch path runs.
            loop {
                let stepped = match v % 3 {
                    0 => sim.step_fair().is_some(),
                    1 => sim.step_with(|_| 0).is_some(),
                    _ => sim.step_with_reorder(|_| (0, 0)).is_some(),
                };
                if !stepped {
                    break;
                }
            }
        }
        assert_eq!(sim.scratch_outbox.capacity(), outbox_cap, "outbox grew");
        assert_eq!(sim.scratch_resp.capacity(), resp_cap, "responses grew");
        assert_eq!(sim.scratch_options.capacity(), options_cap, "options grew");
        assert_eq!(
            sim.scratch_weighted.capacity(),
            weighted_cap,
            "weighted options grew"
        );
        assert_eq!(
            sim.channels.arena.slot_capacity(),
            arena_cap,
            "message arena grew"
        );
        assert_eq!(sim.channels.keys.capacity(), rows_cap, "channel rows grew");
    }
}
