//! The server event loop: an unchanged protocol automaton driven by a
//! [`Transport`] instead of the simulator.
//!
//! This is the adapter the `Ctx::new` hook exists for: each inbound
//! envelope is decoded, handed to the automaton's `on_message` against a
//! fresh context, and the buffered effects are encoded and pushed back
//! into the transport. The automaton cannot tell whether the bytes came
//! over a simulator channel, an in-process queue, or a TCP socket —
//! which is exactly what the differential tests exploit.

use crate::transport::{Envelope, Transport};
use crate::wire::WireMsg;
use shmem_sim::{Ctx, Node, NodeId, Protocol, ServerId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Counters one server loop accumulates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Envelopes received and decoded.
    pub msgs_in: u64,
    /// Messages sent (outbox entries).
    pub msgs_out: u64,
    /// Wire bytes sent, charged via [`Protocol::msg_wire_bytes`].
    pub wire_bytes_out: u64,
    /// Envelopes whose payload failed to decode (dropped, not fatal).
    pub decode_errors: u64,
}

impl ServeStats {
    /// Componentwise sum (workers of one pooled server, or one server
    /// across restarts).
    #[must_use]
    pub fn merge(self, other: ServeStats) -> ServeStats {
        ServeStats {
            msgs_in: self.msgs_in + other.msgs_in,
            msgs_out: self.msgs_out + other.msgs_out,
            wire_bytes_out: self.wire_bytes_out + other.wire_bytes_out,
            decode_errors: self.decode_errors + other.decode_errors,
        }
    }
}

/// Runs `automaton` against `transport` until `stop` is raised, then
/// returns it (with its state intact — the durable-state crash model)
/// together with the loop's counters.
///
/// A payload that fails to decode is counted and dropped; the loop — and
/// the server — survives arbitrary bytes from the network.
pub fn serve_until<P, T>(
    mut automaton: P::Server,
    me: ServerId,
    mut transport: T,
    stop: Arc<AtomicBool>,
) -> (P::Server, ServeStats)
where
    P: Protocol,
    P::Msg: WireMsg,
    T: Transport,
{
    let my_id = NodeId::Server(me);
    let mut stats = ServeStats::default();
    let mut event: u64 = 0;

    let mut ctx: Ctx<P> = Ctx::new(my_id, event);
    automaton.on_start(&mut ctx);
    flush::<P, T>(&mut transport, my_id, ctx, &mut stats);

    while !stop.load(Ordering::Acquire) {
        let env = match transport.recv_timeout(Duration::from_millis(10)) {
            Ok(Some(env)) => env,
            Ok(None) => continue,
            Err(_) => break,
        };
        let msg = match P::Msg::from_wire(&env.payload) {
            Ok(m) => m,
            Err(_) => {
                stats.decode_errors += 1;
                continue;
            }
        };
        stats.msgs_in += 1;
        event += 1;
        let mut ctx: Ctx<P> = Ctx::new(my_id, event);
        automaton.on_message(env.from, msg, &mut ctx);
        flush::<P, T>(&mut transport, my_id, ctx, &mut stats);
    }
    (automaton, stats)
}

/// Runs `automata` as a *pool of worker threads* serving one server
/// identity `me` over one `transport` until `stop` is raised.
///
/// This is the concurrent-server entry point: every worker holds its own
/// automaton instance, but the instances share their state through a
/// lock-free backend (`shmem-store`), so the pool behaves as a single
/// server whose message handling parallelizes across cores. The
/// transport stays owned by the calling thread (transports are
/// single-owner): it feeds a shared inbox the workers drain, and drains
/// an outbox channel the workers fill with pre-encoded envelopes —
/// decode, protocol logic, and encode all run on worker threads.
///
/// Returns the worker automata (state intact, any one a representative
/// of the shared store) and the pool's merged counters.
pub fn serve_shared<P, T>(
    automata: Vec<P::Server>,
    me: ServerId,
    mut transport: T,
    stop: Arc<AtomicBool>,
) -> (Vec<P::Server>, ServeStats)
where
    P: Protocol,
    P::Msg: WireMsg,
    P::Server: Send,
    T: Transport,
{
    assert!(
        !automata.is_empty(),
        "a server pool needs at least one worker"
    );
    let my_id = NodeId::Server(me);
    let inbox: Mutex<VecDeque<Envelope>> = Mutex::new(VecDeque::new());
    let available = Condvar::new();
    let (out_tx, out_rx) = mpsc::channel::<Envelope>();

    std::thread::scope(|scope| {
        let handles: Vec<_> = automata
            .into_iter()
            .enumerate()
            .map(|(worker, mut automaton)| {
                let out_tx = out_tx.clone();
                let (inbox, available, stop) = (&inbox, &available, &stop);
                scope.spawn(move || {
                    let mut stats = ServeStats::default();
                    let mut event: u64 = 0;
                    let mut ctx: Ctx<P> = Ctx::new(my_id, event);
                    // Every worker runs on_start (per-instance init),
                    // but the pool is ONE logical server: only the
                    // first worker's start-up effects go to the wire.
                    // A protocol whose server emits on_start traffic
                    // must not have it multiplied by the pool size.
                    automaton.on_start(&mut ctx);
                    if worker == 0 {
                        enqueue::<P>(&out_tx, my_id, ctx, &mut stats);
                    } else {
                        let (outbox, responses) = ctx.into_effects();
                        assert!(
                            outbox.is_empty() && responses.is_empty(),
                            "pooled server on_start effects are emitted once, \
                             by the first worker only"
                        );
                    }
                    loop {
                        let env = {
                            let mut q = inbox.lock().expect("inbox poisoned");
                            loop {
                                if let Some(env) = q.pop_front() {
                                    break env;
                                }
                                if stop.load(Ordering::Acquire) {
                                    return (automaton, stats);
                                }
                                // Timed wait so a missed notification can
                                // never outlive the stop flag.
                                q = available
                                    .wait_timeout(q, Duration::from_millis(5))
                                    .expect("inbox poisoned")
                                    .0;
                            }
                        };
                        let msg = match P::Msg::from_wire(&env.payload) {
                            Ok(m) => m,
                            Err(_) => {
                                stats.decode_errors += 1;
                                continue;
                            }
                        };
                        stats.msgs_in += 1;
                        event += 1;
                        let mut ctx: Ctx<P> = Ctx::new(my_id, event);
                        automaton.on_message(env.from, msg, &mut ctx);
                        enqueue::<P>(&out_tx, my_id, ctx, &mut stats);
                    }
                })
            })
            .collect();

        // IO loop: the calling thread shovels inbound envelopes to the
        // workers and outbound envelopes to the wire.
        while !stop.load(Ordering::Acquire) {
            match transport.recv_timeout(Duration::from_millis(1)) {
                Ok(Some(env)) => {
                    inbox.lock().expect("inbox poisoned").push_back(env);
                    available.notify_one();
                }
                Ok(None) => {}
                Err(_) => {
                    stop.store(true, Ordering::Release);
                    break;
                }
            }
            for env in out_rx.try_iter() {
                // Best-effort: a dead peer just loses the message.
                let _ = transport.send(&env);
            }
        }
        available.notify_all();

        let mut pool = Vec::new();
        let mut stats = ServeStats::default();
        for h in handles {
            let (automaton, s) = h.join().expect("server worker panicked");
            pool.push(automaton);
            stats = stats.merge(s);
        }
        // Workers are joined; flush their final effects.
        drop(out_tx);
        for env in out_rx.try_iter() {
            let _ = transport.send(&env);
        }
        (pool, stats)
    })
}

/// Encodes one event's buffered effects onto the pool's outbox channel.
fn enqueue<P>(out: &Sender<Envelope>, me: NodeId, ctx: Ctx<P>, stats: &mut ServeStats)
where
    P: Protocol,
    P::Msg: WireMsg,
{
    let (outbox, responses) = ctx.into_effects();
    debug_assert!(responses.is_empty(), "servers never respond to operations");
    for (to, msg) in outbox {
        stats.msgs_out += 1;
        stats.wire_bytes_out += P::msg_wire_bytes(&msg);
        let env = Envelope {
            from: me,
            to,
            payload: msg.to_wire(),
        };
        // The IO thread drains this channel; if it exited first (stop
        // raced the last handler), the message is lost like any other
        // best-effort send.
        let _ = out.send(env);
    }
}

fn flush<P, T>(transport: &mut T, me: NodeId, ctx: Ctx<P>, stats: &mut ServeStats)
where
    P: Protocol,
    P::Msg: WireMsg,
    T: Transport,
{
    let (outbox, responses) = ctx.into_effects();
    debug_assert!(responses.is_empty(), "servers never respond to operations");
    for (to, msg) in outbox {
        stats.msgs_out += 1;
        stats.wire_bytes_out += P::msg_wire_bytes(&msg);
        let env = Envelope {
            from: me,
            to,
            payload: msg.to_wire(),
        };
        // Best-effort: a dead peer just loses the message.
        let _ = transport.send(&env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcHub;
    use shmem_algorithms::abd::ShardedAbd;
    use shmem_algorithms::abd::ShardedAbdServer;
    use shmem_algorithms::multikey::ShardMap;
    use shmem_algorithms::value::ValueSpec;
    use shmem_sim::ClientId;
    use std::thread;

    #[test]
    fn serves_a_query_and_survives_garbage() {
        let hub = InProcHub::new();
        let server_ep = hub.endpoint(&[NodeId::Server(ServerId(0))]);
        let mut client_ep = hub.endpoint(&[NodeId::Client(ClientId(0))]);
        let stop = Arc::new(AtomicBool::new(false));

        let automaton = ShardedAbdServer::new(0, ValueSpec::from_bits(64.0));
        let handle = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                serve_until::<ShardedAbd, _>(automaton, ServerId(0), server_ep, stop)
            })
        };

        // Garbage payload first: must be counted, not fatal.
        client_ep
            .send(&Envelope {
                from: NodeId::Client(ClientId(0)),
                to: NodeId::Server(ServerId(0)),
                payload: vec![0xff; 9],
            })
            .unwrap();

        // Then a real phase-1 query.
        use crate::wire::WireMsg;
        use shmem_algorithms::abd::ShardedAbdMsg;
        let map = ShardMap::full(1);
        let _ = map;
        let query = ShardedAbdMsg::Query {
            rid: 1,
            keys: vec![7],
        };
        client_ep
            .send(&Envelope {
                from: NodeId::Client(ClientId(0)),
                to: NodeId::Server(ServerId(0)),
                payload: query.to_wire(),
            })
            .unwrap();

        let reply = client_ep
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("server replies");
        let msg = ShardedAbdMsg::from_wire(&reply.payload).unwrap();
        assert!(matches!(msg, ShardedAbdMsg::QueryResp { rid: 1, .. }));

        stop.store(true, Ordering::Release);
        let (_automaton, stats) = handle.join().unwrap();
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.msgs_in, 1);
        assert_eq!(stats.msgs_out, 1);
    }

    /// A pooled server: workers sharing one lock-free store behave as a
    /// single server — a `Store` handled by one worker is visible to a
    /// `Query` handled by another, and the pool's counters add up.
    #[test]
    fn pooled_workers_share_one_store() {
        use shmem_algorithms::abd::ShardedAbdMsg;
        use shmem_algorithms::abd::ShardedAbdServerOn;
        use shmem_algorithms::tag::Tag;
        use shmem_store::reg::{RegStore, StoreAbdBackend};
        use shmem_store::StoreAbd;

        let hub = InProcHub::new();
        let server_ep = hub.endpoint(&[NodeId::Server(ServerId(0))]);
        let mut client_ep = hub.endpoint(&[NodeId::Client(ClientId(0))]);
        let stop = Arc::new(AtomicBool::new(false));

        let store = std::sync::Arc::new(RegStore::new());
        let pool: Vec<_> = (0..4)
            .map(|_| {
                ShardedAbdServerOn::with_backend(
                    0,
                    ValueSpec::from_bits(64.0),
                    StoreAbdBackend::shared(&store),
                )
            })
            .collect();
        let handle = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || serve_shared::<StoreAbd, _>(pool, ServerId(0), server_ep, stop))
        };

        let send = |client_ep: &mut crate::transport::InProcEndpoint, msg: &ShardedAbdMsg| {
            client_ep
                .send(&Envelope {
                    from: NodeId::Client(ClientId(0)),
                    to: NodeId::Server(ServerId(0)),
                    payload: msg.to_wire(),
                })
                .unwrap();
        };
        let recv = |client_ep: &mut crate::transport::InProcEndpoint| {
            let reply = client_ep
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("server replies");
            ShardedAbdMsg::from_wire(&reply.payload).unwrap()
        };

        // Phase-2 store, then repeated phase-1 queries: whichever worker
        // picks each message up must see the stored version.
        let tag = Tag::ZERO.successor(0);
        send(
            &mut client_ep,
            &ShardedAbdMsg::Store {
                rid: 1,
                items: vec![(7, tag, 42)],
            },
        );
        assert!(matches!(
            recv(&mut client_ep),
            ShardedAbdMsg::StoreAck { rid: 1 }
        ));
        for rid in 2..10u64 {
            send(&mut client_ep, &ShardedAbdMsg::Query { rid, keys: vec![7] });
            match recv(&mut client_ep) {
                ShardedAbdMsg::QueryResp { rid: r, items } => {
                    assert_eq!(r, rid);
                    assert_eq!(items, vec![(7, tag, 42)]);
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }

        stop.store(true, Ordering::Release);
        let (pool, stats) = handle.join().unwrap();
        assert_eq!(pool.len(), 4);
        assert_eq!(stats.msgs_in, 9);
        assert_eq!(stats.msgs_out, 9);
        // Every worker sees the shared key through its own backend.
        for s in &pool {
            assert_eq!(s.entry(7), (tag, 42));
        }
    }
}
