//! Larger-geometry sanity: the algorithms and the machinery at the
//! paper's N = 21 scale and beyond.

use shmem_emulation::algorithms::harness::{run_concurrent_workload, AbdCluster, CasCluster};
use shmem_emulation::algorithms::value::ValueSpec;
use shmem_emulation::bounds::{SystemParams, ValueDomain};
use shmem_emulation::core::audit::StorageAudit;
use shmem_emulation::spec::check_atomic;

fn spec64() -> ValueSpec {
    ValueSpec::from_bits(64.0)
}

#[test]
fn abd_at_figure1_geometry() {
    // N = 21, f = 10: the paper's plotted system.
    let mut c = AbdCluster::new(21, 10, 4, spec64());
    c.sim.fail_last_servers(10);
    run_concurrent_workload(&mut c, 2, 2, 2, 77).expect("workload survives f failures");
    check_atomic(&c.history()).expect("atomic");
    let p = SystemParams::new(21, 10).unwrap();
    let report = StorageAudit::new("abd", p, ValueDomain::from_bits(64), 2).assess(&c.storage());
    assert!(report.lower_bounds_respected(), "{report}");
    assert!((report.measured_total_normalized - 21.0).abs() < 1e-9);
}

#[test]
fn cas_wide_code_geometry() {
    // N = 21, f = 4: k = 13-wide code, quorum 17.
    let mut c = CasCluster::new(21, 4, 4, spec64());
    c.sim.fail_last_servers(4);
    run_concurrent_workload(&mut c, 2, 2, 2, 78).expect("workload survives f failures");
    check_atomic(&c.history()).expect("atomic");
    // Peak storage: at most (2 writers + initial + in-flight) versions of
    // 21/13 value-sizes each — far below replication.
    let total = c.storage().peak_total_bits / 64.0;
    assert!(
        total < 21.0,
        "coded at wide k must beat full replication: {total}"
    );
}

#[test]
fn abd_fifty_servers() {
    let mut c = AbdCluster::new(51, 25, 2, spec64());
    c.write(0, 12345).unwrap();
    assert_eq!(c.read(1).unwrap(), 12345);
    c.sim.fail_last_servers(25);
    c.write(0, 54321).unwrap();
    assert_eq!(c.read(1).unwrap(), 54321);
}

#[test]
fn proof_machinery_at_n9() {
    // The full Theorem 4.1 pipeline at N = 9, f = 4 (bigger state space
    // than the unit tests' N = 5).
    use shmem_emulation::algorithms::abd::{Abd, AbdClient, AbdServer};
    use shmem_emulation::core::counting::pairwise_counting;
    use shmem_emulation::sim::{ClientId, Sim, SimConfig};
    let make = || {
        let spec = ValueSpec::from_cardinality(4);
        Sim::<Abd>::new(
            SimConfig::without_gossip(),
            (0..9).map(|_| AbdServer::new(0, spec)).collect(),
            (0..2).map(|c| AbdClient::new(9, c)).collect(),
        )
    };
    let report = pairwise_counting(make, ClientId(0), ClientId(1), 4, &[1, 2, 3], false, 1);
    assert!(report.injective, "{report:?}");
    assert!(report.inequality_holds());
}

#[test]
fn hundred_op_history_checks_fast() {
    // The memoized atomicity checker at its documented 128-op ceiling
    // region: 96 sequential-ish ops finish instantly.
    let mut c = AbdCluster::new(5, 2, 4, spec64());
    for round in 0..12 {
        run_concurrent_workload(&mut c, 2, 2, 1, round).expect("round");
    }
    let h = c.history();
    assert!(h.len() >= 48, "len={}", h.len());
    let start = std::time::Instant::now();
    check_atomic(&h).expect("atomic");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "checker too slow: {:?}",
        start.elapsed()
    );
}
