//! Workload generators: reproducible operation patterns for storage
//! measurements and consistency sweeps.
//!
//! The paper's storage costs are driven by the number of *active writes*
//! `ν`; these generators shape that number deliberately — steady
//! concurrency, bursts, ramps, and a crash-prone writer whose abandoned
//! writes stay active forever (the "failed write operations whose codeword
//! symbols have not been propagated" scenario of the introduction).

use crate::harness::{Cluster, MultiCluster};
use crate::multikey::{Key, MultiInv, MultiResp};
use crate::reg::{RegInv, RegResp};
use shmem_sim::{ClientId, NodeId, Protocol, RunError};
use shmem_util::DetRng;

/// Outcome of a workload run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Operations invoked.
    pub invoked: usize,
    /// Operations completed.
    pub completed: usize,
    /// Steps executed.
    pub steps: u64,
    /// The measured `ν`: the maximum number of concurrently active writes
    /// (per Section 2.3's definition, computed from the history).
    pub measured_nu: usize,
}

fn drain<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &mut Cluster<P>,
    rng: &mut DetRng,
    watch: &[u32],
) -> Result<u64, RunError> {
    let mut steps = 0u64;
    let limit = cluster.sim.config().step_limit;
    loop {
        let open = watch.iter().any(|&c| cluster.sim.has_open_op(ClientId(c)));
        if !open {
            return Ok(steps);
        }
        if cluster
            .sim
            .step_with(|opts| rng.gen_range(0..opts.len()))
            .is_none()
        {
            return Err(RunError::Stuck {
                client: ClientId(watch[0]),
            });
        }
        steps += 1;
        if steps > limit {
            return Err(RunError::StepLimit { steps: limit });
        }
    }
}

fn report<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &Cluster<P>,
    steps: u64,
) -> WorkloadReport {
    let h = cluster.history();
    WorkloadReport {
        invoked: h.len(),
        completed: h.ops().iter().filter(|o| o.is_complete()).count(),
        steps,
        measured_nu: h.max_active_writes(),
    }
}

/// Bursts: all `writers` write simultaneously, the system drains, repeat.
/// Produces `ν ≈ writers` during each burst and `ν = 0` between bursts.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_bursty<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &mut Cluster<P>,
    writers: u32,
    bursts: u32,
    seed: u64,
) -> Result<WorkloadReport, RunError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut next = 1u64;
    let mut steps = 0;
    let watch: Vec<u32> = (0..writers).collect();
    for _ in 0..bursts {
        for w in 0..writers {
            cluster.begin(w, RegInv::Write(next))?;
            next += 1;
        }
        steps += drain(cluster, &mut rng, &watch)?;
    }
    Ok(report(cluster, steps))
}

/// Ramp: round `r` has `r + 1` concurrent writers (up to `max_writers`),
/// so the measured `ν` climbs the Figure 1 x-axis within one execution.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_ramp<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &mut Cluster<P>,
    max_writers: u32,
    seed: u64,
) -> Result<WorkloadReport, RunError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut next = 1u64;
    let mut steps = 0;
    for round in 1..=max_writers {
        let watch: Vec<u32> = (0..round).collect();
        for w in 0..round {
            cluster.begin(w, RegInv::Write(next))?;
            next += 1;
        }
        steps += drain(cluster, &mut rng, &watch)?;
    }
    Ok(report(cluster, steps))
}

/// A crash-prone writer: in each of `rounds`, writer 0 begins a write and
/// crashes after `partial_steps` steps, leaving the write active forever;
/// a fresh writer then completes a write and a reader reads. Models the
/// introduction's "failed write operations" that erasure-coded servers
/// must keep symbols for.
///
/// Uses clients `0..rounds` as the crashing writers (a crashed client
/// cannot be reused), client `rounds` as the surviving writer and client
/// `rounds + 1` as the reader.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_crashy<P: Protocol<Inv = RegInv, Resp = RegResp>>(
    cluster: &mut Cluster<P>,
    rounds: u32,
    partial_steps: u32,
    seed: u64,
) -> Result<WorkloadReport, RunError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut steps = 0;
    let survivor = rounds;
    let reader = rounds + 1;
    for round in 0..rounds {
        let next = u64::from(round) + 1;
        cluster.begin(round, RegInv::Write(1000 + u64::from(round)))?;
        for _ in 0..partial_steps {
            if cluster
                .sim
                .step_with(|opts| rng.gen_range(0..opts.len()))
                .is_none()
            {
                break;
            }
            steps += 1;
        }
        cluster.sim.fail(NodeId::client(round));
        // A surviving writer and reader still make progress.
        cluster.begin(survivor, RegInv::Write(next))?;
        steps += drain(cluster, &mut rng, &[survivor])?;
        cluster.begin(reader, RegInv::Read)?;
        steps += drain(cluster, &mut rng, &[reader])?;
    }
    Ok(report(cluster, steps))
}

/// A Zipfian key-popularity distribution over `0..universe`: key `i` is
/// drawn with probability proportional to `1/(i+1)^theta`. Deterministic
/// and seed-stable — the weight table is integer-quantized once at
/// construction, and sampling uses only [`DetRng::weighted_index`], so a
/// given `(universe, theta, seed)` triple reproduces the same key stream
/// on every platform.
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    weights: Vec<u64>,
}

impl ZipfKeys {
    /// Quantization scale for the most popular key's weight. Large enough
    /// that even steep `theta` keeps distinct ranks distinct until the
    /// clamp at weight 1.
    const SCALE: f64 = 1_000_000.0;

    /// A distribution over keys `0..universe` with exponent `theta`
    /// (`theta = 0` is uniform; ~1 is the classic web-workload skew).
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or `theta` is negative or non-finite.
    pub fn new(universe: u64, theta: f64) -> ZipfKeys {
        assert!(universe > 0, "need a nonempty key universe");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and nonnegative"
        );
        let weights = (0..universe)
            .map(|i| {
                (Self::SCALE / ((i + 1) as f64).powf(theta))
                    .round()
                    .max(1.0) as u64
            })
            .collect();
        ZipfKeys { weights }
    }

    /// The key universe size.
    pub fn universe(&self) -> u64 {
        self.weights.len() as u64
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut DetRng) -> Key {
        rng.weighted_index(&self.weights) as Key
    }

    /// Draws a batch of `size` *distinct* keys — the shape batched
    /// invocations require. Popular keys saturate first, so small batches
    /// stay skewed while `size → universe` degrades gracefully to a
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the key universe.
    pub fn sample_batch(&self, rng: &mut DetRng, size: usize) -> Vec<Key> {
        assert!(
            size as u64 <= self.universe(),
            "batch of {size} distinct keys exceeds universe {}",
            self.universe()
        );
        let mut picked = Vec::with_capacity(size);
        while picked.len() < size {
            let k = self.sample(rng);
            if !picked.contains(&k) {
                picked.push(k);
            }
        }
        picked
    }
}

/// A reproducible batched multi-key workload: each of `rounds`, every
/// writer writes a batch of `batch` Zipf-drawn distinct keys and every
/// reader reads such a batch, interleaved under a seeded random schedule.
///
/// Returns the total scheduler steps.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_zipf_batches<P: Protocol<Inv = MultiInv, Resp = MultiResp>>(
    cluster: &mut MultiCluster<P>,
    zipf: &ZipfKeys,
    writers: u32,
    readers: u32,
    batch: usize,
    rounds: u32,
    seed: u64,
) -> Result<u64, RunError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut next_value = 1u64;
    let mut steps = 0u64;
    let limit = cluster.sim.config().step_limit;
    for _ in 0..rounds {
        for w in 0..writers {
            let keys = zipf.sample_batch(&mut rng, batch);
            let pairs: Vec<(Key, u64)> = keys
                .iter()
                .map(|&k| {
                    next_value += 1;
                    (k, next_value)
                })
                .collect();
            cluster.begin(w, MultiInv::writes(&pairs))?;
        }
        for r in 0..readers {
            let keys = zipf.sample_batch(&mut rng, batch);
            cluster.begin(writers + r, MultiInv::reads(&keys))?;
        }
        let mut budget = limit;
        loop {
            let open = (0..writers + readers).any(|c| cluster.sim.has_open_op(ClientId(c)));
            if !open {
                break;
            }
            if cluster
                .sim
                .step_with(|opts| rng.gen_range(0..opts.len()))
                .is_none()
            {
                return Err(RunError::Stuck {
                    client: ClientId(0),
                });
            }
            steps += 1;
            budget -= 1;
            if budget == 0 {
                return Err(RunError::StepLimit { steps: limit });
            }
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{AbdCluster, CasCluster};
    use crate::value::ValueSpec;
    use shmem_spec::check_atomic;

    fn spec64() -> ValueSpec {
        ValueSpec::from_bits(64.0)
    }

    #[test]
    fn bursty_measures_full_concurrency() {
        let mut c = AbdCluster::new(5, 2, 3, spec64());
        let r = run_bursty(&mut c, 3, 2, 1).unwrap();
        assert_eq!(r.invoked, 6);
        assert_eq!(r.completed, 6);
        assert_eq!(r.measured_nu, 3);
        assert!(check_atomic(&c.history()).is_ok());
    }

    #[test]
    fn ramp_climbs_concurrency() {
        let mut c = AbdCluster::new(7, 3, 4, spec64());
        let r = run_ramp(&mut c, 4, 2).unwrap();
        assert_eq!(r.invoked, 1 + 2 + 3 + 4);
        assert_eq!(r.measured_nu, 4);
        assert!(check_atomic(&c.history()).is_ok());
    }

    #[test]
    fn crashy_leaves_writes_active_but_stays_atomic() {
        let mut c = AbdCluster::new(5, 2, 5, spec64());
        let r = run_crashy(&mut c, 3, 4, 3).unwrap();
        // The 3 crashed writes never complete.
        assert_eq!(r.invoked - r.completed, 3);
        assert!(check_atomic(&c.history()).is_ok());
    }

    #[test]
    fn crashy_cas_accumulates_orphan_versions() {
        // Abandoned pre-writes leave orphan symbols at the servers (plain
        // CAS has no GC): exactly the storage blow-up the paper's
        // introduction describes.
        let mut c = CasCluster::new(5, 1, 5, spec64());
        let before = c.storage().peak_total_bits;
        run_crashy(&mut c, 3, 20, 5).unwrap();
        let after = c.storage().peak_total_bits;
        assert!(after > before, "orphans must consume storage");
        assert!(check_atomic(&c.history()).is_ok());
    }

    #[test]
    fn workload_reports_are_deterministic() {
        let run = || {
            let mut c = AbdCluster::new(5, 2, 3, spec64());
            run_bursty(&mut c, 3, 2, 11).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zipf_is_seed_stable_and_skewed() {
        let z = ZipfKeys::new(64, 0.99);
        let draw = |seed| {
            let mut rng = DetRng::seed_from_u64(seed);
            (0..1000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        // Same seed → same stream; different seed → different stream.
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // Skew: key 0 must dominate any deep-tail key by a wide margin.
        let stream = draw(7);
        let count = |k: Key| stream.iter().filter(|&&x| x == k).count();
        assert!(count(0) > 10 * count(60).max(1), "not skewed: {}", count(0));
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = ZipfKeys::new(4, 0.0);
        let mut rng = DetRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "skewed: {counts:?}");
    }

    #[test]
    fn zipf_batches_are_distinct_keys() {
        let z = ZipfKeys::new(16, 1.2);
        let mut rng = DetRng::seed_from_u64(5);
        for _ in 0..50 {
            let batch = z.sample_batch(&mut rng, 8);
            let mut sorted = batch.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), batch.len());
        }
        // A full-universe batch is a permutation.
        let full = z.sample_batch(&mut rng, 16);
        let mut sorted = full.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_batched_workload_runs_and_projects_atomically() {
        use crate::harness::ShardedAbdCluster;
        use crate::multikey::ShardMap;
        let map = ShardMap::new(6, 2, 3);
        let mut c = ShardedAbdCluster::new(map, 1, 4, spec64());
        let zipf = ZipfKeys::new(32, 0.99);
        run_zipf_batches(&mut c, &zipf, 2, 2, 4, 3, 17).unwrap();
        let histories = c.histories();
        assert!(!histories.is_empty());
        for (key, h) in histories {
            assert!(check_atomic(&h).is_ok(), "key {key}");
        }
    }
}
