//! The slab codec: a reusable `[n, k]` handle bundling a precomputed
//! encode plan, an LRU of decode plans, and cache statistics.
//!
//! [`Codec`] is the operational entry point the shared-memory algorithms
//! use. It wraps the [`ReedSolomon`] reference code with:
//!
//! * a single [`EncodePlan`] built at construction — every encode streams
//!   through precomputed nibble tables, no generator rebuild;
//! * a small LRU of [`DecodePlan`]s keyed by the *sorted* surviving-index
//!   set, so the Vandermonde submatrix is inverted once per erasure
//!   pattern instead of once per call (sorting makes the key order-
//!   insensitive: the decoded payload is the unique solution of the
//!   linear system, independent of share supply order);
//! * hit/miss counters surfaced as [`CodecStats`] (the `tab-codec`
//!   figure records the hit rate);
//! * a process-wide registry, [`Codec::shared`], memoizing handles by
//!   `(field, n, k)` so callers like `cas.rs` stop rebuilding codecs per
//!   operation.
//!
//! Output is byte-identical to [`ReedSolomon::encode_bytes`] /
//! [`ReedSolomon::decode_bytes`] — same striping layout, same error
//! conditions in the same order — verified by the `slab_parity` suite.

use crate::kernel::SlabKernel;
use crate::plan::{default_workers, DecodePlan, EncodePlan};
use crate::rs::{CodeError, ReedSolomon};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Decode plans kept per codec. Erasure patterns in a run are few (the
/// same `k`-subset of servers keeps answering), so a handful suffice.
const DECODE_PLAN_CACHE_CAP: usize = 32;

/// Payloads below this stay on the sequential path; thread hand-off only
/// pays for itself on big slabs.
const PARALLEL_THRESHOLD_BYTES: usize = 256 * 1024;

/// Decode-plan cache counters for one codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecStats {
    /// Decodes served by a cached plan.
    pub decode_plan_hits: u64,
    /// Decodes that had to invert a Vandermonde submatrix.
    pub decode_plan_misses: u64,
}

impl CodecStats {
    /// Fraction of decodes served from the plan cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.decode_plan_hits + self.decode_plan_misses;
        if total == 0 {
            0.0
        } else {
            self.decode_plan_hits as f64 / total as f64
        }
    }
}

/// One plan-cache slot: the sorted surviving-index key and its plan.
type CachedPlan<F> = (Vec<usize>, Arc<DecodePlan<F>>);

/// An `[n, k]` slab codec: precomputed encode plan + decode-plan LRU.
pub struct Codec<F: SlabKernel> {
    code: ReedSolomon<F>,
    plan: EncodePlan<F>,
    // Most-recently-used first; linear scan is fine at cap 32.
    cache: Mutex<Vec<CachedPlan<F>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<F: SlabKernel> Codec<F> {
    /// Builds a codec for an `[n, k]` code.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] under the same conditions as
    /// [`ReedSolomon::new`].
    pub fn new(n: usize, k: usize) -> Result<Codec<F>, CodeError> {
        let code = ReedSolomon::new(n, k)?;
        let plan = EncodePlan::new(&code);
        Ok(Codec {
            code,
            plan,
            cache: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The process-wide memoized codec for `(F, n, k)` — built once,
    /// shared by every caller thereafter, so hot paths never rebuild
    /// generators or re-warm plan caches.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] on the first request for an illegal
    /// geometry (illegal geometries are not cached).
    pub fn shared(n: usize, k: usize) -> Result<Arc<Codec<F>>, CodeError> {
        type Registry = Mutex<HashMap<(TypeId, usize, usize), Arc<dyn Any + Send + Sync>>>;
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (TypeId::of::<F>(), n, k);
        let mut map = registry.lock().expect("codec registry poisoned");
        if let Some(existing) = map.get(&key) {
            return Ok(Arc::clone(existing)
                .downcast::<Codec<F>>()
                .expect("registry entry has the keyed codec type"));
        }
        let codec = Arc::new(Codec::<F>::new(n, k)?);
        map.insert(key, codec.clone() as Arc<dyn Any + Send + Sync>);
        Ok(codec)
    }

    /// Codeword length `n`.
    pub fn n(&self) -> usize {
        self.code.n()
    }

    /// Data dimension `k`.
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// The underlying reference code.
    pub fn code(&self) -> &ReedSolomon<F> {
        &self.code
    }

    /// Snapshot of the decode-plan cache counters.
    pub fn stats(&self) -> CodecStats {
        CodecStats {
            decode_plan_hits: self.hits.load(Ordering::Relaxed),
            decode_plan_misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Encodes a byte payload into `n` share slabs, byte-identical to
    /// [`ReedSolomon::encode_bytes`]. Large payloads fan out across
    /// worker threads automatically.
    pub fn encode_bytes(&self, data: &[u8]) -> Vec<Vec<u8>> {
        self.encode_bytes_with_workers(data, auto_workers(data.len()))
    }

    /// [`Codec::encode_bytes`] with an explicit worker count (1 =
    /// sequential). Any count yields identical bytes.
    pub fn encode_bytes_with_workers(&self, data: &[u8], workers: usize) -> Vec<Vec<u8>> {
        self.plan.encode_with_workers(data, workers)
    }

    /// Decodes byte shares into the first `len` payload bytes,
    /// byte-identical to [`ReedSolomon::decode_bytes`] — same error
    /// conditions in the same order. Extras beyond the first `k` shares
    /// are length-checked but otherwise ignored, as in the reference.
    ///
    /// # Errors
    ///
    /// Same as [`ReedSolomon::decode_bytes`].
    pub fn decode_bytes(
        &self,
        shares: &[(usize, Vec<u8>)],
        len: usize,
    ) -> Result<Vec<u8>, CodeError> {
        self.decode_bytes_with_workers(shares, len, auto_workers(len))
    }

    /// [`Codec::decode_bytes`] with an explicit worker count (1 =
    /// sequential). Any count yields identical bytes.
    pub fn decode_bytes_with_workers(
        &self,
        shares: &[(usize, Vec<u8>)],
        len: usize,
        workers: usize,
    ) -> Result<Vec<u8>, CodeError> {
        let (n, k, sb) = (self.code.n(), self.code.k(), F::SYMBOL_BYTES);
        if shares.len() < k {
            return Err(CodeError::NotEnoughShares {
                have: shares.len(),
                need: k,
            });
        }
        let share_bytes = shares[0].1.len();
        if shares.iter().any(|(_, s)| s.len() != share_bytes)
            || !share_bytes.is_multiple_of(sb)
            || (share_bytes / sb) * k * sb < len
        {
            return Err(CodeError::LengthMismatch);
        }
        let used = &shares[..k];
        let mut seen = vec![false; n];
        for &(idx, _) in used {
            if idx >= n {
                return Err(CodeError::IndexOutOfRange { index: idx, n });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateIndex { index: idx });
            }
            seen[idx] = true;
        }
        // Canonicalize to sorted index order so every permutation of the
        // same erasure pattern shares one cached plan.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&p| used[p].0);
        let rows: Vec<usize> = order.iter().map(|&p| used[p].0).collect();
        let plan = self.plan_for(&rows)?;
        let slabs: Vec<&[u8]> = order.iter().map(|&p| used[p].1.as_slice()).collect();
        Ok(plan.decode_with_workers(&slabs, len, workers))
    }

    /// Fetches (or builds and caches) the decode plan for a sorted,
    /// validated index set.
    fn plan_for(&self, rows: &[usize]) -> Result<Arc<DecodePlan<F>>, CodeError> {
        let mut cache = self.cache.lock().expect("decode-plan cache poisoned");
        if let Some(pos) = cache.iter().position(|(key, _)| key == rows) {
            let entry = cache.remove(pos);
            let plan = entry.1.clone();
            cache.insert(0, entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        let plan = Arc::new(DecodePlan::new(&self.code, rows)?);
        cache.insert(0, (rows.to_vec(), plan.clone()));
        cache.truncate(DECODE_PLAN_CACHE_CAP);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(plan)
    }
}

impl<F: SlabKernel> fmt::Debug for Codec<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Codec[n={}, k={}]", self.code.n(), self.code.k())
    }
}

/// Worker count for a payload: sequential below the threshold, machine-
/// sized above it.
fn auto_workers(len: usize) -> usize {
    if len < PARALLEL_THRESHOLD_BYTES {
        1
    } else {
        default_workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::Gf256;
    use crate::gf2p16::Gf2p16;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 % 257) as u8).collect()
    }

    fn round_trip<F: SlabKernel>(codec: &Codec<F>, data: &[u8]) {
        let shares = codec.encode_bytes(data);
        let picked: Vec<(usize, Vec<u8>)> =
            [5, 1, 6].iter().map(|&i| (i, shares[i].clone())).collect();
        assert_eq!(codec.decode_bytes(&picked, data.len()).unwrap(), data);
    }

    #[test]
    fn codec_round_trips_both_fields() {
        let data = payload(100);
        round_trip(&Codec::<Gf256>::new(7, 3).unwrap(), &data);
        round_trip(&Codec::<Gf2p16>::new(7, 3).unwrap(), &data);
    }

    #[test]
    fn matches_reference_paths() {
        let codec = Codec::<Gf256>::new(21, 11).unwrap();
        let reference = ReedSolomon::<Gf256>::new(21, 11).unwrap();
        for len in [0, 1, 10, 11, 64, 1000] {
            let data = payload(len);
            let slab = codec.encode_bytes(&data);
            assert_eq!(slab, reference.encode_bytes(&data), "encode len={len}");
            let picked: Vec<(usize, Vec<u8>)> = (5..16).map(|i| (i, slab[i].clone())).collect();
            assert_eq!(
                codec.decode_bytes(&picked, len).unwrap(),
                reference.decode_bytes(&picked, len).unwrap(),
                "decode len={len}"
            );
        }
    }

    #[test]
    fn error_semantics_match_reference() {
        let codec = Codec::<Gf256>::new(5, 3).unwrap();
        let reference = ReedSolomon::<Gf256>::new(5, 3).unwrap();
        let shares = codec.encode_bytes(b"abcdefgh");
        let cases: Vec<Vec<(usize, Vec<u8>)>> = vec![
            // too few
            vec![(0, shares[0].clone())],
            // duplicate index
            vec![
                (0, shares[0].clone()),
                (0, shares[0].clone()),
                (1, shares[1].clone()),
            ],
            // out of range
            vec![
                (9, shares[0].clone()),
                (1, shares[1].clone()),
                (2, shares[2].clone()),
            ],
            // ragged lengths
            vec![
                (0, shares[0].clone()),
                (1, shares[1][..2].to_vec()),
                (2, shares[2].clone()),
            ],
        ];
        for (i, case) in cases.iter().enumerate() {
            assert_eq!(
                codec.decode_bytes(case, 8),
                reference.decode_bytes(case, 8),
                "case {i}"
            );
        }
        // Claiming more bytes than the shares carry.
        let full: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i, shares[i].clone())).collect();
        assert_eq!(
            codec.decode_bytes(&full, 1000),
            reference.decode_bytes(&full, 1000)
        );
    }

    #[test]
    fn plan_cache_hits_and_evicts() {
        let codec = Codec::<Gf256>::new(6, 2).unwrap();
        let data = payload(40);
        let shares = codec.encode_bytes(&data);
        let pick = |a: usize, b: usize| vec![(a, shares[a].clone()), (b, shares[b].clone())];
        codec.decode_bytes(&pick(0, 1), 40).unwrap();
        assert_eq!(codec.stats().decode_plan_misses, 1);
        // Same pattern, either supply order: one plan.
        codec.decode_bytes(&pick(1, 0), 40).unwrap();
        codec.decode_bytes(&pick(0, 1), 40).unwrap();
        assert_eq!(
            codec.stats(),
            CodecStats {
                decode_plan_hits: 2,
                decode_plan_misses: 1
            }
        );
        assert!((codec.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Repeatedly cycle every 2-subset of 6 shares; all 15 patterns fit
        // in the cache, and (0, 1) was already cached by the warm-up
        // decodes, so: 14 new misses, then pure hits.
        let mut patterns = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                patterns.push((a, b));
            }
        }
        for _ in 0..3 {
            for &(a, b) in &patterns {
                codec.decode_bytes(&pick(a, b), 40).unwrap();
            }
        }
        let stats = codec.stats();
        assert!(stats.decode_plan_hits > 2);
        assert_eq!(stats.decode_plan_misses, 1 + 14);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let codec = Codec::<Gf256>::new(12, 2).unwrap();
        let data = payload(16);
        let shares = codec.encode_bytes(&data);
        let pick = |a: usize, b: usize| vec![(a, shares[a].clone()), (b, shares[b].clone())];
        // Fill well past the 32-entry cap (C(12, 2) = 66 patterns), then
        // revisit the very first pattern: it must have been evicted.
        codec.decode_bytes(&pick(0, 1), 16).unwrap();
        for a in 0..12 {
            for b in (a + 1)..12 {
                codec.decode_bytes(&pick(a, b), 16).unwrap();
            }
        }
        let before = codec.stats().decode_plan_misses;
        codec.decode_bytes(&pick(0, 1), 16).unwrap();
        assert_eq!(codec.stats().decode_plan_misses, before + 1);
    }

    #[test]
    fn shared_registry_memoizes_per_geometry_and_field() {
        let a = Codec::<Gf256>::shared(9, 4).unwrap();
        let b = Codec::<Gf256>::shared(9, 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = Codec::<Gf256>::shared(9, 5).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Same geometry, different field: distinct codec.
        let wide = Codec::<Gf2p16>::shared(9, 4).unwrap();
        assert_eq!(wide.n(), 9);
        // Illegal geometry errors and is not cached.
        assert!(Codec::<Gf256>::shared(3, 9).is_err());
        assert!(Codec::<Gf256>::shared(3, 9).is_err());
    }

    #[test]
    fn parallel_decode_identical_to_sequential() {
        let codec = Codec::<Gf256>::new(21, 11).unwrap();
        let data = payload(400_000);
        let shares = codec.encode_bytes_with_workers(&data, 4);
        assert_eq!(shares, codec.encode_bytes_with_workers(&data, 1));
        let picked: Vec<(usize, Vec<u8>)> = (3..14).map(|i| (i, shares[i].clone())).collect();
        let seq = codec
            .decode_bytes_with_workers(&picked, data.len(), 1)
            .unwrap();
        assert_eq!(seq, data);
        assert_eq!(
            codec
                .decode_bytes_with_workers(&picked, data.len(), 4)
                .unwrap(),
            seq
        );
    }
}
