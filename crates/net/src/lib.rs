//! Run the shared-memory emulations over a real network.
//!
//! The simulator (`shmem-sim`) executes the ABD/CAS/hashed automata
//! under an adversarial scheduler; this crate executes the *same,
//! unchanged* automata over actual message transports — in-process
//! channels or real TCP sockets — and proves the two worlds equivalent
//! by feeding net-mode invocation/response histories to the same
//! `shmem-spec` atomicity checkers the simulator uses.
//!
//! Layers, bottom up:
//!
//! * [`wire`] — a strict binary codec for every protocol message type
//!   (`decode(encode(m)) == m`, hostile input rejected as errors).
//! * [`frame`] — length-prefixed frames with source/destination routing.
//! * [`transport`] — the [`transport::Transport`] trait and the
//!   in-process hub backend.
//! * [`corrupt`] — the Byzantine corruption seam: a transport decorator
//!   that tampers value-bearing payloads post-codec, driven by the same
//!   protocol hooks and salts as the simulator's adversary.
//! * [`tcp`] — the TCP backend: listener + reader threads server-side, a
//!   reconnecting connection pool with bounded backoff client-side.
//! * [`serve`] — the server event loop adapting a `Protocol` automaton
//!   to a transport via the `Ctx::new` hook.
//! * [`client`] — logical clients multiplexed over worker threads, with
//!   retransmission and retire-on-timeout (crash-stop clients).
//! * [`harness`] — cluster orchestration, fault injection (kill/restart
//!   servers, sever connections), load generation, storage probes.
//!
//! The `shmem-server` / `shmem-client` binaries expose the same pieces
//! on the command line.

pub mod client;
pub mod corrupt;
pub mod error;
pub mod frame;
pub mod harness;
pub mod serve;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use client::{LoadConfig, WorkerReport};
pub use corrupt::{CorruptingTransport, NetCorruption};
pub use error::{FrameError, NetError, WireError};
pub use frame::Envelope;
pub use harness::{
    run_remote, serve_forever, LoadHandle, NetAlgorithm, NetBackend, NetCluster, NetOutcome,
    NetRunReport, NetScenario,
};
pub use serve::{serve_shared, serve_until, ServeStats};
pub use tcp::{addr_table, AddrTable, PoolFaults, TcpClientTransport, TcpServerTransport};
pub use transport::{InProcHub, Transport};
pub use wire::{WireMsg, WireReader, WireWriter};
