//! Coded Atomic Storage (CAS) \[5, 6\] and its garbage-collected variant
//! CASGC.
//!
//! CAS replaces ABD's full-value replication with Reed–Solomon codeword
//! symbols: for an `[N, k]` code with `k ≤ N − 2f`, every quorum of
//! `q = ⌈(N+k)/2⌉` servers intersects every other in at least `k` servers,
//! so a reader that locates a finalized tag is guaranteed to find `k`
//! symbols of it.
//!
//! * **Write**: query `q` servers for the highest finalized tag; pick the
//!   successor; send each server its codeword symbol (*pre-write*); after
//!   `q` pre-acks, send a *finalize* label; after `q` fin-acks, return.
//! * **Read**: query `q` servers for the highest finalized tag `t*`;
//!   request symbols of `t*` (servers record the fin label as they answer —
//!   the read's write-back); decode once `k` symbols arrive and `q` servers
//!   have answered.
//!
//! Servers accumulate one symbol of `log2|V|/k` bits per concurrent
//! version — the `ν·N/k` storage the paper's Section 2.3 discusses. With
//! [`CasConfig::gc_depth`] `= δ` (CASGC), only the `δ + 1` newest finalized
//! versions are retained, capping storage at the price of conditional
//! liveness (reads are guaranteed only while write concurrency is `≤ δ`).

use crate::reg::{RegInv, RegResp};
use crate::tag::Tag;
use crate::value::{Value, ValueSpec};
use shmem_erasure::{Codec, Gf256};
use shmem_sim::{hash_of, Ctx, Node, NodeId, Protocol, ServerId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Protocol marker for CAS/CASGC.
pub struct Cas;

impl Protocol for Cas {
    type Msg = CasMsg;
    type Inv = RegInv;
    type Resp = RegResp;
    type Server = CasServer;
    type Client = CasClient;
}

/// Static CAS parameters shared by servers and clients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CasConfig {
    /// Number of servers.
    pub n: u32,
    /// Failure tolerance.
    pub f: u32,
    /// Code dimension `k` (symbols needed to decode), `1 ≤ k ≤ N − 2f`.
    pub k: u32,
    /// CASGC garbage-collection depth `δ`: keep the `δ + 1` newest
    /// finalized versions. `None` = plain CAS (no GC).
    pub gc_depth: Option<u32>,
    /// The value domain, for storage accounting.
    pub spec: ValueSpec,
}

impl CasConfig {
    /// Validated constructor with the native dimension `k = N − 2f`.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < N` (CAS requires a failure minority).
    pub fn native(n: u32, f: u32, spec: ValueSpec) -> CasConfig {
        assert!(2 * f < n, "CAS requires 2f < N, got N={n}, f={f}");
        CasConfig {
            n,
            f,
            k: n - 2 * f,
            gc_depth: None,
            spec,
        }
    }

    /// Overrides the code dimension.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ N − 2f`.
    pub fn with_k(mut self, k: u32) -> CasConfig {
        assert!(
            k >= 1 && k + 2 * self.f <= self.n,
            "CAS needs 1 <= k <= N - 2f"
        );
        self.k = k;
        self
    }

    /// Enables CASGC with depth `delta`.
    pub fn with_gc(mut self, delta: u32) -> CasConfig {
        self.gc_depth = Some(delta);
        self
    }

    /// The quorum size `q = ⌈(N + k)/2⌉`.
    pub fn quorum(&self) -> u32 {
        (self.n + self.k).div_ceil(2)
    }

    /// The `[N, k]` slab codec this configuration uses. The handle is
    /// memoized process-wide by `(N, k)`: the generator, encode plan and
    /// decode-plan cache are built once and shared across every server,
    /// client and operation of the geometry.
    ///
    /// # Panics
    ///
    /// Never panics for a validated configuration.
    pub fn code(&self) -> Arc<Codec<Gf256>> {
        Codec::shared(self.n as usize, self.k as usize)
            .expect("validated CAS parameters form a legal code")
    }

    /// Bits one codeword symbol carries: `log2|V| / k`.
    pub fn symbol_bits(&self) -> f64 {
        self.spec.bits / self.k as f64
    }
}

/// CAS wire messages. `rid` is a per-client phase nonce.
#[derive(Clone, Debug, PartialEq)]
pub enum CasMsg {
    /// Ask for the server's highest *finalized* tag.
    QueryTag {
        /// Phase nonce.
        rid: u64,
    },
    /// Reply to [`CasMsg::QueryTag`].
    QueryTagResp {
        /// Echoed nonce.
        rid: u64,
        /// Highest finalized tag at the server.
        tag: Tag,
    },
    /// Store one codeword symbol for `tag` (value-dependent message).
    PreWrite {
        /// Phase nonce.
        rid: u64,
        /// The version being written.
        tag: Tag,
        /// This server's codeword symbol.
        share: Vec<u8>,
    },
    /// Acknowledge a pre-write.
    PreAck {
        /// Echoed nonce.
        rid: u64,
    },
    /// Mark `tag` finalized (metadata-only message).
    Finalize {
        /// Phase nonce.
        rid: u64,
        /// The version to finalize.
        tag: Tag,
    },
    /// Acknowledge a finalize.
    FinAck {
        /// Echoed nonce.
        rid: u64,
    },
    /// Read request: finalize `tag` and return its symbol if held.
    ReadGet {
        /// Phase nonce.
        rid: u64,
        /// The version the reader is assembling.
        tag: Tag,
    },
    /// Reply to [`CasMsg::ReadGet`].
    ReadResp {
        /// Echoed nonce.
        rid: u64,
        /// This server's symbol for the tag, if it holds one.
        share: Option<Vec<u8>>,
    },
}

/// Whether a CAS message is *value-dependent* (Definition 6.4). Only the
/// pre-write carries codeword symbols upstream; queries, finalize labels
/// and acks are metadata. CAS writes send value-dependent messages in
/// exactly one phase (the pre-write), so CAS satisfies Assumption 3 — this
/// is why Theorem 6.5's bound applies to it.
pub fn is_value_dependent(msg: &CasMsg) -> bool {
    matches!(msg, CasMsg::PreWrite { .. } | CasMsg::ReadResp { .. })
}

/// Value-dependence restricted to client-to-server traffic (what the
/// Section 6 construction withholds): only `PreWrite`.
pub fn is_value_dependent_upstream(msg: &CasMsg) -> bool {
    matches!(msg, CasMsg::PreWrite { .. })
}

/// A CAS server: a store of `(tag → symbol)` plus finalize labels.
#[derive(Clone, Debug)]
pub struct CasServer {
    cfg: CasConfig,
    shares: BTreeMap<Tag, Vec<u8>>,
    finalized: BTreeSet<Tag>,
}

impl CasServer {
    /// Server `index` of a cluster, initialized with its symbol of the
    /// register's initial value under tag [`Tag::ZERO`] (finalized).
    pub fn new(cfg: CasConfig, index: ServerId, initial: Value) -> CasServer {
        let shares = cfg.code().encode_bytes(&ValueSpec::to_bytes(initial));
        let mut map = BTreeMap::new();
        map.insert(Tag::ZERO, shares[index.0 as usize].clone());
        CasServer {
            cfg,
            shares: map,
            finalized: [Tag::ZERO].into(),
        }
    }

    /// Number of coded versions currently held.
    pub fn versions_held(&self) -> usize {
        self.shares.len()
    }

    /// Highest finalized tag.
    pub fn max_finalized(&self) -> Tag {
        self.finalized
            .iter()
            .next_back()
            .copied()
            .unwrap_or(Tag::ZERO)
    }

    fn garbage_collect(&mut self) {
        let Some(delta) = self.cfg.gc_depth else {
            return;
        };
        // Keep symbols for the δ+1 newest finalized tags and anything newer
        // (still-unfinalized in-flight versions).
        let keep_from = self.finalized.iter().rev().nth(delta as usize).copied();
        if let Some(cutoff) = keep_from {
            self.shares.retain(|&t, _| t >= cutoff);
        }
    }
}

impl Node<Cas> for CasServer {
    fn on_message(&mut self, from: NodeId, msg: CasMsg, ctx: &mut Ctx<Cas>) {
        match msg {
            CasMsg::QueryTag { rid } => ctx.send(
                from,
                CasMsg::QueryTagResp {
                    rid,
                    tag: self.max_finalized(),
                },
            ),
            CasMsg::PreWrite { rid, tag, share } => {
                self.shares.entry(tag).or_insert(share);
                self.garbage_collect();
                ctx.send(from, CasMsg::PreAck { rid });
            }
            CasMsg::Finalize { rid, tag } => {
                self.finalized.insert(tag);
                self.garbage_collect();
                ctx.send(from, CasMsg::FinAck { rid });
            }
            CasMsg::ReadGet { rid, tag } => {
                // The read's write-back: answering the request finalizes
                // the tag at this server.
                self.finalized.insert(tag);
                self.garbage_collect();
                ctx.send(
                    from,
                    CasMsg::ReadResp {
                        rid,
                        share: self.shares.get(&tag).cloned(),
                    },
                );
            }
            CasMsg::QueryTagResp { .. }
            | CasMsg::PreAck { .. }
            | CasMsg::FinAck { .. }
            | CasMsg::ReadResp { .. } => {}
        }
    }

    fn state_bits(&self) -> f64 {
        // Each retained version costs one codeword symbol: log2|V| / k.
        self.shares.len() as f64 * self.cfg.symbol_bits()
    }

    fn metadata_bits(&self) -> f64 {
        (self.shares.len() + self.finalized.len()) as f64 * Tag::BITS
    }

    fn digest(&self) -> u64 {
        hash_of(&(&self.shares, &self.finalized))
    }
}

/// Which phase a CAS client is in.
#[derive(Clone, Debug)]
enum Phase {
    Idle,
    /// Writer querying for the highest finalized tag.
    WriteQuery {
        value: Value,
        tags: BTreeMap<u32, Tag>,
    },
    /// Writer waiting for pre-write acks.
    PreWrite {
        tag: Tag,
        acks: BTreeSet<u32>,
    },
    /// Writer waiting for finalize acks.
    Finalize {
        acks: BTreeSet<u32>,
    },
    /// Reader querying for the highest finalized tag.
    ReadQuery {
        tags: BTreeMap<u32, Tag>,
        retries: u32,
    },
    /// Reader assembling symbols of `tag`.
    ReadGet {
        tag: Tag,
        responses: BTreeSet<u32>,
        shares: BTreeMap<u32, Vec<u8>>,
        retries: u32,
    },
}

/// A CAS client; acts as writer or reader depending on the invocation.
#[derive(Clone, Debug)]
pub struct CasClient {
    cfg: CasConfig,
    me: u32,
    rid: u64,
    phase: Phase,
}

impl CasClient {
    /// Maximum read restarts before the client gives up (a read can race
    /// CASGC garbage collection; CASGC liveness is conditional).
    pub const MAX_READ_RETRIES: u32 = 64;

    /// A client for the given cluster configuration; `me` is the client id
    /// used for tag tie-breaks.
    pub fn new(cfg: CasConfig, me: u32) -> CasClient {
        CasClient {
            cfg,
            me,
            rid: 0,
            phase: Phase::Idle,
        }
    }

    fn begin_read_query(&mut self, retries: u32, ctx: &mut Ctx<Cas>) {
        self.rid += 1;
        self.phase = Phase::ReadQuery {
            tags: BTreeMap::new(),
            retries,
        };
        ctx.broadcast_to_servers(self.cfg.n, CasMsg::QueryTag { rid: self.rid });
    }
}

impl Node<Cas> for CasClient {
    fn on_invoke(&mut self, inv: RegInv, ctx: &mut Ctx<Cas>) {
        assert!(
            matches!(self.phase, Phase::Idle),
            "client invoked while an operation is in flight"
        );
        match inv {
            RegInv::Write(value) => {
                self.rid += 1;
                self.phase = Phase::WriteQuery {
                    value,
                    tags: BTreeMap::new(),
                };
                ctx.broadcast_to_servers(self.cfg.n, CasMsg::QueryTag { rid: self.rid });
            }
            RegInv::Read => self.begin_read_query(0, ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: CasMsg, ctx: &mut Ctx<Cas>) {
        let server = match from.as_server() {
            Some(s) => s.0,
            None => return,
        };
        let q = self.cfg.quorum();
        match (&mut self.phase, msg) {
            (Phase::WriteQuery { value, tags }, CasMsg::QueryTagResp { rid, tag })
                if rid == self.rid =>
            {
                tags.insert(server, tag);
                if tags.len() as u32 == q {
                    let max = tags.values().max().copied().unwrap_or(Tag::ZERO);
                    let tag = max.successor(self.me);
                    let value = *value;
                    let shares = self.cfg.code().encode_bytes(&ValueSpec::to_bytes(value));
                    self.rid += 1;
                    for (i, share) in shares.into_iter().enumerate() {
                        ctx.send(
                            NodeId::server(i as u32),
                            CasMsg::PreWrite {
                                rid: self.rid,
                                tag,
                                share,
                            },
                        );
                    }
                    self.phase = Phase::PreWrite {
                        tag,
                        acks: BTreeSet::new(),
                    };
                }
            }
            (Phase::PreWrite { tag, acks }, CasMsg::PreAck { rid }) if rid == self.rid => {
                acks.insert(server);
                if acks.len() as u32 == q {
                    let tag = *tag;
                    self.rid += 1;
                    ctx.broadcast_to_servers(self.cfg.n, CasMsg::Finalize { rid: self.rid, tag });
                    self.phase = Phase::Finalize {
                        acks: BTreeSet::new(),
                    };
                }
            }
            (Phase::Finalize { acks }, CasMsg::FinAck { rid }) if rid == self.rid => {
                acks.insert(server);
                if acks.len() as u32 == q {
                    self.phase = Phase::Idle;
                    self.rid += 1;
                    ctx.respond(RegResp::WriteAck);
                }
            }
            (Phase::ReadQuery { tags, retries }, CasMsg::QueryTagResp { rid, tag })
                if rid == self.rid =>
            {
                tags.insert(server, tag);
                if tags.len() as u32 == q {
                    let t = tags.values().max().copied().unwrap_or(Tag::ZERO);
                    let retries = *retries;
                    self.rid += 1;
                    ctx.broadcast_to_servers(
                        self.cfg.n,
                        CasMsg::ReadGet {
                            rid: self.rid,
                            tag: t,
                        },
                    );
                    self.phase = Phase::ReadGet {
                        tag: t,
                        responses: BTreeSet::new(),
                        shares: BTreeMap::new(),
                        retries,
                    };
                }
            }
            (
                Phase::ReadGet {
                    tag,
                    responses,
                    shares,
                    retries,
                },
                CasMsg::ReadResp { rid, share },
            ) if rid == self.rid => {
                responses.insert(server);
                if let Some(s) = share {
                    shares.insert(server, s);
                }
                let enough_responses = responses.len() as u32 >= q;
                let decodable = shares.len() as u32 >= self.cfg.k;
                if enough_responses && decodable {
                    let picked: Vec<(usize, Vec<u8>)> = shares
                        .iter()
                        .take(self.cfg.k as usize)
                        .map(|(&i, s)| (i as usize, s.clone()))
                        .collect();
                    let decoded = self
                        .cfg
                        .code()
                        .decode_bytes(&picked, ValueSpec::VALUE_BYTES);
                    let _ = tag;
                    self.phase = Phase::Idle;
                    self.rid += 1;
                    match decoded {
                        Ok(bytes) => ctx.respond(RegResp::ReadValue(ValueSpec::from_bytes(&bytes))),
                        // Corrupted or inconsistent symbols: fail the read
                        // rather than panic the client automaton.
                        Err(e) => ctx.respond(RegResp::ReadFailed(e)),
                    }
                } else if responses.len() as u32 == self.cfg.n && !decodable {
                    // Every server answered but the symbols were garbage
                    // collected under us: restart the read (CASGC's
                    // conditional liveness).
                    let r = *retries + 1;
                    assert!(
                        r <= Self::MAX_READ_RETRIES,
                        "read starved by garbage collection {r} times"
                    );
                    self.begin_read_query(r, ctx);
                }
            }
            _ => {}
        }
    }

    fn digest(&self) -> u64 {
        let phase_tag = match &self.phase {
            Phase::Idle => 0u8,
            Phase::WriteQuery { .. } => 1,
            Phase::PreWrite { .. } => 2,
            Phase::Finalize { .. } => 3,
            Phase::ReadQuery { .. } => 4,
            Phase::ReadGet { .. } => 5,
        };
        hash_of(&(self.me, self.rid, phase_tag, format!("{:?}", self.phase)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_sim::{ClientId, Sim, SimConfig};

    fn cluster(n: u32, f: u32, gc: Option<u32>, clients: u32) -> Sim<Cas> {
        let mut cfg = CasConfig::native(n, f, ValueSpec::from_bits(64.0));
        if let Some(d) = gc {
            cfg = cfg.with_gc(d);
        }
        Sim::new(
            SimConfig::without_gossip(),
            (0..n)
                .map(|i| CasServer::new(cfg, ServerId(i), 0))
                .collect(),
            (0..clients).map(|c| CasClient::new(cfg, c)).collect(),
        )
    }

    #[test]
    fn quorum_arithmetic() {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_bits(64.0));
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.quorum(), 4);
        // Two quorums of 4 out of 5 intersect in >= 3 = k servers.
        let cfg21 = CasConfig::native(21, 10, ValueSpec::from_bits(64.0));
        assert_eq!(cfg21.k, 1);
        assert_eq!(cfg21.quorum(), 11);
        let wide = CasConfig::native(9, 2, ValueSpec::from_bits(64.0));
        assert_eq!(wide.k, 5);
        assert_eq!(wide.quorum(), 7);
    }

    #[test]
    #[should_panic(expected = "2f < N")]
    fn rejects_majority_failures() {
        let _ = CasConfig::native(4, 2, ValueSpec::from_bits(64.0));
    }

    #[test]
    fn write_then_read() {
        let mut sim = cluster(5, 1, None, 2);
        sim.invoke(ClientId(0), RegInv::Write(123456789)).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::WriteAck
        );
        sim.invoke(ClientId(1), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(1)).unwrap(),
            RegResp::ReadValue(123456789)
        );
    }

    #[test]
    fn read_of_initial_value() {
        let mut sim = cluster(5, 1, None, 1);
        sim.invoke(ClientId(0), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::ReadValue(0)
        );
    }

    #[test]
    fn tolerates_f_failures() {
        let mut sim = cluster(7, 2, None, 2);
        sim.fail_last_servers(2);
        sim.invoke(ClientId(0), RegInv::Write(77)).unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        sim.invoke(ClientId(1), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(1)).unwrap(),
            RegResp::ReadValue(77)
        );
    }

    #[test]
    fn storage_grows_with_ungarbage_collected_versions() {
        let mut sim = cluster(5, 1, None, 1);
        for v in 1..=4 {
            sim.invoke(ClientId(0), RegInv::Write(v)).unwrap();
            sim.run_until_op_completes(ClientId(0)).unwrap();
            sim.run_to_quiescence().unwrap();
        }
        // Initial + 4 writes, never collected: 5 versions per server, each
        // 64/3 bits.
        let per_server = sim.server(ServerId(0)).versions_held();
        assert_eq!(per_server, 5);
        let bits = sim.storage().peak_total_bits;
        assert!((bits - 5.0 * 5.0 * 64.0 / 3.0).abs() < 1e-6, "bits={bits}");
    }

    #[test]
    fn gc_caps_retained_versions() {
        let mut sim = cluster(5, 1, Some(1), 1);
        for v in 1..=6 {
            sim.invoke(ClientId(0), RegInv::Write(v)).unwrap();
            sim.run_until_op_completes(ClientId(0)).unwrap();
            sim.run_to_quiescence().unwrap();
        }
        // δ = 1: at most 2 finalized versions retained.
        assert!(sim.server(ServerId(0)).versions_held() <= 2);
        // And the latest value is still readable.
        sim.invoke(ClientId(0), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::ReadValue(6)
        );
    }

    #[test]
    fn codec_handle_is_memoized_per_geometry() {
        let cfg = CasConfig::native(5, 1, ValueSpec::from_bits(64.0));
        assert!(Arc::ptr_eq(&cfg.code(), &cfg.code()));
        // A different geometry gets its own codec.
        let other = CasConfig::native(7, 2, ValueSpec::from_bits(64.0));
        assert!(!Arc::ptr_eq(&cfg.code(), &other.code()));
    }

    #[test]
    fn corrupted_share_fails_read_without_panicking() {
        use shmem_erasure::CodeError;
        let mut sim = cluster(5, 1, None, 1);
        // Truncate one stored symbol of the initial value: the reader's
        // picked set becomes ragged and must fail to decode.
        sim.server_mut(ServerId(0))
            .shares
            .get_mut(&Tag::ZERO)
            .expect("initial share present")
            .pop();
        sim.invoke(ClientId(0), RegInv::Read).unwrap();
        assert_eq!(
            sim.run_until_op_completes(ClientId(0)).unwrap(),
            RegResp::ReadFailed(CodeError::LengthMismatch)
        );
    }

    #[test]
    fn corrupted_share_surfaces_as_operation_failed_in_harness() {
        use crate::harness::CasCluster;
        use shmem_sim::RunError;
        let mut c = CasCluster::new(5, 1, 1, ValueSpec::from_bits(64.0));
        c.sim
            .server_mut(ServerId(0))
            .shares
            .get_mut(&Tag::ZERO)
            .expect("initial share present")
            .pop();
        match c.read(0) {
            Err(RunError::OperationFailed { client, detail }) => {
                assert_eq!(client, ClientId(0));
                assert!(detail.contains("length"), "unexpected detail: {detail}");
            }
            other => panic!("expected OperationFailed, got {other:?}"),
        }
    }

    #[test]
    fn coded_storage_cheaper_than_replication_at_low_concurrency() {
        // One version in flight: CAS total = N/k * |v| < N * |v| (ABD).
        let mut sim = cluster(9, 2, Some(0), 1);
        sim.invoke(ClientId(0), RegInv::Write(5)).unwrap();
        sim.run_until_op_completes(ClientId(0)).unwrap();
        sim.run_to_quiescence().unwrap();
        let total = sim.storage().peak_total_bits;
        // k = 5: peak is at most 2 versions * 9 servers * 64/5 bits.
        assert!(total <= 2.0 * 9.0 * 64.0 / 5.0 + 1e-9, "total={total}");
        assert!(total < 9.0 * 64.0, "coded beats replication: {total}");
    }
}
