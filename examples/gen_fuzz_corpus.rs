//! Regenerates the fuzzer-found half of the regression corpus under
//! `tests/corpus/`.
//!
//! Where `gen_corpus` sweeps seeds sequentially, this drives the
//! coverage-guided fuzzer ([`shmem_algorithms::nemesis::fuzz`]) against the
//! same broken controls, takes the first violation its mutated fault plans
//! hit, shrinks that plan, re-verifies it, and stores the replayable
//! [`Counterexample`]. `tests/corpus_replay.rs::whole_corpus_replays`
//! picks the artifacts up automatically, so they are regression gates for
//! the fuzzer's mutation pipeline as well as for the checkers: a stored
//! fuzz counterexample that stops reproducing means either a simulator
//! determinism break or a checker change.
//!
//! ```sh
//! cargo run --release --example gen_fuzz_corpus
//! ```

use shmem_algorithms::nemesis::{
    fuzz, pretty_history, run_plan, shrink_plan, Counterexample, FuzzConfig, Oracle,
};
use shmem_algorithms::{LossyCluster, NwbCluster, ValueSpec};
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("tests/corpus");
    fs::create_dir_all(dir).expect("create tests/corpus");

    // Same positive controls as gen_corpus, found by the guided loop
    // instead of the sweep so the stored plans exercise mutated fault
    // schedules (spliced event lists, shifted windows) rather than raw
    // samples.
    {
        let factory = || NwbCluster::new(3, 1, 3, ValueSpec::from_bits(64.0));
        generate(dir, "nowriteback-fuzz", Oracle::Atomic, &factory, |v| {
            Counterexample::package("nowriteback", 3, 1, 3, 0, v)
        });
    }
    {
        let factory = || LossyCluster::new(3, 1, 3, 8, ValueSpec::from_bits(64.0));
        generate(dir, "lossy-fuzz", Oracle::Regular, &factory, |v| {
            Counterexample::package("lossy", 3, 1, 3, 8, v)
        });
    }
}

fn generate<P, F>(
    dir: &Path,
    name: &str,
    oracle: Oracle,
    factory: &F,
    pack: impl Fn(&shmem_algorithms::nemesis::Violation) -> Counterexample,
) where
    P: shmem_sim::Protocol<Inv = shmem_algorithms::RegInv, Resp = shmem_algorithms::RegResp>,
    F: Fn() -> shmem_algorithms::harness::Cluster<P> + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let out = fuzz(
        factory,
        oracle,
        FuzzConfig {
            seed: 5,
            rounds: 256,
            batch: 16,
            workers,
            stop_on_violation: true,
            ..FuzzConfig::default()
        },
    );
    let mut v = out
        .violations
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("{name}: fuzzer found no violation"));
    println!(
        "== {name}: seed {} violates {:?} after {} executions",
        v.seed,
        oracle,
        out.executions_to_first_violation.expect("violation count")
    );
    let (plan, stats) = shrink_plan(factory, oracle, v.seed, &v.plan);
    println!(
        "   shrunk: {} events -> {}, {} candidates, {} rounds",
        v.plan.events.len(),
        plan.events.len(),
        stats.candidates,
        stats.rounds
    );
    v.plan = plan;
    // Re-run the shrunk plan so the stored violation text matches it.
    let mut cluster = factory();
    let run = run_plan(&mut cluster, v.seed, &v.plan);
    let violation = oracle
        .check(&run.history)
        .expect_err("shrunk plan must still violate");
    v.violation = violation;
    println!("{}", pretty_history(&run.history));
    let cx = pack(&v);
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, cx.to_json().to_pretty()).expect("write corpus file");
    println!("   wrote {}", path.display());
}
