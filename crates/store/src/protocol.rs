//! Protocol markers binding the sharded automata to the concurrent
//! store backends.
//!
//! [`StoreAbd`] / [`StoreCas`] / [`StoreHashed`] are drop-in siblings of
//! `ShardedAbd` / `ShardedCas` / `ShardedHashed`: same wire messages,
//! same clients, same invocation types — only the server's state backend
//! differs. Anything generic over `Protocol` (the simulator, the net
//! harness, the differential tests) runs them unchanged.

use crate::coded::{StoreCasBackend, StoreHashedBackend};
use crate::reg::StoreAbdBackend;
use shmem_algorithms::abd::{ShardedAbdClient, ShardedAbdMsg, ShardedAbdServerOn};
use shmem_algorithms::cas::{ShardedCasClient, ShardedCasMsg, ShardedCasServerOn};
use shmem_algorithms::hashed::{ShardedHashedClient, ShardedHashedMsg, ShardedHashedServerOn};
use shmem_algorithms::multikey::{MultiInv, MultiResp};
use shmem_sim::Protocol;

/// Sharded ABD over the lock-free register store.
pub struct StoreAbd;

impl Protocol for StoreAbd {
    type Msg = ShardedAbdMsg;
    type Inv = MultiInv;
    type Resp = MultiResp;
    type Server = ShardedAbdServerOn<StoreAbdBackend>;
    type Client = ShardedAbdClient;

    fn msg_wire_bytes(msg: &ShardedAbdMsg) -> u64 {
        msg.wire_bytes()
    }
}

/// Sharded CAS over the lock-free coded store.
pub struct StoreCas;

impl Protocol for StoreCas {
    type Msg = ShardedCasMsg;
    type Inv = MultiInv;
    type Resp = MultiResp;
    type Server = ShardedCasServerOn<StoreCasBackend>;
    type Client = ShardedCasClient;

    fn msg_wire_bytes(msg: &ShardedCasMsg) -> u64 {
        msg.wire_bytes()
    }
}

/// Sharded hashed CAS over the lock-free coded store + hash side-table.
pub struct StoreHashed;

impl Protocol for StoreHashed {
    type Msg = ShardedHashedMsg;
    type Inv = MultiInv;
    type Resp = MultiResp;
    type Server = ShardedHashedServerOn<StoreHashedBackend>;
    type Client = ShardedHashedClient;

    fn msg_wire_bytes(msg: &ShardedHashedMsg) -> u64 {
        msg.wire_bytes()
    }
}
