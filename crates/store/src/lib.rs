//! `shmem-store`: a sharded, lock-free concurrent in-memory register
//! store — the shared-state backend behind the server automata.
//!
//! The sequential emulation servers keep their per-key state in private
//! `BTreeMap`s; this crate provides the concurrent equivalent so one
//! server process exploits all cores: per-key atomic-pointer cells in an
//! insert-only lock-free map ([`map::AtomicMap`]), immutable published
//! versions reclaimed through epoch-based garbage collection
//! ([`epoch`]), and tag-ordered compare-and-bump writes so racing
//! `store_if_newer` calls resolve to the maximum MWMR tag.
//!
//! Correctness is *checked, not argued*: every concurrent test path
//! records invoke/response intervals through [`log::ThreadLog`] and the
//! recorded histories are fed to the unchanged `shmem-spec` atomicity
//! checker (`tests/linearizability.rs`), with a deliberately broken
//! store variant ([`broken`]) as the mutation control. Single-threaded
//! runs through the [`shmem_algorithms::backend`] seam are byte-identical
//! (StepInfo traces and digests) to the legacy in-struct servers
//! (`tests/differential.rs`), so the paper's storage accounting —
//! per-key steady state exactly `N/(N−f)` — carries over unchanged.

pub mod broken;
pub mod coded;
pub mod corrupt;
pub mod epoch;
pub mod log;
pub mod map;
pub mod protocol;
pub mod reg;

pub use broken::StaleTagRegHandle;
pub use coded::{CodedStore, StoreCasBackend, StoreHashedBackend};
pub use corrupt::CorruptingBackend;
pub use epoch::{Collector, Guard, Handle};
pub use log::{merge_histories, OpClock, ThreadLog};
pub use protocol::{StoreAbd, StoreCas, StoreHashed};
pub use reg::{RegHandle, RegStore, StoreAbdBackend};
